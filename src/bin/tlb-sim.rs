//! `tlb-sim` — run one data-center load-balancing simulation from the
//! command line.
//!
//! ```sh
//! tlb-sim --scheme tlb --workload websearch --load 0.6
//! tlb-sim --scheme letflow --workload mix --shorts 100 --longs 3
//! tlb-sim --scheme rps --degrade 0:3:0.25:200 --json
//! tlb-sim --help
//! ```

use tlb::engine::EngineKind;
use tlb::prelude::*;

const HELP: &str = "\
tlb-sim — packet-level DCN load-balancing simulator (TLB reproduction)

USAGE:
    tlb-sim [OPTIONS]

OPTIONS:
    --scheme <s>          ecmp | rps | presto | letflow | drill | conga |
                          flowbender | hermes | wcmp | diffflow | tlb          [tlb]
    --workload <w>        websearch | datamining | mix                    [websearch]
    --load <f>            offered load fraction for Poisson workloads           [0.6]
    --shorts <n>          short flows for the 'mix' workload                    [100]
    --longs <n>           long flows for the 'mix' workload                       [3]
    --leaves <n>          leaf switches                                           [8]
    --spines <n>          spine switches (= equal-cost paths)                     [8]
    --hosts-per-leaf <n>  hosts per rack                                         [16]
    --fat-tree <k>        use a k-ary fat tree instead of leaf-spine (k even,
                          k^3/4 hosts); overrides the three knobs above
    --gbps <f>            link rate in Gbit/s                                   [1.0]
    --duration-ms <n>     Poisson traffic window                                 [50]
    --seed <n>            RNG seed (runs are deterministic per seed)              [1]
    --engine <e>          serial | sharded — execution engine (default: the
                          TLB_ENGINE env knob, itself defaulting to serial);
                          sharded falls back to serial when the config is
                          unpartitionable, with bit-identical results
    --workers <n>         worker threads for --engine sharded          [all cores]
    --degrade l:s:bw:us   degrade uplink leaf l -> spine s to bw x bandwidth
                          with +us microseconds delay (repeatable)
    --fail sw:up:at_us    take LB switch sw's uplink up down at_us microseconds
                          into the run (repeatable)
    --repair sw:up:at_us  bring the same uplink back up at_us microseconds in
                          (repeatable)
    --json                machine-readable output
    --help                this text
";

struct Args(Vec<String>);

impl Args {
    fn value_of(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn values_of<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.0
            .windows(2)
            .filter(move |w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.value_of(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn scheme_from(name: &str) -> Scheme {
    match name {
        "ecmp" => Scheme::Ecmp,
        "rps" => Scheme::Rps,
        "presto" => Scheme::presto_default(),
        "letflow" => Scheme::letflow_default(),
        "drill" => Scheme::Drill { d: 2, m: 1 },
        "flowbender" => Scheme::flowbender_default(),
        "hermes" => Scheme::hermes_default(),
        "wcmp" => Scheme::Wcmp,
        "conga" => Scheme::CongaLite {
            timeout: SimTime::from_micros(500),
        },
        "diffflow" => Scheme::diffflow_default(),
        "tlb" => Scheme::tlb_default(),
        other => {
            eprintln!("unknown scheme: {other}\n{HELP}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        print!("{HELP}");
        return;
    }

    let scheme = scheme_from(args.value_of("--scheme").unwrap_or("tlb"));
    let scheme_name = scheme.name();
    let leaves: usize = args.parse("--leaves", 8);
    let spines: usize = args.parse("--spines", 8);
    let hosts_per_leaf: usize = args.parse("--hosts-per-leaf", 16);
    let gbps: f64 = args.parse("--gbps", 1.0);
    let seed: u64 = args.parse("--seed", 1);

    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.topo = if let Some(k) = args.value_of("--fat-tree") {
        let k: usize = k.parse().expect("fat-tree arity");
        FatTreeBuilder::new(k)
            .link_gbps(gbps)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into()
    } else {
        LeafSpineBuilder::new(leaves, spines, hosts_per_leaf)
            .link_gbps(gbps)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into()
    };
    cfg.seed = seed;

    if let Some(engine) = args.value_of("--engine") {
        let workers = args.value_of("--workers").map(|w| {
            w.parse::<u32>().unwrap_or_else(|_| {
                eprintln!("bad --workers '{w}', expected a positive integer");
                std::process::exit(2);
            })
        });
        cfg.engine = match engine {
            "serial" => EngineKind::Serial,
            "sharded" => EngineKind::Sharded { workers },
            other => {
                eprintln!("unknown engine: {other}\n{HELP}");
                std::process::exit(2);
            }
        };
    }

    for spec in args.values_of("--degrade") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            eprintln!("bad --degrade '{spec}', expected l:s:bw:us");
            std::process::exit(2);
        }
        let l: u32 = parts[0].parse().expect("leaf index");
        let s: u32 = parts[1].parse().expect("spine index");
        let bw: f64 = parts[2].parse().expect("bandwidth factor");
        let us: u64 = parts[3].parse().expect("extra delay (us)");
        cfg.topo
            .degrade_link(LeafId(l), SpineId(s), bw, SimTime::from_micros(us));
    }

    for (key, action) in [
        ("--fail", FailureAction::Down),
        ("--repair", FailureAction::Up),
    ] {
        for spec in args.values_of(key) {
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() != 3 {
                eprintln!("bad {key} '{spec}', expected sw:up:at_us");
                std::process::exit(2);
            }
            let sw: u32 = parts[0].parse().expect("LB switch index");
            let up: u32 = parts[1].parse().expect("uplink index");
            let at: u64 = parts[2].parse().expect("event time (us)");
            cfg.failure_events.push(FailureEvent {
                at: SimTime::from_micros(at),
                target: FailureTarget::Link {
                    sw: LeafId(sw),
                    up: SpineId(up),
                },
                action,
            });
        }
    }
    cfg.failure_events.sort_by_key(|e| e.at);

    let workload = args.value_of("--workload").unwrap_or("websearch");
    let mut rng = SimRng::new(seed ^ 0xABCD);
    let flows = match workload {
        "mix" => {
            let mut mix = BasicMixConfig::paper_default();
            mix.n_short = args.parse("--shorts", 100);
            mix.n_long = args.parse("--longs", 3);
            basic_mix(&cfg.topo, &mix, &mut rng)
        }
        w @ ("websearch" | "datamining") => {
            let dist = if w == "websearch" {
                web_search()
            } else {
                data_mining()
            };
            let wl = PoissonWorkload {
                load: args.parse("--load", 0.6),
                dist: &dist,
                duration: SimTime::from_millis(args.parse("--duration-ms", 50u64)),
                deadline_lo: SimTime::from_millis(5),
                deadline_hi: SimTime::from_millis(25),
                short_threshold: 100_000,
                inter_leaf_only: true,
            };
            wl.generate(&cfg.topo, &mut rng)
        }
        other => {
            eprintln!("unknown workload: {other}\n{HELP}");
            std::process::exit(2);
        }
    };

    let n = flows.len();
    eprintln!("running {n} flows under {scheme_name} (seed {seed})...");
    let r = Simulation::new(cfg, flows).run();

    if args.flag("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&r.to_summary()).expect("serializable summary")
        );
    } else {
        println!("{}", r.one_line());
        println!(
            "  events {}  drops {}  ECN marks {}  wall {:?}",
            r.events, r.drops, r.marks, r.wall
        );
    }
}
