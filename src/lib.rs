//! # tlb — Traffic-aware Load Balancing with Adaptive Granularity
//!
//! A from-scratch Rust reproduction of *"TLB: Traffic-aware Load Balancing
//! with Adaptive Granularity in Data Center Networks"* (ICPP 2019): the TLB
//! scheme itself, the ECMP/RPS/Presto/LetFlow/DRILL baselines, and the
//! packet-level leaf-spine network simulator (DCTCP transport, output-queued
//! ECN-marking switches) the evaluation runs on.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`engine`] | `tlb-engine` | discrete-event core: [`engine::SimTime`], event queue, RNG |
//! | [`net`] | `tlb-net` | packets, ids, leaf-spine topology, asymmetry |
//! | [`switch`] | `tlb-switch` | output-queued ports, ECN, `LoadBalancer` trait |
//! | [`lb`] | `tlb-lb` | ECMP, RPS, Presto, LetFlow, DRILL, CONGA-lite |
//! | [`core`] | `tlb-core` | **the paper's contribution**: the TLB balancer |
//! | [`model`] | `tlb-model` | Eq. 1–9 queueing analysis of `q_th` |
//! | [`transport`] | `tlb-transport` | TCP NewReno + DCTCP endpoints |
//! | [`workload`] | `tlb-workload` | web-search/data-mining traffic, Poisson arrivals |
//! | [`metrics`] | `tlb-metrics` | FCT/percentile/CDF/time-series collectors |
//! | [`simnet`] | `tlb-simnet` | the simulator: `SimConfig` → `Simulation` → `RunReport` |
//!
//! ## Quickstart
//!
//! ```
//! use tlb::prelude::*;
//!
//! // The paper's basic setup: 15 equal-cost paths, DCTCP, 1 Gbit/s.
//! let cfg = SimConfig::basic_paper(Scheme::tlb_default());
//! let mut mix = BasicMixConfig::paper_default();
//! mix.n_short = 20; // trimmed for the doctest
//! mix.n_long = 1;
//! let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(7));
//! let report = Simulation::new(cfg, flows).run();
//! println!("{}", report.one_line());
//! assert_eq!(report.completed, report.total_flows);
//! ```

pub use tlb_core as core;
pub use tlb_engine as engine;
pub use tlb_lb as lb;
pub use tlb_metrics as metrics;
pub use tlb_model as model;
pub use tlb_net as net;
pub use tlb_simnet as simnet;
pub use tlb_switch as switch;
pub use tlb_transport as transport;
pub use tlb_workload as workload;

/// The names most programs need, in one import.
pub mod prelude {
    pub use tlb_core::{ThresholdMode, Tlb, TlbConfig};
    pub use tlb_engine::{SimRng, SimTime};
    pub use tlb_metrics::{FlowClass, SampleSet};
    pub use tlb_model::{q_th_min, ModelParams, QTh};
    pub use tlb_net::{
        Fabric, FatTree, FatTreeBuilder, FlowId, HostId, LeafId, LeafSpine, LeafSpineBuilder,
        SpineId,
    };
    pub use tlb_simnet::{
        run_all, run_all_ref, run_one, run_one_ref, AuditReport, DeliveryKind, FailureAction,
        FailureEvent, FailureTarget, FidelityKind, LbDispatch, LinkEvent, RunReport, Scheme,
        SimConfig, Simulation,
    };
    pub use tlb_switch::{LoadBalancer, PortView, QueueCfg};
    pub use tlb_transport::TcpConfig;
    pub use tlb_workload::{
        basic_mix, data_mining, sustained_mix, web_search, BasicMixConfig, FlowSpec,
        PoissonWorkload,
    };
}
