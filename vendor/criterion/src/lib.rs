//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the bench-definition surface it uses (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched_ref`,
//! `Throughput`, `BatchSize`, `criterion_group!`/`criterion_main!`).
//! Instead of statistical sampling, every routine runs a small fixed
//! number of iterations and reports a coarse mean — enough to smoke-test
//! the benches and get an order-of-magnitude number, not a rigorous
//! measurement. See `vendor/README.md` for the replacement policy.

use std::time::Instant;

/// Iterations per routine: enough to amortize clock overhead, small
/// enough that `cargo test` stays fast.
const ITERS: u32 = 3;

/// Throughput unit attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher { elapsed_ns: 0.0 };
        f(&mut b);
        report(&name, b.elapsed_ns, None);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; the stub always runs a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        let mut b = Bencher { elapsed_ns: 0.0 };
        f(&mut b);
        report(&label, b.elapsed_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark routine.
pub struct Bencher {
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = 0.0;
        for _ in 0..ITERS {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed().as_nanos() as f64;
        }
        self.elapsed_ns = total / ITERS as f64;
    }
}

fn report(label: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  {:.0} elem/s", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  {:.0} B/s", n as f64 * 1e9 / mean_ns)
        }
        _ => String::new(),
    };
    println!("bench {label}: {:.1} us/iter{rate}", mean_ns / 1e3);
}

/// Collect bench functions under a group name (stub: a plain fn list).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running all groups once.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("iter", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
    }
}
