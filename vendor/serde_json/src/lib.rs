//! Offline stand-in for `serde_json`.
//!
//! Provides exactly the entry points this workspace calls — `to_string`,
//! `to_string_pretty`, `from_str` — implemented over the vendored `serde`
//! stub's JSON-only traits. See `vendor/README.md` for the replacement
//! policy.

pub use serde::json::{Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = serde::json::parse(&compact)?;
    let mut out = String::new();
    render_pretty(&parsed, 0, &mut out);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::deserialize_json(&v)
}

fn render_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => serde::json::push_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                serde::json::push_escaped(out, k);
                out.push_str(": ");
                render_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weight: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        count: u64,
        flag: bool,
        items: Vec<Inner>,
        note: Option<String>,
    }

    fn sample() -> Outer {
        Outer {
            count: u64::MAX,
            flag: true,
            items: vec![
                Inner {
                    label: "a\"b".into(),
                    weight: 0.1,
                },
                Inner {
                    label: "c".into(),
                    weight: 2.0,
                },
            ],
            note: None,
        }
    }

    #[test]
    fn derive_round_trips() {
        let s = super::to_string(&sample()).unwrap();
        let back: Outer = super::from_str(&s).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn pretty_round_trips() {
        let s = super::to_string_pretty(&sample()).unwrap();
        assert!(s.contains('\n'));
        let back: Outer = super::from_str(&s).unwrap();
        assert_eq!(back, sample());
    }
}
