//! Minimal JSON value model + parser shared by the serde/serde_json stubs.
//!
//! Numbers are kept as their source text (`Num(String)`) so u64/u128 values
//! round-trip without passing through f64.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Number, kept as source text to preserve integer precision.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Fetch a field of an object, erroring if absent or not an object.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, Error> {
        match self {
            Value::Obj(map) => map
                .get(name)
                .ok_or_else(|| Error::new(format!("missing field {name:?}"))),
            other => Err(Error::new(format!(
                "expected object with field {name:?}, got {}",
                other.kind()
            ))),
        }
    }
}

/// JSON parse / shape error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte {:?} at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate it parses as a float at minimum.
        text.parse::<f64>()
            .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))?;
        Ok(Value::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for this stub.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3], "b": {"s": "x\n\"y\""}, "c": null, "d": true}"#).unwrap();
        assert_eq!(
            v.field("a").unwrap(),
            &Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("2.5".into()),
                Value::Num("-3".into()),
            ])
        );
        assert_eq!(
            v.field("b").unwrap().field("s").unwrap(),
            &Value::Str("x\n\"y\"".into())
        );
        assert_eq!(v.field("c").unwrap(), &Value::Null);
        assert_eq!(v.field("d").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn escape_round_trip() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn u64_precision_is_preserved() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::Num("18446744073709551615".into()));
    }
}
