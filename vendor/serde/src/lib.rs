//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the thin slice of serde it uses: derive-able
//! `Serialize`/`Deserialize` for flat structs, rendered to and parsed from
//! JSON by the sibling `serde_json` stub. The trait shapes are simplified
//! (JSON-only, no serializer abstraction); swap back to real serde by
//! restoring the crates-io entries in the workspace manifest. See
//! `vendor/README.md` for the replacement policy.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A value renderable as JSON.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// A value parseable from JSON.
pub trait Deserialize: Sized {
    /// Build `Self` from a parsed JSON value.
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

macro_rules! impl_num {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }

        impl Deserialize for $ty {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Num(s) => s
                        .parse::<$ty>()
                        .map_err(|e| json::Error::new(format!("bad number {s:?}: {e}"))),
                    other => Err(json::Error::new(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` is Rust's shortest round-trip float rendering.
            out.push_str(&format!("{self:?}"));
        } else {
            // JSON has no Inf/NaN; null is the conventional degradation.
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Num(s) => s
                .parse::<f64>()
                .map_err(|e| json::Error::new(format!("bad float {s:?}: {e}"))),
            json::Value::Null => Ok(f64::NAN),
            other => Err(json::Error::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::push_escaped(out, self);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::push_escaped(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (*self).serialize_json(out);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(json::Error::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Arr(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(json::Error::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}
