//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API it uses: the
//! `proptest! {}` test macro, `prop_assert!`/`prop_assert_eq!`, numeric
//! range and tuple strategies, `collection::vec`, and `any::<bool>()`.
//!
//! Beyond the original minimal stub this now carries the workspace's
//! fuzzing layer (PR 3):
//!
//! * **Shrinking** — a failing input is greedily minimized before the
//!   panic: numeric strategies try the range start, the midpoint toward
//!   it, and a decrement; `collection::vec` removes chunks and single
//!   elements, then shrinks surviving elements; tuples shrink
//!   component-wise, recursively. The panic reports both the original and
//!   the minimized input.
//! * **Per-test seed derivation** — each property's stream is
//!   `splitmix64(fnv1a(test name) + base seed)`, so two properties in one
//!   binary never see correlated streams, and changing the base seed
//!   re-seeds every property at once.
//! * **Env overrides** — `TLB_PROPTEST_CASES` sets the per-property case
//!   count; `TLB_PROPTEST_SEED` sets the base seed (decimal or `0x` hex).
//! * **Failure persistence** — a failing case's seed is appended to
//!   `fuzz/regressions/<property>.txt` (located by walking up from
//!   `CARGO_MANIFEST_DIR`, or forced via `TLB_PROPTEST_REGRESSIONS`);
//!   every seed in that file replays *first* on the next run, so
//!   regressions stay fixed. Lines starting with `#` are comments.
//!
//! See `vendor/README.md` for the replacement policy.

use std::fmt::Debug;
use std::ops::Range;
use std::path::PathBuf;

/// Default number of random cases each property runs
/// (override: `TLB_PROPTEST_CASES`).
pub const CASES: u32 = 128;

/// Hard cap on greedy shrink steps, so a pathological strategy cannot
/// spin forever while minimizing.
const MAX_SHRINK_STEPS: u32 = 4096;

/// Failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    pub fn message(&self) -> &str {
        &self.0
    }
}

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix_mix(self.state)
    }

    /// Uniform-ish f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 output function: one full avalanche over `z`.
#[inline]
fn splitmix_mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a test name.
fn fnv1a(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Per-test seed: splitmix of the test-name hash plus the base seed.
/// Distinct names land in distinct, decorrelated streams even when the
/// base seed is shared; changing the base seed moves every stream.
pub fn derive_seed(name: &str, base_seed: u64) -> u64 {
    splitmix_mix(fnv1a(name).wrapping_add(base_seed))
}

/// A generator of test-case values.
pub trait Strategy {
    type Value: Clone + Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Simplification candidates for a failing `value`, most aggressive
    /// first. The shrink driver greedily re-tests candidates and recurses
    /// on the first that still fails. Default: no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128 + off) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let (v, lo) = (*value as u128, self.start as u128);
                let mut out = Vec::new();
                if v > lo {
                    // Most aggressive first: the minimum, then halving the
                    // distance toward it, then a plain decrement.
                    out.push(self.start);
                    let mid = (lo + (v - lo) / 2) as $ty;
                    if mid as u128 != lo && mid as u128 != v {
                        out.push(mid);
                    }
                    let dec = (v - 1) as $ty;
                    if dec as u128 != lo && !out.contains(&dec) {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                // Shrink toward zero when the range allows it, else toward
                // the range start — "smaller" should mean smaller magnitude.
                let (v, lo) = (*value as i128, self.start as i128);
                let target = if lo <= 0 && 0 < self.end as i128 { 0 } else { lo };
                let mut out = Vec::new();
                if v != target {
                    out.push(target as $ty);
                    let mid = target + (v - target) / 2;
                    if mid != target && mid != v {
                        out.push(mid as $ty);
                    }
                    let step = if v > target { v - 1 } else { v + 1 };
                    if step != target && !out.contains(&(step as $ty)) {
                        out.push(step as $ty);
                    }
                }
                out
            }
        }
    )*};
}

impl_sint_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        // Shrink toward zero if in range, else toward the start; stop once
        // the step is negligible relative to the span.
        let target = if self.start <= 0.0 && 0.0 < self.end {
            0.0
        } else {
            self.start
        };
        let dist = value - target;
        let span = self.end - self.start;
        let mut out = Vec::new();
        if dist.abs() > span * 1e-9 {
            out.push(target);
            out.push(target + dist / 2.0);
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise, recursively: every candidate replaces one
                // slot, the rest stay fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Clone + Debug {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, min..max)`: vectors of `strategy` values.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min = self.len.start;
            let n = value.len();
            let mut out: Vec<Self::Value> = Vec::new();
            // Element removal, most aggressive first: drop the back half,
            // then the front half, then single elements (bounded so huge
            // vectors do not explode the candidate set).
            if n > min {
                let half = min.max(n / 2);
                if half < n {
                    out.push(value[..half].to_vec());
                    out.push(value[n - half..].to_vec());
                }
                let singles = n.min(24);
                for i in 0..singles {
                    let mut next = value.clone();
                    next.remove(i);
                    if next.len() >= min {
                        out.push(next);
                    }
                }
            }
            // Then shrink surviving elements in place (bounded likewise).
            for i in 0..n.min(24) {
                for cand in self.elem.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Resolved runtime configuration for one property run.
struct RunConfig {
    cases: u32,
    base_seed: u64,
    persist_dir: Option<PathBuf>,
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl RunConfig {
    /// Read `TLB_PROPTEST_CASES` / `TLB_PROPTEST_SEED` and locate the
    /// regression directory.
    fn from_env() -> RunConfig {
        let cases = std::env::var("TLB_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(CASES);
        let base_seed = std::env::var("TLB_PROPTEST_SEED")
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(0);
        RunConfig {
            cases,
            base_seed,
            persist_dir: regressions_dir(),
        }
    }
}

/// Locate the checked-in `fuzz/regressions/` directory: an explicit
/// `TLB_PROPTEST_REGRESSIONS` wins; otherwise walk up from the crate's
/// manifest directory (cargo sets it for `cargo test` at runtime) to the
/// workspace root that carries the directory. `None` disables persistence.
fn regressions_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("TLB_PROPTEST_REGRESSIONS") {
        return Some(PathBuf::from(dir));
    }
    let start = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let mut dir = PathBuf::from(start);
    loop {
        let cand = dir.join("fuzz").join("regressions");
        if cand.is_dir() {
            return Some(cand);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parse `cc <seed>` lines out of a persistence file.
fn parse_regression_seeds(content: &str) -> Vec<u64> {
    content
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("cc ")?;
            let token = rest.split(|c: char| c.is_whitespace() || c == '#').next()?;
            parse_u64(token)
        })
        .collect()
}

/// Greedily minimize a failing input: retry shrink candidates (most
/// aggressive first) and recurse on the first that still fails.
fn shrink_failure<S, F>(
    strat: &S,
    mut input: S::Value,
    mut err: TestCaseError,
    f: &mut F,
) -> (S::Value, TestCaseError, u32)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&input) {
            steps += 1;
            if let Err(e) = f(cand.clone()) {
                input = cand;
                err = e;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }
    (input, err, steps)
}

/// Append a failing case seed to the property's persistence file.
fn persist_failure(dir: &std::path::Path, name: &str, seed: u64, minimized: &str) {
    use std::io::Write;
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.txt"));
    let new_file = !path.exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    if new_file {
        let _ = writeln!(
            file,
            "# Failure-persistence file for property `{name}` (vendor/proptest).\n\
             # Each `cc <seed>` line replays first on every future run of the\n\
             # property. Keep lines whose failures were fixed as regression\n\
             # pins; delete the file only if the property itself is removed."
        );
    }
    let one_line = minimized.replace('\n', " ");
    let short = if one_line.len() > 200 {
        let mut cut = 200;
        while !one_line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &one_line[..cut])
    } else {
        one_line
    };
    let _ = writeln!(file, "cc {seed:#018x} # shrunk input: {short}");
}

/// Run one case: sample from `case_seed`, on failure shrink + persist +
/// panic with both the raw and minimized input.
fn run_one_case<S, F>(
    name: &str,
    strat: &S,
    f: &mut F,
    case_seed: u64,
    case_label: &str,
    persist_dir: Option<&std::path::Path>,
) where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(case_seed);
    let input = strat.sample(&mut rng);
    if let Err(e) = f(input.clone()) {
        let (minimized, min_err, steps) = shrink_failure(strat, input.clone(), e, f);
        let minimized_str = format!("{minimized:?}");
        let persisted = match persist_dir {
            Some(dir) => {
                persist_failure(dir, name, case_seed, &minimized_str);
                format!("{}", dir.join(format!("{name}.txt")).display())
            }
            None => "<none: no fuzz/regressions dir found>".to_string(),
        };
        panic!(
            "property {name} failed at {case_label} (case seed {case_seed:#x}): {}\n\
             original input: {input:?}\n\
             minimized input ({steps} shrink steps): {minimized_str}\n\
             persisted to: {persisted}\n\
             replay: the seed was appended to the persistence file and replays first on\n\
             the next run; or set TLB_PROPTEST_SEED / TLB_PROPTEST_CASES to re-explore.",
            min_err.message()
        );
    }
}

/// Core property driver: replay persisted regressions first, then run
/// `cases` fresh sampled inputs; shrink and persist on failure.
fn run_cases_impl<S, F>(name: &str, strat: S, mut f: F, cfg: RunConfig)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    // Replay checked-in regressions before exploring.
    if let Some(dir) = cfg.persist_dir.as_deref() {
        let path = dir.join(format!("{name}.txt"));
        if let Ok(content) = std::fs::read_to_string(&path) {
            for (i, seed) in parse_regression_seeds(&content).into_iter().enumerate() {
                run_one_case(
                    name,
                    &strat,
                    &mut f,
                    seed,
                    &format!("regression replay {i} ({})", path.display()),
                    None, // already persisted
                );
            }
        }
    }

    let test_seed = derive_seed(name, cfg.base_seed);
    let mut seq = TestRng::new(test_seed);
    for case in 0..cfg.cases {
        let case_seed = seq.next_u64();
        run_one_case(
            name,
            &strat,
            &mut f,
            case_seed,
            &format!("case {case}/{}", cfg.cases),
            cfg.persist_dir.as_deref(),
        );
    }
}

/// Drive a property over sampled inputs (count: `TLB_PROPTEST_CASES`, else
/// [`CASES`]); replay persisted regressions first; on failure, shrink to a
/// minimized input, persist the case seed, and panic with both inputs.
pub fn run_cases<S, F>(name: &str, strat: S, f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    run_cases_impl(name, strat, f, RunConfig::from_env());
}

/// [`run_cases`] with an explicit case count (still scaled down — never
/// up — by `TLB_PROPTEST_CASES`, so CI can globally cheapen expensive
/// properties). For properties whose single case is costly, e.g. whole
/// simulation runs.
pub fn run_cases_n<S, F>(name: &str, n: u32, strat: S, f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut cfg = RunConfig::from_env();
    cfg.cases = if std::env::var("TLB_PROPTEST_CASES").is_ok() {
        cfg.cases.min(n)
    } else {
        n
    };
    run_cases_impl(name, strat, f, cfg);
}

/// [`run_cases`] with every knob injected instead of read from the
/// environment: explicit case count, base seed, and persistence directory
/// (`None` disables both replay and persistence). For harnesses that must
/// not race on env vars — notably the fuzzer's mutation self-check, which
/// points `persist_dir` at a temp directory and asserts a regression file
/// appears there.
pub fn run_cases_with<S, F>(
    name: &str,
    cases: u32,
    base_seed: u64,
    persist_dir: Option<std::path::PathBuf>,
    strat: S,
    f: F,
) where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    run_cases_impl(
        name,
        strat,
        f,
        RunConfig {
            cases,
            base_seed,
            persist_dir,
        },
    );
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site and
/// passed through) running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    ($($strat,)*),
                    |($($arg,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The proptest prelude: strategies, `any`, and the macros.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    proptest! {
        /// Range strategies stay in range; tuples and vecs compose.
        #[test]
        fn stub_strategies_stay_in_range(
            x in 3u64..10,
            f in -1.5f64..2.5,
            (a, b) in (0u8..4, any::<bool>()),
            mut xs in crate::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(a < 4);
            prop_assert!(u8::from(b) <= 1);
            xs.sort_unstable();
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(*xs.last().unwrap() < 100);
        }
    }

    /// Run a property with persistence disabled and a fixed config, so
    /// tests control the environment without touching env vars.
    fn run_plain<S, F>(name: &str, cases: u32, strat: S, f: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        run_cases_impl(
            name,
            strat,
            f,
            RunConfig {
                cases,
                base_seed: 0,
                persist_dir: None,
            },
        );
    }

    fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property should have failed");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn failures_panic_with_input() {
        let msg = catch(|| {
            run_plain("always_fails", 8, (0u8..2,), |(v,)| {
                Err(TestCaseError::fail(format!("saw {v}")))
            })
        });
        assert!(msg.contains("property always_fails failed"), "{msg}");
        assert!(msg.contains("original input"), "{msg}");
        assert!(msg.contains("minimized input"), "{msg}");
    }

    #[test]
    fn shrink_minimizes_scalar_to_boundary() {
        // Fails iff x >= 25: the minimal failing input is exactly 25.
        let msg = catch(|| {
            run_plain("shrink_scalar", 64, (0u64..1000,), |(x,)| {
                if x >= 25 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            })
        });
        assert!(msg.contains("minimized input"), "{msg}");
        assert!(msg.contains("(25,)"), "should shrink to exactly 25: {msg}");
    }

    #[test]
    fn shrink_removes_vec_elements() {
        // Fails iff the vec contains any element >= 50; minimal failing
        // input is a single-element vec [50].
        let msg = catch(|| {
            run_plain(
                "shrink_vec",
                64,
                (collection::vec(0u32..100, 1..30),),
                |(xs,)| {
                    if xs.iter().any(|&x| x >= 50) {
                        Err(TestCaseError::fail("has big element"))
                    } else {
                        Ok(())
                    }
                },
            )
        });
        assert!(msg.contains("minimized input"), "{msg}");
        assert!(msg.contains("([50],)"), "should shrink to [50]: {msg}");
    }

    #[test]
    fn shrink_recurses_through_tuples() {
        // Fails iff a + b >= 30; shrinking must reduce both components.
        let msg = catch(|| {
            run_plain("shrink_tuple", 64, ((0u32..100, 0u32..100),), |((a, b),)| {
                if a + b >= 30 {
                    Err(TestCaseError::fail("sum too big"))
                } else {
                    Ok(())
                }
            })
        });
        // The minimum is some (a, b) on the a + b == 30 line with the other
        // component at 0 after greedy minimization.
        assert!(
            msg.contains("((30, 0),)") || msg.contains("((0, 30),)"),
            "should shrink to the boundary: {msg}"
        );
    }

    #[test]
    fn signed_and_float_shrink_toward_zero() {
        let s = -50i32..50;
        assert_eq!(s.shrink(&40)[0], 0);
        assert_eq!(s.shrink(&-40)[0], 0);
        assert!(s.shrink(&0).is_empty());
        let f = -1.5f64..2.5;
        assert_eq!(f.shrink(&2.0)[0], 0.0);
        assert!(f.shrink(&0.0).is_empty());
        assert!(AnyOf::<bool>(std::marker::PhantomData).shrink(&true) == vec![false]);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = collection::vec(0u32..10, 2..8);
        let v = vec![5u32, 5, 5];
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 2, "candidate {cand:?} below min length");
        }
    }

    #[test]
    fn derived_seeds_are_per_test_and_base_dependent() {
        let a = derive_seed("prop_a", 0);
        let b = derive_seed("prop_b", 0);
        assert_ne!(a, b, "two properties must not share a stream");
        assert_ne!(a, derive_seed("prop_a", 1), "base seed must move streams");
        assert_eq!(a, derive_seed("prop_a", 0), "derivation is deterministic");
    }

    #[test]
    fn determinism_same_config_same_cases() {
        let collect = || {
            let mut seen = Vec::new();
            run_plain("determinism_probe", 16, (0u64..1_000_000,), |(x,)| {
                seen.push(x);
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn persistence_roundtrip_and_replay() {
        // A unique temp dir per process; no env vars touched.
        let dir = std::env::temp_dir().join(format!("tlb-proptest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // 1. A failing property persists its case seed.
        let dir2 = dir.clone();
        let msg = catch(move || {
            run_cases_impl(
                "persist_me",
                (0u64..100,),
                |(x,)| {
                    if x >= 10 {
                        Err(TestCaseError::fail("big"))
                    } else {
                        Ok(())
                    }
                },
                RunConfig {
                    cases: 32,
                    base_seed: 0,
                    persist_dir: Some(dir2),
                },
            )
        });
        assert!(msg.contains("persisted to"), "{msg}");
        let path = dir.join("persist_me.txt");
        let content = std::fs::read_to_string(&path).expect("persistence file written");
        let seeds = parse_regression_seeds(&content);
        assert_eq!(seeds.len(), 1, "one failure, one seed: {content}");

        // 2. The persisted seed replays first and still fails (labelled as
        //    a regression replay), even with zero fresh cases configured.
        let dir3 = dir.clone();
        let msg = catch(move || {
            run_cases_impl(
                "persist_me",
                (0u64..100,),
                |(x,)| {
                    if x >= 10 {
                        Err(TestCaseError::fail("big"))
                    } else {
                        Ok(())
                    }
                },
                RunConfig {
                    cases: 1,
                    base_seed: 999, // different exploration stream
                    persist_dir: Some(dir3),
                },
            )
        });
        assert!(msg.contains("regression replay 0"), "{msg}");

        // 3. Once the "bug" is fixed, the replay passes and fresh cases run.
        run_cases_impl(
            "persist_me",
            (0u64..100,),
            |(_,)| Ok(()),
            RunConfig {
                cases: 4,
                base_seed: 0,
                persist_dir: Some(dir.clone()),
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_seeds_accepts_hex_decimal_and_comments() {
        let content =
            "# header\ncc 0x00000000000000ff # shrunk input: (255,)\n\ncc 42\nnot a seed\n";
        assert_eq!(parse_regression_seeds(content), vec![255, 42]);
        assert_eq!(parse_u64("0xFF"), Some(255));
        assert_eq!(parse_u64(" 17 "), Some(17));
        assert_eq!(parse_u64("zzz"), None);
    }

    #[test]
    fn env_cases_parser_rules() {
        // RunConfig::from_env reads live env; exercise only the pure parts.
        assert_eq!(parse_u64("0x10"), Some(16));
        let cfg = RunConfig {
            cases: CASES,
            base_seed: 0,
            persist_dir: None,
        };
        assert_eq!(cfg.cases, 128);
    }
}
