//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API it uses: the
//! `proptest! {}` test macro, `prop_assert!`/`prop_assert_eq!`, numeric
//! range and tuple strategies, `collection::vec`, and `any::<bool>()`.
//! Differences from real proptest: a fixed deterministic seed per test
//! run, a fixed case count ([`CASES`]), and **no shrinking** — a failure
//! reports the raw generated input. See `vendor/README.md` for the
//! replacement policy.

use std::fmt::Debug;
use std::ops::Range;

/// Number of random cases each property runs.
pub const CASES: u32 = 128;

/// Failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    pub fn message(&self) -> &str {
        &self.0
    }
}

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value: Clone + Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128 + off) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }
    )*};
}

impl_sint_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Clone + Debug {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `vec(strategy, min..max)`: vectors of `strategy` values.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Drive a property over [`CASES`] sampled inputs; panic on the first
/// failure, printing the generated input (no shrinking).
pub fn run_cases<S, F>(name: &str, strat: S, mut f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    // Seed derived from the test name so distinct properties explore
    // distinct sequences but every run is reproducible.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::new(seed);
    for case in 0..CASES {
        let input = strat.sample(&mut rng);
        if let Err(e) = f(input.clone()) {
            panic!(
                "property {name} failed at case {case}/{CASES}: {}\ninput: {input:?}",
                e.message()
            );
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site and
/// passed through) running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    ($($strat,)*),
                    |($($arg,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The proptest prelude: strategies, `any`, and the macros.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay in range; tuples and vecs compose.
        #[test]
        fn stub_strategies_stay_in_range(
            x in 3u64..10,
            f in -1.5f64..2.5,
            (a, b) in (0u8..4, any::<bool>()),
            mut xs in crate::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(a < 4);
            prop_assert!(u8::from(b) <= 1);
            xs.sort_unstable();
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(*xs.last().unwrap() < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_input() {
        crate::run_cases("always_fails", (0u8..2,), |(v,)| {
            Err(crate::TestCaseError::fail(format!("saw {v}")))
        });
    }
}
