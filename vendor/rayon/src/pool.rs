//! The execution engine behind the shim's parallel iterators: a
//! scoped-thread pool with a chunked shared work queue.
//!
//! Each `collect` spawns `min(current_num_threads(), jobs)` scoped OS
//! threads; workers claim chunks of the job vector off an atomic cursor
//! (work-stealing-lite: no per-thread deques, but idle workers always find
//! the next unclaimed chunk). Results land in per-index slots, so output
//! order always equals input order regardless of which worker ran which
//! job. A panic in any job is captured and re-raised with its original
//! payload on the calling thread after all workers stop.
//!
//! Thread-count policy (first match wins):
//! 1. an active [`with_threads`] override on the calling thread,
//! 2. the `TLB_THREADS` environment variable (positive integer, read once
//!    per process — figure harnesses call `collect` in tight loops, and an
//!    env-var lookup takes the process environment lock on every call),
//! 3. [`std::thread::available_parallelism`] (also cached).
//!
//! When the effective thread count is 1 (either policy, or a single-job
//! batch), `run` bypasses the chunked shared work queue entirely and maps
//! in-line on the calling thread: no allocation of job/result slots, no
//! scoped-thread setup, no atomics. `BENCH_PR2.json` recorded the pooled
//! path *slower* than serial (0.89× on fig11) on a 1-core host before this
//! bypass was load-bearing; the determinism tests pin that the bypass
//! spawns no workers and produces bit-identical results.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Per-thread thread-count override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Cumulative count of pool worker threads (across all pool invocations in
/// this process) that executed at least one job. Serial in-line execution
/// does not count. See [`workers_observed`].
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default thread count (`TLB_THREADS`, else available
/// cores), resolved once: `current_num_threads` sits on every `collect`,
/// and the env lookup both allocates and serializes on the environment
/// lock. Changing `TLB_THREADS` after the first parallel call therefore
/// has no effect; use [`with_threads`] for scoped control.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// The number of threads the next parallel `collect` on this thread will
/// use (before clamping to the job count). Mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        tlb_engine::env_knob::parse_with("TLB_THREADS", cores, |s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| "want a positive integer".to_string())
        })
    })
}

/// Run `op` with the pool pinned to `n` threads on this thread (shim-only
/// stand-in for `ThreadPoolBuilder::num_threads(n).build().install(op)`).
/// `with_threads(1, ..)` collapses every parallel iterator inside `op` to
/// plain in-line serial execution — the serial baseline used by the
/// determinism tests and the `BENCH_PR2.json` emitter. Restores the
/// previous override even if `op` panics.
pub fn with_threads<R>(n: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    op()
}

/// How many distinct pool worker threads have executed at least one job
/// since process start. Workers are spawned fresh per `collect`, so a
/// single batch that fans out over k threads advances this by k. The
/// determinism tests use the delta across a batch to prove multi-threaded
/// execution actually happened (shim-only diagnostic; not part of rayon).
pub fn workers_observed() -> usize {
    WORKERS.load(Ordering::SeqCst)
}

/// Map `f` over `items` on the pool, preserving input order in the output.
pub(crate) fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        // Single-thread fast path: bypass the shared work queue and run
        // in-line. Identical results by construction (same jobs, same
        // order), with none of the slot allocations, scoped-thread spawns
        // or cursor atomics below — on a 1-core host the pooled path is
        // pure overhead (BENCH_PR2 measured 0.89× on fig11).
        return items.into_iter().map(f).collect();
    }

    // One slot per job: workers take the input by value and fill the
    // result for the same index, which is what keeps output order equal
    // to input order no matter how chunks interleave.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Small chunks keep the queue balanced under uneven job durations
    // while bounding cursor contention for large batches.
    let chunk = (n / (threads * 4)).max(1);
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut counted = false;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        return;
                    }
                    for i in start..(start + chunk).min(n) {
                        if panicked.lock().unwrap().is_some() {
                            return; // a sibling failed; stop picking up work
                        }
                        let item = jobs[i].lock().unwrap().take().expect("job claimed twice");
                        if !counted {
                            counted = true;
                            WORKERS.fetch_add(1, Ordering::SeqCst);
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(r) => *results[i].lock().unwrap() = Some(r),
                            Err(payload) => {
                                *panicked.lock().unwrap() = Some(payload);
                                return;
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panicked.into_inner().unwrap() {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("job produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn multiple_distinct_threads_execute_jobs() {
        // Jobs sleep long enough that every spawned worker claims one
        // before the first finishes — even on a single hardware core,
        // where the OS time-slices the workers.
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let before = workers_observed();
        let out: Vec<usize> = with_threads(8, || {
            run((0..8).collect(), |i: usize| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(Duration::from_millis(20));
                i
            })
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        let distinct = seen.lock().unwrap().len();
        assert!(distinct > 1, "expected >1 worker thread, saw {distinct}");
        assert!(
            workers_observed() - before >= 2,
            "worker counter must track multi-threaded execution"
        );
    }

    #[test]
    fn order_preserved_under_unequal_durations() {
        // Early jobs are the slowest, so later indices finish first; the
        // output must still come back in input order.
        let out: Vec<u64> = with_threads(4, || {
            run((0u64..16).collect(), |i| {
                std::thread::sleep(Duration::from_millis((16 - i) * 2));
                i * 10
            })
        });
        assert_eq!(out, (0u64..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_one_job_propagates_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                run((0..8).collect(), |i: i32| {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                })
            })
        }));
        let payload = result.expect_err("collect must re-raise the job panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job 5 exploded"), "payload lost: {msg:?}");
    }

    #[test]
    fn one_thread_collapses_to_serial() {
        let main_id = std::thread::current().id();
        let before = workers_observed();
        let ids: Vec<ThreadId> = with_threads(1, || {
            run((0..8).collect(), |_: usize| std::thread::current().id())
        });
        assert!(
            ids.iter().all(|&id| id == main_id),
            "serial must run in-line"
        );
        assert_eq!(workers_observed(), before, "serial must spawn no workers");
    }

    #[test]
    fn single_job_batch_bypasses_the_pool_even_with_many_threads() {
        // threads is clamped to the job count, so a 1-job batch takes the
        // in-line bypass no matter the configured width.
        let main_id = std::thread::current().id();
        let before = workers_observed();
        let ids: Vec<ThreadId> =
            with_threads(8, || run(vec![0], |_: usize| std::thread::current().id()));
        assert_eq!(ids, vec![main_id], "1-job batch must run in-line");
        assert_eq!(workers_observed(), before, "bypass must spawn no workers");
    }

    #[test]
    fn bypass_propagates_panics_like_the_pool() {
        // The in-line path must not change observable panic behavior.
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(1, || {
                run((0..4).collect(), |i: i32| {
                    if i == 2 {
                        panic!("serial job 2 exploded");
                    }
                    i
                })
            })
        }));
        let payload = result.expect_err("bypass must re-raise the job panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("serial job 2 exploded"));
    }

    #[test]
    fn default_thread_count_is_stable_across_calls() {
        // The process-wide default is resolved once; repeated reads agree
        // (and don't re-take the env lock — not observable here, but the
        // stability is).
        let a = current_num_threads();
        let b = current_num_threads();
        assert_eq!(a, b);
        assert!(a >= 1);
    }

    #[test]
    fn with_threads_restores_previous_override() {
        let outside = current_num_threads();
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<i32> = with_threads(4, || run(Vec::new(), |x: i32| x));
        assert!(empty.is_empty());
        let one: Vec<i32> = with_threads(4, || run(vec![7], |x: i32| x + 1));
        assert_eq!(one, vec![8]);
    }
}
