//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the rayon API it actually uses
//! (`par_iter` / `into_par_iter` followed by standard iterator adapters)
//! and executes it sequentially. Determinism tests already require that
//! parallel and serial execution produce identical results, so swapping
//! the execution strategy is observationally equivalent — only wall-clock
//! time differs. See `vendor/README.md` for the replacement policy.

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Types convertible into a "parallel" iterator (sequential here).
pub trait IntoParallelIterator {
    /// Element type of the iterator.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Consume `self` and iterate over its elements.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl<T, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    type Iter = std::array::IntoIter<T, N>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate over borrowed elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_maps_and_collects() {
        let v: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_preserves_order() {
        let xs = vec!["a", "b", "c"];
        let out: Vec<&&str> = xs.par_iter().collect();
        assert_eq!(out, vec![&"a", &"b", &"c"]);
    }
}
