//! Offline stand-in for `rayon` — with a real thread pool.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the rayon API it actually uses
//! (`par_iter` / `into_par_iter` + `map` + `collect`). Unlike the original
//! sequential stub, this version genuinely fans work out across OS threads:
//! `collect` drives a scoped-thread pool with a chunked shared work queue
//! (see [`pool`]), preserving input order in the output and re-raising the
//! first job panic on the caller. Determinism is unchanged by construction —
//! each job runs the same pure closure on the same item, and results are
//! written to per-index slots — which the workspace's
//! `parallel_equals_serial` tests verify end to end.
//!
//! Thread count: `TLB_THREADS` env var, else available cores; tests and
//! benchmarks pin it per call-site with [`with_threads`]. See
//! `vendor/README.md` for the replacement policy and the two shim-only
//! entry points ([`with_threads`], [`workers_observed`]) a switch back to
//! real rayon would have to replace.

mod pool;

pub use pool::{current_num_threads, with_threads, workers_observed};

/// The rayon prelude: parallel-iterator conversion traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A lazily-built parallel computation: adapters stack up (only [`map`]
/// exists in this shim), and [`collect`] executes on the thread pool.
///
/// [`map`]: ParallelIterator::map
/// [`collect`]: ParallelIterator::collect
pub trait ParallelIterator: Sized + Send {
    /// Element type produced by this stage.
    type Item: Send;

    /// Execute the pipeline, returning all items in input order. The
    /// outermost `map` stage is what actually fans out on the pool.
    fn drive(self) -> Vec<Self::Item>;

    /// Map each element through `f` in parallel at execution time.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Execute and collect into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// The source stage: a materialized vector of items.
pub struct IterPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterPar<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        // No per-item work at the source stage; nothing to parallelize.
        self.items
    }
}

/// A `map` stage over a previous stage.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        pool::run(self.base.drive(), self.f)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type of the iterator.
    type Item: Send;
    /// Concrete parallel-iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consume `self` and fan its elements out.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterPar<T>;

    fn into_par_iter(self) -> Self::Iter {
        IterPar { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    type Iter = IterPar<T>;

    fn into_par_iter(self) -> Self::Iter {
        IterPar {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send + 'a;
    /// Concrete parallel-iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Fan out over borrowed elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterPar<&'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        IterPar {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterPar<&'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        IterPar {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_maps_and_collects() {
        let v: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_preserves_order() {
        let xs = vec!["a", "b", "c"];
        let out: Vec<&&str> = xs.par_iter().collect();
        assert_eq!(out, vec![&"a", &"b", &"c"]);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<i32> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..64).map(|x| (x + 1) * 2).collect::<Vec<_>>());
    }

    #[test]
    fn array_source_works() {
        let out: Vec<i32> = [5, 6, 7].into_par_iter().map(|x| x - 5).collect();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn slice_par_iter_works() {
        let xs = [1u64, 2, 3, 4];
        let out: Vec<u64> = xs[..].par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16]);
    }
}
