//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde::Serialize` / `serde::Deserialize` traits for
//! plain (non-generic) structs with named fields — the only shape this
//! workspace derives on. Implemented without `syn`/`quote` (unavailable
//! offline): the struct name and field names are recovered by scanning the
//! raw token stream, and the impls are emitted as source text and re-parsed.
//! See `vendor/README.md` for the replacement policy.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Struct name + named-field list scraped from the derive input.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Scan the derive input for `struct <Name> { <fields> }`.
///
/// Skips outer attributes and visibility; rejects enums, tuple structs, and
/// generics with a compile error (this stub does not need them).
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => return Err(format!("expected `struct`, found {other:?}")),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("derive stub does not support generics on `{name}`"))
        }
        other => {
            return Err(format!(
                "derive stub supports only structs with named fields; `{name}` has {other:?}"
            ))
        }
    };

    // Field names: idents directly followed by `:` at angle-bracket depth 0,
    // with attributes skipped. Commas inside `<...>` must not split fields,
    // so depth tracking guards the scan.
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut at_field_start = true;
    let mut body_tokens = body.into_iter().peekable();
    while let Some(tok) = body_tokens.next() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                body_tokens.next(); // skip attribute group
            }
            TokenTree::Ident(id) if at_field_start && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = body_tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        body_tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if at_field_start => {
                if matches!(body_tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    fields.push(id.to_string());
                    at_field_start = false;
                }
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => at_field_start = true,
                _ => {}
            },
            _ => {}
        }
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (i, f) in shape.fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::serialize_json(&self.{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize_json(v.field(\"{f}\")?)?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn deserialize_json(v: &::serde::json::Value)\n\
                 -> Result<Self, ::serde::json::Error> {{\n\
                 Ok(Self {{ {inits} }})\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}
