//! Cross-crate integration tests: the full stack (workload → simulator →
//! transport → metrics) exercised through the public `tlb` facade.

use tlb::prelude::*;

fn small_mix(n_short: usize, n_long: usize) -> BasicMixConfig {
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = n_short;
    mix.n_long = n_long;
    mix.long_lo = 2_000_000;
    mix.long_hi = 4_000_000;
    mix
}

fn run(scheme: Scheme, mix: &BasicMixConfig, seed: u64) -> RunReport {
    let cfg = SimConfig::basic_paper(scheme);
    let flows = basic_mix(&cfg.topo, mix, &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

#[test]
fn every_scheme_delivers_every_byte() {
    let mix = small_mix(40, 2);
    for scheme in Scheme::paper_set() {
        let name = scheme.name();
        let r = run(scheme, &mix, 11);
        assert_eq!(r.completed, r.total_flows, "{name}: unfinished flows");
        // Conservation: nothing is silently lost — receptions plus drops
        // account for every transmission (first + retransmissions).
        let sent = r.short.data_sent + r.long.data_sent + r.short.retransmits + r.long.retransmits;
        let received = r.short.data_received + r.long.data_received;
        assert!(
            received <= sent,
            "{name}: received {received} exceeds sent {sent}"
        );
        assert!(
            sent - received <= r.drops + 64,
            "{name}: {} segments vanished (sent {sent}, recv {received}, drops {})",
            sent - received - r.drops,
            r.drops
        );
    }
}

#[test]
fn tlb_beats_ecmp_on_the_paper_workload() {
    // The headline claim (§1): under a heavy mixed workload TLB cuts the
    // short-flow AFCT versus ECMP while not hurting long flows.
    let cfg = SimConfig::basic_paper(Scheme::tlb_default());
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 3;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, 10, &mut SimRng::new(7));
    let tlb = Simulation::new_chained(cfg, flows, next).run();

    let cfg = SimConfig::basic_paper(Scheme::Ecmp);
    let (flows, next) = sustained_mix(&cfg.topo, &mix, 10, &mut SimRng::new(7));
    let ecmp = Simulation::new_chained(cfg, flows, next).run();

    assert!(
        tlb.fct_short.afct < ecmp.fct_short.afct,
        "TLB afct {} !< ECMP afct {}",
        tlb.fct_short.afct,
        ecmp.fct_short.afct
    );
    assert!(
        tlb.fct_short.p99 < ecmp.fct_short.p99 * 1.05,
        "TLB p99 {} must not exceed ECMP {}",
        tlb.fct_short.p99,
        ecmp.fct_short.p99
    );
    assert!(
        tlb.long_throughput() > 0.9 * ecmp.long_throughput(),
        "TLB long throughput collapsed: {} vs {}",
        tlb.long_throughput(),
        ecmp.long_throughput()
    );
}

#[test]
fn rps_reorders_more_than_letflow() {
    // Fig. 3(b)/8(a): packet granularity reorders far more than flowlets.
    let mix = small_mix(60, 3);
    let rps = run(Scheme::Rps, &mix, 3);
    let letflow = run(Scheme::letflow_default(), &mix, 3);
    assert!(
        rps.short.reorder_ratio() > 3.0 * letflow.short.reorder_ratio(),
        "RPS {} !>> LetFlow {}",
        rps.short.reorder_ratio(),
        letflow.short.reorder_ratio()
    );
    assert!(rps.short.dup_acks > letflow.short.dup_acks);
}

#[test]
fn ecmp_never_reorders() {
    let mix = small_mix(60, 3);
    let r = run(Scheme::Ecmp, &mix, 5);
    assert_eq!(r.short.out_of_order, 0);
    assert_eq!(r.long.out_of_order, 0);
    assert_eq!(r.drops, 0, "symmetric light load should not drop");
    assert_eq!(
        r.short.dup_acks + r.long.dup_acks,
        0,
        "no drops, no dupacks"
    );
}

#[test]
fn asymmetry_hurts_oblivious_schemes_more() {
    // Fig. 16/17: under bandwidth asymmetry, spraying into the slow links
    // (RPS) costs long-flow throughput; TLB/LetFlow route around them.
    let degrade = |scheme| {
        let mut cfg = SimConfig::basic_paper(scheme);
        cfg.topo
            .degrade_link(LeafId(0), SpineId(0), 0.2, SimTime::ZERO);
        cfg.topo
            .degrade_link(LeafId(0), SpineId(1), 0.2, SimTime::ZERO);
        let mix = small_mix(60, 3);
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(13));
        Simulation::new(cfg, flows).run()
    };
    let rps = degrade(Scheme::Rps);
    let tlb = degrade(Scheme::tlb_default());
    let letflow = degrade(Scheme::letflow_default());
    assert!(
        tlb.long_throughput() > rps.long_throughput(),
        "TLB {} !> RPS {} under asymmetry",
        tlb.long_throughput(),
        rps.long_throughput()
    );
    assert!(letflow.long_throughput() > rps.long_throughput());
}

#[test]
fn deadline_misses_grow_with_tighter_deadlines() {
    let cfg = || SimConfig::basic_paper(Scheme::tlb_default());
    let mut tight = small_mix(80, 3);
    tight.deadline_lo = SimTime::from_micros(100);
    tight.deadline_hi = SimTime::from_micros(200);
    let mut loose = tight;
    loose.deadline_lo = SimTime::from_secs(1);
    loose.deadline_hi = SimTime::from_secs(2);

    let c = cfg();
    let flows = basic_mix(&c.topo, &tight, &mut SimRng::new(17));
    let r_tight = Simulation::new(c, flows).run();
    let c = cfg();
    let flows = basic_mix(&c.topo, &loose, &mut SimRng::new(17));
    let r_loose = Simulation::new(c, flows).run();

    assert!(
        r_tight.fct_short.deadline_miss > 0.9,
        "sub-ms deadlines must mostly miss"
    );
    assert_eq!(
        r_loose.fct_short.deadline_miss, 0.0,
        "2s deadlines must all be met"
    );
}

#[test]
fn chained_flows_run_sequentially() {
    // Three flows chained on one client: each starts only after the
    // previous completes, so FCT windows must not overlap.
    let cfg = SimConfig::basic_paper(Scheme::Ecmp);
    let mk = |id: u32| FlowSpec {
        id: FlowId(id),
        src: HostId(0),
        dst: HostId(16),
        size_bytes: 100_000,
        start: SimTime::ZERO,
        deadline: None,
    };
    let flows = vec![mk(0), mk(1), mk(2)];
    let next = vec![Some(1), Some(2), None];
    let r = Simulation::new_chained(cfg, flows, next).run();
    assert_eq!(r.completed, 3);
    let f0 = r.fct.fct_of(FlowId(0)).unwrap();
    let f1 = r.fct.fct_of(FlowId(1)).unwrap();
    let f2 = r.fct.fct_of(FlowId(2)).unwrap();
    // Sequential 100 kB transfers have similar FCTs — none is inflated by
    // waiting (its clock starts at launch, not at t=0).
    for (i, f) in [f0, f1, f2].iter().enumerate() {
        assert!(
            *f < 0.01,
            "flow {i} fct {f} implausible for sequential runs"
        );
    }
}

#[test]
fn model_predicts_simulated_ballpark() {
    // Eq. 8 at the simulated operating point must land within an order of
    // magnitude of the simulator's short-flow AFCT (the model ignores
    // slow-start round trips' serialization, so exact match is not
    // expected).
    let cfg = SimConfig::basic_paper(Scheme::tlb_default());
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 3;
    let (flows, nxt) = sustained_mix(&cfg.topo, &mix, 8, &mut SimRng::new(23));
    let r = Simulation::new_chained(cfg, flows, nxt).run();

    let params = ModelParams::paper_defaults();
    let n_s = params.n_paths - 2.0; // longs occupy a couple of paths
    let model_fct = tlb::model::mean_fct_short(&params, n_s).unwrap();
    let sim_fct = r.fct_short.afct;
    let ratio = sim_fct / model_fct;
    assert!(
        (0.1..10.0).contains(&ratio),
        "model {model_fct}s vs sim {sim_fct}s: ratio {ratio}"
    );
}

#[test]
fn facade_prelude_compiles_and_runs() {
    // The README quickstart, as a test.
    let cfg = SimConfig::basic_paper(Scheme::tlb_default());
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 10;
    mix.n_long = 1;
    mix.long_lo = 500_000;
    mix.long_hi = 500_000;
    let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(7));
    let report = Simulation::new(cfg, flows).run();
    assert_eq!(report.completed, report.total_flows);
    assert!(!report.one_line().is_empty());
}
