//! The pipelined-delivery FEL bound on a high-BDP fabric.
//!
//! Long fat links are where per-packet `Arrive` events hurt: every packet
//! in flight is an FEL entry, so occupancy scales with the
//! bandwidth-delay product. The per-link delivery pipes cap it at
//! O(ports + pending timers/starts) regardless of BDP — this test builds a
//! 10 Gbit/s fabric with 500 µs per-link propagation (≈ 2 ms RTT across
//! the spine, a multi-megabyte BDP), runs both delivery modes, and checks
//! that the pipelined run is bit-identical yet bounded.

use tlb::prelude::*;

/// 2 leaves × 4 spines × 8 hosts, 10 Gbit/s everywhere, 500 µs per link:
/// 16 cross-rack 4 MB long flows plus 32 staggered 20 KB short flows.
fn high_bdp_job(scheme: Scheme, seed: u64) -> (SimConfig, Vec<FlowSpec>) {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.seed = seed;
    cfg.audit = true; // arm the in-loop occupancy oracle
    cfg.topo = LeafSpineBuilder::new(2, 4, 8)
        .link_gbps(10.0)
        .prop_per_link(SimTime::from_micros(500))
        .build()
        .into();
    cfg.horizon = SimTime::from_millis(60);
    let hosts_per_leaf = cfg.topo.hosts_per_leaf() as u32;
    let mut flows = Vec::new();
    for i in 0..16u32 {
        flows.push(FlowSpec {
            id: FlowId(i),
            src: HostId(i % hosts_per_leaf),
            dst: HostId(hosts_per_leaf + (i * 3) % hosts_per_leaf),
            size_bytes: 4_000_000,
            start: SimTime::from_micros(10 * i as u64),
            deadline: None,
        });
    }
    for i in 0..32u32 {
        flows.push(FlowSpec {
            id: FlowId(16 + i),
            src: HostId((i * 5) % hosts_per_leaf),
            dst: HostId(hosts_per_leaf + (i * 7) % hosts_per_leaf),
            size_bytes: 20_000,
            start: SimTime::from_micros(200 + 50 * i as u64),
            deadline: None,
        });
    }
    (cfg, flows)
}

fn digest(r: &RunReport) -> (u64, String, u64, u64, usize) {
    (
        r.events,
        format!("{:.12}/{:.12}", r.fct_short.afct, r.fct_long.mean_goodput),
        r.drops,
        r.marks,
        r.completed,
    )
}

#[test]
fn pipelined_delivery_bounds_fel_depth_on_high_bdp_links() {
    for scheme in [Scheme::Rps, Scheme::tlb_default()] {
        let name = scheme.name();
        let (mut cfg, flows) = high_bdp_job(scheme, 11);
        cfg.delivery = DeliveryKind::Pipelined;
        let piped = run_one_ref(&cfg, &flows);
        cfg.delivery = DeliveryKind::PerPacket;
        let reference = run_one_ref(&cfg, &flows);

        // Same physics, same results — only the FEL residency differs.
        assert_eq!(digest(&piped), digest(&reference), "{name}: modes diverged");
        assert_eq!(piped.audit, reference.audit, "{name}: audit diverged");
        assert_eq!(
            piped.fel_bound_peak, reference.fel_bound_peak,
            "{name}: occupancy bound must be mode-independent"
        );

        // The bound itself: every pipelined occupancy sample stays within
        // ports + links' worth of events plus pending timers/starts. (The
        // run loop also asserts this per sample when the audit is on; the
        // report-level check keeps it visible to integration callers.)
        let piped_max = piped.fel_depth.max();
        assert!(piped.fel_depth.len() > 10, "{name}: too few depth samples");
        assert!(
            piped_max <= piped.fel_bound_peak as f64,
            "{name}: pipelined FEL depth {piped_max} exceeds bound {}",
            piped.fel_bound_peak
        );

        // And it must matter: on a multi-megabyte BDP the per-packet
        // reference keeps an event per in-flight packet, far above the
        // fabric-sized bound the pipelined mode respects.
        let ref_max = reference.fel_depth.max();
        assert!(
            ref_max > piped.fel_bound_peak as f64,
            "{name}: scenario is not BDP-bound (per-packet max {ref_max} \
             within bound {})",
            piped.fel_bound_peak
        );
        assert!(
            piped_max * 2.0 < ref_max,
            "{name}: expected ≥2× FEL-depth reduction, got {piped_max} vs {ref_max}"
        );
    }
}
