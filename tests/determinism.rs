//! Bit-determinism across every simulator feature: identical seeds must
//! produce identical runs even with chaining, failure injection, tracing
//! and every scheme in the registry.

use tlb::prelude::*;
use tlb::simnet::LinkEvent;

fn full_feature_run(scheme: Scheme, seed: u64) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.seed = seed;
    cfg.trace_flows = vec![FlowId(0)];
    cfg.link_events.push(LinkEvent {
        at: SimTime::from_millis(5),
        leaf: LeafId(0),
        spine: SpineId(7),
        bw_factor: 0.5,
        new_prop_delay: None,
        extra_delay: SimTime::from_micros(50),
    });
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 30;
    mix.n_long = 2;
    mix.long_lo = 1_500_000;
    mix.long_hi = 2_500_000;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, 4, &mut SimRng::new(seed ^ 0xF00D));
    Simulation::new_chained(cfg, flows, next).run()
}

fn digest(r: &RunReport) -> (u64, String, u64, u64, usize, usize) {
    (
        r.events,
        format!("{:.12}/{:.12}", r.fct_short.afct, r.fct_long.mean_goodput),
        r.drops,
        r.marks,
        r.traces.len(),
        r.completed,
    )
}

/// Order-sensitive hash of the sampled FEL-occupancy series. The sample
/// *schedule* is delivery-mode-independent, but the *values* are actual
/// queue occupancies, which legitimately differ between pipelined and
/// per-packet delivery — so this is asserted only between runs of the
/// same delivery mode (backends, dispatch paths, thread counts, reruns).
fn fel_depth_hash(r: &RunReport) -> u64 {
    r.fel_depth
        .samples()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, v| {
            (h ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01B3)
        })
}

#[test]
fn all_schemes_are_bit_deterministic() {
    let mut schemes = Scheme::extended_set();
    schemes.push(Scheme::Wcmp);
    for scheme in schemes {
        let name = scheme.name();
        let a = full_feature_run(scheme.clone(), 99);
        let b = full_feature_run(scheme, 99);
        assert_eq!(digest(&a), digest(&b), "{name} not deterministic");
        assert_eq!(
            fel_depth_hash(&a),
            fel_depth_hash(&b),
            "{name}: fel_depth series diverged between reruns"
        );
        // Even the packet traces must match hop for hop.
        assert_eq!(a.traces.len(), b.traces.len());
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.hop, y.hop, "{name}: trace diverged");
            assert_eq!(x.at, y.at, "{name}: trace timing diverged");
        }
    }
}

#[test]
fn parallel_execution_matches_serial() {
    // The pool fan-out must not perturb per-run results: run the same
    // 8-job batch serially (run_one) and on a 4-thread pool, and require
    // bit-identical digests. The thread probe keeps the test load-bearing —
    // it fails if the "parallel" path silently degrades to sequential.
    let mk_job = |seed| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.seed = seed;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 20;
        mix.n_long = 1;
        mix.long_lo = 1_000_000;
        mix.long_hi = 1_000_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
        (cfg, flows)
    };
    let serial: Vec<_> = (0..8).map(|s| run_one(mk_job(s).0, mk_job(s).1)).collect();
    let before = rayon::workers_observed();
    let parallel = rayon::with_threads(4, || run_all((0..8).map(mk_job).collect()));
    assert!(
        rayon::workers_observed() - before >= 2,
        "batch must actually fan out over >1 OS thread"
    );
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(digest(a), digest(b), "{}: parallel != serial", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across thread counts",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across thread counts",
            a.scheme
        );
    }
}

#[test]
fn fuzz_scenarios_are_digest_stable_across_thread_counts() {
    // The fuzzer's scenarios must be as deterministic as the hand-built
    // ones, including under an odd worker count (`TLB_THREADS=3`
    // equivalent, pinned here via the explicit pool so the test does not
    // race on the environment). Fixed raw tuples span schemes, incast,
    // and static + mid-run degradation.
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    // Fan each tuple out over four workload seeds: 16 jobs gives the
    // 3-thread pool enough queue depth that the worker probe below is not
    // racing a single fast worker draining the whole batch.
    let jobs: Vec<_> = raws
        .iter()
        .flat_map(
            |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                (0..4).map(move |k| {
                    (
                        topo,
                        traffic,
                        (seed + k * 1000, degrade, bw, extra, mid),
                        failure,
                    )
                })
            },
        )
        .map(|raw| {
            let b = tlb_fuzz::Scenario::from_raw(raw).build();
            (b.cfg, b.flows)
        })
        .collect();
    let serial: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|(cfg, flows)| run_one(cfg, flows))
        .collect();
    let before = rayon::workers_observed();
    let threaded = rayon::with_threads(3, || run_all(jobs));
    assert!(
        rayon::workers_observed() - before >= 2,
        "3-thread batch must actually fan out over >1 OS thread"
    );
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(digest(a), digest(b), "{}: 3-thread != serial", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across thread counts",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across thread counts",
            a.scheme
        );
    }
}

#[test]
fn fel_backends_are_bit_identical_on_fuzz_batch() {
    // The calendar queue replaced the heap FEL in PR 4; both backends must
    // realize the exact same (time, seq) pop order, so the full simulation
    // digest — events, FCT bits, audit ledger — must match on the same
    // 16-job fuzz batch the thread-count test uses.
    use tlb::engine::FelKind;
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    let jobs_with = |kind: FelKind| -> Vec<_> {
        raws.iter()
            .flat_map(
                |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                    (0..4).map(move |k| {
                        (
                            topo,
                            traffic,
                            (seed + k * 1000, degrade, bw, extra, mid),
                            failure,
                        )
                    })
                },
            )
            .map(|raw| {
                let mut b = tlb_fuzz::Scenario::from_raw(raw).build();
                b.cfg.fel = kind;
                (b.cfg, b.flows)
            })
            .collect()
    };
    let heap = run_all(jobs_with(FelKind::Heap));
    let calendar = run_all(jobs_with(FelKind::Calendar));
    assert_eq!(heap.len(), calendar.len());
    for (a, b) in heap.iter().zip(&calendar) {
        assert_eq!(digest(a), digest(b), "{}: calendar != heap", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across FEL backends",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across FEL backends",
            a.scheme
        );
    }
}

#[test]
fn fel_backends_are_bit_identical_on_load_sweep() {
    // Same check on fig10-shaped traffic: the large-scale fabric under a
    // Poisson web-search load, where RTO timers and dense packet events mix
    // in the queue (the workload class BENCH_PR4's macro sweep times).
    use tlb::engine::FelKind;
    let dist = web_search();
    let jobs_with = |kind: FelKind| -> Vec<_> {
        let mut jobs = Vec::new();
        for &load in &[0.4, 0.8] {
            for scheme in [Scheme::Ecmp, Scheme::tlb_default()] {
                let mut cfg = SimConfig::large_scale(scheme, 8);
                cfg.fel = kind;
                let wl = PoissonWorkload {
                    load,
                    dist: &dist,
                    duration: SimTime::from_millis(5),
                    deadline_lo: SimTime::from_millis(5),
                    deadline_hi: SimTime::from_millis(25),
                    short_threshold: 100_000,
                    inter_leaf_only: true,
                };
                let flows = wl.generate(&cfg.topo, &mut SimRng::new(7 ^ load.to_bits()));
                jobs.push((cfg, flows));
            }
        }
        jobs
    };
    let heap = run_all(jobs_with(FelKind::Heap));
    let calendar = run_all(jobs_with(FelKind::Calendar));
    for (a, b) in heap.iter().zip(&calendar) {
        assert_eq!(digest(a), digest(b), "{}: calendar != heap", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across FEL backends",
            a.scheme
        );
        assert_eq!(a.audit, b.audit, "{}: audit diverged", a.scheme);
    }
}

#[test]
fn workload_generators_are_seed_stable() {
    let topo = LeafSpineBuilder::new(4, 4, 8).build().into();
    // Regression pin: the first web-search Poisson flow for seed 1. If this
    // changes, the RNG stream or generator logic changed and all recorded
    // results need regeneration.
    let dist = web_search();
    let wl = PoissonWorkload {
        load: 0.5,
        dist: &dist,
        duration: SimTime::from_millis(20),
        deadline_lo: SimTime::from_millis(5),
        deadline_hi: SimTime::from_millis(25),
        short_threshold: 100_000,
        inter_leaf_only: true,
    };
    let a = wl.generate(&topo, &mut SimRng::new(1));
    let b = wl.generate(&topo, &mut SimRng::new(1));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.size_bytes, y.size_bytes);
        assert_eq!(x.start, y.start);
        assert_eq!((x.src, x.dst), (y.src, y.dst));
    }
}

#[test]
fn lb_dispatch_paths_are_bit_identical_on_fuzz_batch() {
    // PR 5 replaced the per-packet `Box<dyn LoadBalancer>` virtual call
    // with static enum dispatch (`AnyLb`). Both paths build the identical
    // balancer from the identical salt, so the full simulation digest —
    // events, FCT bits, audit ledger — must match on the same 16-job fuzz
    // batch the FEL-backend test uses.
    use tlb::simnet::LbDispatch;
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    let jobs_with = |dispatch: LbDispatch| -> Vec<_> {
        raws.iter()
            .flat_map(
                |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                    (0..4).map(move |k| {
                        (
                            topo,
                            traffic,
                            (seed + k * 1000, degrade, bw, extra, mid),
                            failure,
                        )
                    })
                },
            )
            .map(|raw| {
                let mut b = tlb_fuzz::Scenario::from_raw(raw).build();
                b.cfg.lb_dispatch = dispatch;
                (b.cfg, b.flows)
            })
            .collect()
    };
    let fast = run_all(jobs_with(LbDispatch::Enum));
    let reference = run_all(jobs_with(LbDispatch::Dyn));
    assert_eq!(fast.len(), reference.len());
    for (a, b) in fast.iter().zip(&reference) {
        assert_eq!(digest(a), digest(b), "{}: enum != dyn dispatch", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across dispatch paths",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across dispatch paths",
            a.scheme
        );
    }
}

#[test]
fn delivery_modes_are_bit_identical_on_fuzz_batch() {
    // PR 5 replaced one FEL `Arrive` entry per in-flight packet with
    // per-link delivery pipes plus a chained `Deliver` event. The pipe
    // reserves the exact sequence number the per-packet push would have
    // taken, so the (time, seq) pop order — and with it every observable,
    // including the sampled `fel_depth` schedule — must be bit-identical
    // across modes. Only the FEL *occupancy* may differ, bounded in
    // pipelined mode by `fel_bound_peak` (itself mode-independent).
    use tlb::simnet::DeliveryKind;
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    let jobs_with = |delivery: DeliveryKind| -> Vec<_> {
        raws.iter()
            .flat_map(
                |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                    (0..4).map(move |k| {
                        (
                            topo,
                            traffic,
                            (seed + k * 1000, degrade, bw, extra, mid),
                            failure,
                        )
                    })
                },
            )
            .map(|raw| {
                let mut b = tlb_fuzz::Scenario::from_raw(raw).build();
                b.cfg.delivery = delivery;
                (b.cfg, b.flows)
            })
            .collect()
    };
    let pipelined = run_all(jobs_with(DeliveryKind::Pipelined));
    let per_packet = run_all(jobs_with(DeliveryKind::PerPacket));
    assert_eq!(pipelined.len(), per_packet.len());
    for (a, b) in pipelined.iter().zip(&per_packet) {
        assert_eq!(
            digest(a),
            digest(b),
            "{}: pipelined != per-packet",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across delivery modes",
            a.scheme
        );
        assert_eq!(
            a.fel_bound_peak, b.fel_bound_peak,
            "{}: the occupancy bound must be mode-independent",
            a.scheme
        );
    }
}

#[test]
fn hybrid_fuzz_batch_is_digest_stable_across_thread_counts() {
    // The hybrid fluid tier (PR 8) must be exactly as deterministic as
    // packet fidelity: same 16-job fuzz batch as the packet test above,
    // run at `FidelityKind::Hybrid`, serial vs a 3-thread pool. Hybrid
    // digests are their own stable baseline — they are never compared to
    // packet digests (that comparison is banded, in `tests/fidelity.rs`),
    // only to themselves across worker counts.
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    let jobs: Vec<_> = raws
        .iter()
        .flat_map(
            |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                (0..4).map(move |k| {
                    (
                        topo,
                        traffic,
                        (seed + k * 1000, degrade, bw, extra, mid),
                        failure,
                    )
                })
            },
        )
        .map(|raw| {
            let b = tlb_fuzz::Scenario::from_raw(raw).build();
            let mut cfg = b.cfg;
            cfg.fidelity = FidelityKind::Hybrid;
            (cfg, b.flows)
        })
        .collect();
    let serial: Vec<_> = jobs
        .iter()
        .cloned()
        .map(|(cfg, flows)| run_one(cfg, flows))
        .collect();
    assert!(
        serial.iter().any(|r| r.fluid_migrations > 0),
        "the batch must exercise the fluid tier somewhere"
    );
    let before = rayon::workers_observed();
    let threaded = rayon::with_threads(3, || run_all(jobs));
    assert!(
        rayon::workers_observed() - before >= 2,
        "3-thread batch must actually fan out over >1 OS thread"
    );
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(digest(a), digest(b), "{}: 3-thread != serial", a.scheme);
        assert_eq!(
            fel_depth_hash(a),
            fel_depth_hash(b),
            "{}: fel_depth series diverged across thread counts",
            a.scheme
        );
        assert_eq!(
            a.fluid_migrations, b.fluid_migrations,
            "{}: migration counts diverged across thread counts",
            a.scheme
        );
        assert_eq!(
            a.fluid_bytes, b.fluid_bytes,
            "{}: fluid byte totals diverged across thread counts",
            a.scheme
        );
        assert_eq!(
            a.audit, b.audit,
            "{}: audit counters diverged across thread counts",
            a.scheme
        );
    }
}

/// Compare everything the sharded merge path must reproduce bit-for-bit
/// against a serial reference: the scalar digest, the audit ledger, the
/// end-of-run clock, and every traced hop. `fel_depth` is deliberately
/// absent — its sampling schedule is a function of each shard's local
/// event counter, so the sharded samples interleave differently (the
/// *simulation* is still bit-identical; the probe is engine-local).
fn assert_sharded_matches(serial: &RunReport, sharded: &RunReport, label: &str) {
    assert_eq!(
        digest(serial),
        digest(sharded),
        "{label}: sharded != serial"
    );
    assert_eq!(
        serial.audit, sharded.audit,
        "{label}: audit counters diverged"
    );
    assert_eq!(serial.sim_end, sharded.sim_end, "{label}: sim_end diverged");
    assert_eq!(serial.traces.len(), sharded.traces.len());
    for (x, y) in serial.traces.iter().zip(&sharded.traces) {
        assert_eq!(x.hop, y.hop, "{label}: trace hop diverged");
        assert_eq!(x.at, y.at, "{label}: trace timing diverged");
    }
}

#[test]
fn sharded_engine_is_bit_identical_across_worker_counts() {
    // The tentpole acceptance gate: one simulation executed across OS
    // threads by conservative fabric sharding must produce the exact
    // serial digests for ANY worker count. Same 16-job fuzz batch as the
    // backend/dispatch/delivery differentials (schemes, incast, static +
    // mid-run degradation), serial vs sharded at 1/2/4/8 workers.
    use tlb::engine::EngineKind;
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    let jobs_with = |engine: EngineKind| -> Vec<_> {
        raws.iter()
            .flat_map(
                |&(topo, traffic, (seed, degrade, bw, extra, mid), failure)| {
                    (0..4).map(move |k| {
                        (
                            topo,
                            traffic,
                            (seed + k * 1000, degrade, bw, extra, mid),
                            failure,
                        )
                    })
                },
            )
            .map(|raw| {
                let mut b = tlb_fuzz::Scenario::from_raw(raw).build();
                b.cfg.engine = engine;
                (b.cfg, b.flows)
            })
            .collect()
    };
    let serial = run_all(jobs_with(EngineKind::Serial));
    for workers in [1u32, 2, 4, 8] {
        let sharded = run_all(jobs_with(EngineKind::Sharded {
            workers: Some(workers),
        }));
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert!(
                b.engine_workers.is_some(),
                "{}: sharded engine fell back to serial on a fuzz job",
                b.scheme
            );
            assert_sharded_matches(a, b, &format!("{} @ {workers} workers", a.scheme));
        }
    }
}

#[test]
fn sharded_engine_matches_serial_on_fat_tree_failure_flap() {
    // Three-tier partition + global-event micro-steps: a k=8 fat tree
    // (128 hosts, 80 switches, 8 pod shards) with a mid-run edge-uplink
    // down/up flap. Failures force whole-fabric reachability recomputes,
    // which the sharded engine must mirror into every replica at exactly
    // the serial instant.
    use tlb::engine::EngineKind;
    let run = |engine: EngineKind| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.topo = FatTreeBuilder::new(8)
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into();
        cfg.audit = true;
        cfg.engine = engine;
        cfg.trace_flows = vec![FlowId(3)];
        for (at_ms, action) in [(2, FailureAction::Down), (6, FailureAction::Up)] {
            cfg.failure_events.push(FailureEvent {
                at: SimTime::from_millis(at_ms),
                target: FailureTarget::Link {
                    sw: LeafId(0), // edge 0
                    up: SpineId(1),
                },
                action,
            });
        }
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 40;
        mix.n_long = 2;
        mix.long_lo = 1_500_000;
        mix.long_hi = 2_500_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(23));
        Simulation::new(cfg, flows).run()
    };
    let serial = run(EngineKind::Serial);
    assert_eq!(serial.completed, serial.total_flows);
    for workers in [2u32, 4, 8] {
        let sharded = run(EngineKind::Sharded {
            workers: Some(workers),
        });
        assert_eq!(
            sharded.engine_workers,
            Some(workers),
            "k=8 fat tree must shard into 8 pods"
        );
        assert_sharded_matches(&serial, &sharded, &format!("k8 flap @ {workers} workers"));
    }
}

#[test]
fn sharded_parallel_windows_match_serial() {
    // The fuzz batch above is small enough that the sharded engine runs
    // it entirely in the serialized completion tail. This job is shaped
    // so `flows >> completion bound` (tiny lookahead, few hosts, many
    // short flows): the engine MUST open barrier-synchronized parallel
    // windows — asserted via `sharded_windows` — and still match the
    // serial digests bit for bit.
    use tlb::engine::EngineKind;
    let run = |engine: EngineKind| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.topo = LeafSpineBuilder::new(2, 2, 2)
            .link_mbps(100.0)
            .prop_per_link(SimTime::from_micros(5))
            .build()
            .into();
        cfg.audit = true;
        cfg.engine = engine;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 60;
        mix.n_long = 2;
        mix.long_lo = 300_000;
        mix.long_hi = 400_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(5));
        Simulation::new(cfg, flows).run()
    };
    let serial = run(EngineKind::Serial);
    for workers in [1u32, 2] {
        let sharded = run(EngineKind::Sharded {
            workers: Some(workers),
        });
        assert_eq!(sharded.engine_workers, Some(workers));
        assert!(
            sharded.sharded_windows > 0,
            "job sized for parallel windows ran entirely in the tail"
        );
        assert_sharded_matches(&serial, &sharded, &format!("windows @ {workers} workers"));
    }
}

#[test]
fn sharded_engine_delegates_hybrid_fidelity_to_serial() {
    // Hybrid fluid flows span shards (FluidNet recomputes whole-fabric
    // fair shares), so the sharded engine refuses them and delegates to
    // the serial engine. The run must report the fallback and produce the
    // exact serial-hybrid results.
    use tlb::engine::EngineKind;
    let run = |engine: EngineKind| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.fidelity = FidelityKind::Hybrid;
        cfg.engine = engine;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 20;
        mix.n_long = 2;
        mix.long_lo = 1_500_000;
        mix.long_hi = 2_500_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(11));
        Simulation::new(cfg, flows).run()
    };
    let serial = run(EngineKind::Serial);
    let sharded = run(EngineKind::Sharded { workers: Some(4) });
    assert_eq!(
        sharded.engine_workers, None,
        "hybrid fidelity must fall back to the serial engine"
    );
    assert_sharded_matches(&serial, &sharded, "hybrid fallback");
    assert_eq!(serial.fluid_migrations, sharded.fluid_migrations);
    assert_eq!(serial.fluid_bytes, sharded.fluid_bytes);
}
