//! Mid-run link degradation (failure injection): the fabric loses most of
//! two uplinks' capacity while traffic is in flight; adaptive schemes must
//! keep delivering.

use tlb::engine::FelKind;
use tlb::prelude::*;
use tlb::simnet::config::LinkEvent;

fn mix() -> BasicMixConfig {
    let mut m = BasicMixConfig::paper_default();
    m.n_short = 50;
    m.n_long = 3;
    m.long_lo = 4_000_000;
    m.long_hi = 6_000_000;
    m.short_window = SimTime::from_millis(20);
    m
}

fn run_with_failure(scheme: Scheme, seed: u64) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    // 10 ms in: two uplinks brown out to 5% bandwidth with +1 ms delay.
    for spine in [2u32, 9] {
        cfg.link_events.push(LinkEvent {
            at: SimTime::from_millis(10),
            leaf: LeafId(0),
            spine: SpineId(spine),
            bw_factor: 0.05,
            new_prop_delay: None,
            extra_delay: SimTime::from_millis(1),
        });
    }
    let flows = basic_mix(&cfg.topo, &mix(), &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

#[test]
fn every_scheme_survives_a_brownout() {
    for scheme in Scheme::paper_set() {
        let name = scheme.name();
        let r = run_with_failure(scheme, 3);
        assert_eq!(
            r.completed, r.total_flows,
            "{name}: flows stranded by the brownout"
        );
    }
}

#[test]
fn brownout_slows_oblivious_schemes_more() {
    // ECMP keeps hashing flows onto the dead-slow links; TLB's shortest-
    // queue choice migrates away once their queues build.
    let tlb = run_with_failure(Scheme::tlb_default(), 7);
    let ecmp = run_with_failure(Scheme::Ecmp, 7);
    assert!(
        tlb.fct_short.p99 < ecmp.fct_short.p99,
        "TLB p99 {} !< ECMP p99 {} after brownout",
        tlb.fct_short.p99,
        ecmp.fct_short.p99
    );
}

#[test]
fn link_event_validation() {
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.link_events.push(LinkEvent {
        at: SimTime::ZERO,
        leaf: LeafId(0),
        spine: SpineId(99), // out of range
        bw_factor: 0.5,
        new_prop_delay: None,
        extra_delay: SimTime::ZERO,
    });
    assert!(cfg.validate().is_err());
    cfg.link_events[0].spine = SpineId(0);
    cfg.link_events[0].bw_factor = 0.0; // invalid
    assert!(cfg.validate().is_err());
    cfg.link_events[0].bw_factor = 0.5;
    cfg.validate().unwrap();
}

/// Delivery-mode-safe run fingerprint (excludes `fel_depth`, whose values
/// legitimately differ between pipelined and per-packet delivery).
fn digest(r: &RunReport) -> (u64, String, u64, u64, usize, usize) {
    (
        r.events,
        format!("{:.12}/{:.12}", r.fct_short.afct, r.fct_long.mean_goodput),
        r.drops,
        r.marks,
        r.traces.len(),
        r.completed,
    )
}

fn pinned_tlb() -> Scheme {
    let mut t = TlbConfig::paper_default();
    t.threshold_mode = ThresholdMode::Fixed(u64::MAX);
    Scheme::Tlb(t)
}

/// Hard flap: a leaf uplink goes fully dark mid-run and is repaired while
/// traffic is still flowing. Reconvergence must be clean — every flow
/// completes, the packet-conservation ledger balances (drops at the dead
/// port are accounted, not leaked), a TLB pinned at `q_th = ∞` performs
/// zero *voluntary* long-flow reroutes (forced evacuations off the dead
/// uplink are tallied separately), and the whole run is bit-identical
/// across both FEL backends and both delivery modes.
#[test]
fn flap_and_repair_reconverge_cleanly() {
    let run = |fel: FelKind, delivery: DeliveryKind| {
        let mut cfg = SimConfig::basic_paper(pinned_tlb());
        cfg.audit = true;
        cfg.fel = fel;
        cfg.delivery = delivery;
        for (at_ms, action) in [(5, FailureAction::Down), (12, FailureAction::Up)] {
            cfg.failure_events.push(FailureEvent {
                at: SimTime::from_millis(at_ms),
                target: FailureTarget::Link {
                    sw: LeafId(0),
                    up: SpineId(3),
                },
                action,
            });
        }
        let flows = basic_mix(&cfg.topo, &mix(), &mut SimRng::new(11));
        Simulation::new(cfg, flows).run()
    };

    let base = run(FelKind::Calendar, DeliveryKind::Pipelined);
    assert_eq!(
        base.completed, base.total_flows,
        "flows stranded by the flap/repair cycle"
    );
    assert!(base.audit.is_some(), "conservation audit did not run");
    assert_eq!(
        base.tlb_long_reroutes,
        Some(0),
        "pinned TLB made voluntary long-flow reroutes around the flap"
    );
    assert!(
        base.forced_reroutes.is_some(),
        "failure schedule present but forced-reroute accounting missing"
    );

    for fel in [FelKind::Calendar, FelKind::Heap] {
        for delivery in [DeliveryKind::Pipelined, DeliveryKind::PerPacket] {
            let r = run(fel, delivery);
            assert_eq!(
                digest(&r),
                digest(&base),
                "{fel:?}/{delivery:?} diverged from Calendar/Pipelined"
            );
        }
    }
}

/// Acceptance matrix: a k=8 fat tree (128 hosts, 80 switches) with a
/// mid-run edge-uplink flap completes with the conservation audit on and
/// produces bit-identical digests across FelKind x LbDispatch x
/// DeliveryKind.
#[test]
fn fat_tree_k8_flap_matrix_is_bit_identical() {
    let run = |fel: FelKind, dispatch: LbDispatch, delivery: DeliveryKind| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.topo = FatTreeBuilder::new(8)
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into();
        cfg.audit = true;
        cfg.fel = fel;
        cfg.lb_dispatch = dispatch;
        cfg.delivery = delivery;
        for (at_ms, action) in [(2, FailureAction::Down), (6, FailureAction::Up)] {
            cfg.failure_events.push(FailureEvent {
                at: SimTime::from_millis(at_ms),
                target: FailureTarget::Link {
                    sw: LeafId(0), // edge 0
                    up: SpineId(1),
                },
                action,
            });
        }
        let mut m = mix();
        m.n_short = 40;
        m.n_long = 2;
        m.long_lo = 1_500_000;
        m.long_hi = 2_500_000;
        let flows = basic_mix(&cfg.topo, &m, &mut SimRng::new(23));
        Simulation::new(cfg, flows).run()
    };

    let base = run(FelKind::Calendar, LbDispatch::Enum, DeliveryKind::Pipelined);
    assert_eq!(
        base.completed, base.total_flows,
        "fat-tree flap stranded flows"
    );
    assert!(base.audit.is_some(), "conservation audit did not run");

    for fel in [FelKind::Calendar, FelKind::Heap] {
        for dispatch in [LbDispatch::Enum, LbDispatch::Dyn] {
            for delivery in [DeliveryKind::Pipelined, DeliveryKind::PerPacket] {
                let r = run(fel, dispatch, delivery);
                assert_eq!(
                    digest(&r),
                    digest(&base),
                    "{fel:?}/{dispatch:?}/{delivery:?} diverged"
                );
            }
        }
    }
}

#[test]
fn degradation_actually_bites() {
    // A single long flow pinned (ECMP) through a link that browns out must
    // take much longer than without the failure.
    let one_flow = |with_failure: bool| {
        let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
        cfg.topo = LeafSpineBuilder::new(2, 1, 2) // exactly one path
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into();
        if with_failure {
            cfg.link_events.push(LinkEvent {
                at: SimTime::from_millis(5),
                leaf: LeafId(0),
                spine: SpineId(0),
                bw_factor: 0.1,
                new_prop_delay: None,
                extra_delay: SimTime::ZERO,
            });
        }
        let flows = vec![FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size_bytes: 10_000_000,
            start: SimTime::ZERO,
            deadline: None,
        }];
        Simulation::new(cfg, flows).run()
    };
    let healthy = one_flow(false);
    let failed = one_flow(true);
    let h = healthy.fct.fct_of(FlowId(0)).unwrap();
    let f = failed.fct.fct_of(FlowId(0)).unwrap();
    assert!(
        f > 3.0 * h,
        "10x brownout on the only path must slow the flow: {f} vs {h}"
    );
    assert_eq!(failed.completed, 1);
}

/// PR 8 regression: a `FailureEvent` aimed at an already-dead target is a
/// deterministic no-op. Downing a dead link again, or downing a port of a
/// switch that already went dark, must change nothing except the one extra
/// FEL pop the event itself costs — identical FCTs, drops, marks, traces,
/// audit ledger and forced-reroute tally, in both delivery modes.
#[test]
fn refailing_dead_targets_is_a_deterministic_noop() {
    let link = |at_ms: u64, action: FailureAction| FailureEvent {
        at: SimTime::from_millis(at_ms),
        target: FailureTarget::Link {
            sw: LeafId(0),
            up: SpineId(3),
        },
        action,
    };
    let run = |extra: &[FailureEvent], base: &[FailureEvent], delivery: DeliveryKind| {
        let mut cfg = SimConfig::basic_paper(pinned_tlb());
        cfg.audit = true;
        cfg.delivery = delivery;
        cfg.failure_events.extend_from_slice(base);
        cfg.failure_events.extend_from_slice(extra);
        let flows = basic_mix(&cfg.topo, &mix(), &mut SimRng::new(11));
        Simulation::new(cfg, flows).run()
    };
    // Everything but the raw event count must match (the duplicate is
    // itself one FEL pop, so `events` grows by exactly the extras).
    let noev = |r: &RunReport| {
        let (_, fct, drops, marks, traces, completed) = digest(r);
        (fct, drops, marks, traces, completed)
    };

    // Case 1: the same link goes down twice before its repair.
    // Case 2: a whole spine goes dark, then a link event re-downs one of
    // its (already dead) ports.
    let spine3 = FailureTarget::Switch { sw: 3 + 3 }; // 3 leaves first, then spines
    let sw = |at_ms: u64, action: FailureAction| FailureEvent {
        at: SimTime::from_millis(at_ms),
        target: spine3,
        action,
    };
    let cases: [(&[FailureEvent], &[FailureEvent]); 2] = [
        (
            &[link(5, FailureAction::Down), link(12, FailureAction::Up)],
            &[link(7, FailureAction::Down), link(9, FailureAction::Down)],
        ),
        (
            &[sw(5, FailureAction::Down), sw(12, FailureAction::Up)],
            &[link(7, FailureAction::Down)],
        ),
    ];
    for (case, (base_ev, extra)) in cases.iter().enumerate() {
        for delivery in [DeliveryKind::Pipelined, DeliveryKind::PerPacket] {
            let base = run(&[], base_ev, delivery);
            let dup = run(extra, base_ev, delivery);
            assert_eq!(
                base.completed, base.total_flows,
                "case {case}/{delivery:?}: baseline stranded flows"
            );
            assert_eq!(
                noev(&dup),
                noev(&base),
                "case {case}/{delivery:?}: re-failing a dead target changed the run"
            );
            assert_eq!(
                dup.events,
                base.events + extra.len() as u64,
                "case {case}/{delivery:?}: no-op events must cost exactly one pop each"
            );
            assert_eq!(
                dup.audit, base.audit,
                "case {case}/{delivery:?}: audit ledger diverged"
            );
            assert_eq!(
                dup.forced_reroutes, base.forced_reroutes,
                "case {case}/{delivery:?}: forced-reroute tally diverged"
            );
        }
    }
}
