//! Mid-run link degradation (failure injection): the fabric loses most of
//! two uplinks' capacity while traffic is in flight; adaptive schemes must
//! keep delivering.

use tlb::prelude::*;
use tlb::simnet::config::LinkEvent;

fn mix() -> BasicMixConfig {
    let mut m = BasicMixConfig::paper_default();
    m.n_short = 50;
    m.n_long = 3;
    m.long_lo = 4_000_000;
    m.long_hi = 6_000_000;
    m.short_window = SimTime::from_millis(20);
    m
}

fn run_with_failure(scheme: Scheme, seed: u64) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    // 10 ms in: two uplinks brown out to 5% bandwidth with +1 ms delay.
    for spine in [2u32, 9] {
        cfg.link_events.push(LinkEvent {
            at: SimTime::from_millis(10),
            leaf: LeafId(0),
            spine: SpineId(spine),
            bw_factor: 0.05,
            extra_delay: SimTime::from_millis(1),
        });
    }
    let flows = basic_mix(&cfg.topo, &mix(), &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

#[test]
fn every_scheme_survives_a_brownout() {
    for scheme in Scheme::paper_set() {
        let name = scheme.name();
        let r = run_with_failure(scheme, 3);
        assert_eq!(
            r.completed, r.total_flows,
            "{name}: flows stranded by the brownout"
        );
    }
}

#[test]
fn brownout_slows_oblivious_schemes_more() {
    // ECMP keeps hashing flows onto the dead-slow links; TLB's shortest-
    // queue choice migrates away once their queues build.
    let tlb = run_with_failure(Scheme::tlb_default(), 7);
    let ecmp = run_with_failure(Scheme::Ecmp, 7);
    assert!(
        tlb.fct_short.p99 < ecmp.fct_short.p99,
        "TLB p99 {} !< ECMP p99 {} after brownout",
        tlb.fct_short.p99,
        ecmp.fct_short.p99
    );
}

#[test]
fn link_event_validation() {
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.link_events.push(LinkEvent {
        at: SimTime::ZERO,
        leaf: LeafId(0),
        spine: SpineId(99), // out of range
        bw_factor: 0.5,
        extra_delay: SimTime::ZERO,
    });
    assert!(cfg.validate().is_err());
    cfg.link_events[0].spine = SpineId(0);
    cfg.link_events[0].bw_factor = 0.0; // invalid
    assert!(cfg.validate().is_err());
    cfg.link_events[0].bw_factor = 0.5;
    cfg.validate().unwrap();
}

#[test]
fn degradation_actually_bites() {
    // A single long flow pinned (ECMP) through a link that browns out must
    // take much longer than without the failure.
    let one_flow = |with_failure: bool| {
        let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
        cfg.topo = LeafSpineBuilder::new(2, 1, 2) // exactly one path
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build();
        if with_failure {
            cfg.link_events.push(LinkEvent {
                at: SimTime::from_millis(5),
                leaf: LeafId(0),
                spine: SpineId(0),
                bw_factor: 0.1,
                extra_delay: SimTime::ZERO,
            });
        }
        let flows = vec![FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size_bytes: 10_000_000,
            start: SimTime::ZERO,
            deadline: None,
        }];
        Simulation::new(cfg, flows).run()
    };
    let healthy = one_flow(false);
    let failed = one_flow(true);
    let h = healthy.fct.fct_of(FlowId(0)).unwrap();
    let f = failed.fct.fct_of(FlowId(0)).unwrap();
    assert!(
        f > 3.0 * h,
        "10x brownout on the only path must slow the flow: {f} vs {h}"
    );
    assert_eq!(failed.completed, 1);
}
