//! Scenario fuzzing entry point: randomized topologies, workloads, and
//! load-balancer configs through the full simulator, each run audited and
//! oracle-checked (see `crates/fuzz`).
//!
//! Case count: 256 by default (CI pins this via `TLB_PROPTEST_CASES`,
//! which can only lower it). Seed: derived from the property name and
//! `TLB_PROPTEST_SEED`. Failures shrink to a minimal scenario tuple and
//! persist to `fuzz/regressions/fuzz_scenarios.txt`, which replays first
//! on every future run.

use tlb_fuzz::{run_scenario_checked, scenario_strategy};

#[test]
fn fuzz_scenarios() {
    proptest::run_cases_n("fuzz_scenarios", 256, scenario_strategy(), |raw| {
        run_scenario_checked(raw)
            .map(|_| ())
            .map_err(proptest::TestCaseError::fail)
    });
}

/// The corpus pins in `fuzz/regressions/` are not just for the property
/// that wrote them — keep a direct named replay of each interesting
/// scenario shape so a regression is attributable even if the fuzz
/// property is renamed. This one is the shrunk scenario the fuzzer found
/// while the teardown oracle was being built: adaptive TLB on a degraded
/// 2x2 fabric where a duplicate data straggler arrives after the FIN
/// (legitimate multipath reordering — must stay green).
#[test]
fn regression_duplicate_straggler_after_fin() {
    let raw = (
        (2, 2, 2, 5),
        (4, 4, 3, 2),
        (549_721, true, 52, 46, false),
        (0, false, 0, 0, false),
    );
    run_scenario_checked(raw).unwrap();
}

/// The hybrid fidelity tier under the same scenario space: every case
/// runs packet-vs-hybrid with the differential oracle catalog (exact
/// completion/pinned-reroute agreement, generous FCT bands, hybrid skips
/// only the FCT lower bound). 128 fresh cases by default; CI's
/// fidelity-smoke job replays the corpus with `TLB_PROPTEST_CASES=64`.
#[test]
fn fuzz_hybrid_differential() {
    proptest::run_cases_n(
        "fuzz_hybrid_differential",
        128,
        scenario_strategy(),
        |raw| tlb_fuzz::run_scenario_checked_hybrid(raw).map_err(proptest::TestCaseError::fail),
    );
}

/// Named pin for the hybrid differential: a pinned-TLB scenario with
/// long flows straddling the 100 KB boundary *and* an active failure
/// schedule, so one replay exercises migration, demotion-on-failure, and
/// the exact pinned-reroute agreement in a single case.
#[test]
fn regression_hybrid_differential_under_failures() {
    let raw = (
        (4, 6, 4, 20),
        (5, 24, 3, 6),
        (7, true, 10, 0, true),
        (1, true, 400, 700, true),
    );
    tlb_fuzz::run_scenario_checked_hybrid(raw).unwrap();
}
