//! The hybrid fluid/packet fidelity tier, validated differentially
//! against full packet fidelity (`TLB_FIDELITY`, PR 8).
//!
//! Under [`FidelityKind::Hybrid`], flows that cross the 100 KB
//! short/long boundary hand their unsent tail to a per-link fair-share
//! rate model; short flows, handshakes and all queue/ECN dynamics stay
//! packet-level. That is a *modeling* change, so — unlike the
//! FelKind/LbDispatch/DeliveryKind knobs — hybrid results agree with
//! packet results within **tolerance bands**, not bit-for-bit:
//!
//! * **Exact across fidelities**: completion counts, conservation-audit
//!   cleanliness, and a pinned TLB's *zero voluntary reroutes* (the
//!   stickiness discipline the Liang & Borst analysis says a fluid tier
//!   must not erode).
//! * **Banded**: mean/p99 FCT per class. The hybrid tier is
//!   systematically *optimistic for short flows* (once a long flow's
//!   tail leaves the packet paths, shorts stop queueing behind it) and
//!   mildly *pessimistic-to-neutral for long flows* (the fair-share rate
//!   ignores the congestion window ramp it replaces but also never
//!   drops). The bands below bound both effects at every paper-figure
//!   operating point; measured quick-scale ratios sit well inside them
//!   (short AFCT ratio ≈ 0.6–0.9, long AFCT ratio ≈ 0.9–1.2).
//! * **Packet mode untouched**: `FidelityKind::Packet` runs the
//!   historical per-packet paths — same digests as before the knob
//!   existed (asserted here against a default-config run, and by the
//!   unchanged determinism suite).

use tlb::prelude::*;

/// Delivery-mode-safe run fingerprint (same shape as `determinism.rs`).
fn digest(r: &RunReport) -> (u64, String, u64, u64, usize, usize) {
    (
        r.events,
        format!("{:.12}/{:.12}", r.fct_short.afct, r.fct_long.mean_goodput),
        r.drops,
        r.marks,
        r.traces.len(),
        r.completed,
    )
}

fn pinned_tlb() -> Scheme {
    let mut t = TlbConfig::paper_default();
    t.threshold_mode = ThresholdMode::Fixed(u64::MAX);
    Scheme::Tlb(t)
}

/// One paper-figure operating point, run under one fidelity.
fn run_shape(shape: &str, fidelity: FidelityKind, scheme: Scheme) -> RunReport {
    match shape {
        // Fig. 4's premise: sustained short load under a handful of long
        // flows on the 15-path basic fabric — the long-flow-centric view.
        "fig04" => {
            let mut cfg = SimConfig::basic_paper(scheme);
            cfg.audit = true;
            cfg.fidelity = fidelity;
            let mut mix = BasicMixConfig::paper_default();
            mix.n_short = 60;
            mix.n_long = 5;
            mix.long_lo = 1_000_000;
            mix.long_hi = 2_000_000;
            let (flows, next) = sustained_mix(&cfg.topo, &mix, 6, &mut SimRng::new(40));
            Simulation::new_chained(cfg, flows, next).run()
        }
        // Fig. 8's premise: 100 sustained shorts against 3 longs — the
        // short-flow-centric view (reordering/queueing-delay figure).
        "fig08" => {
            let mut cfg = SimConfig::basic_paper(scheme);
            cfg.audit = true;
            cfg.fidelity = fidelity;
            let mut mix = BasicMixConfig::paper_default();
            mix.n_short = 100;
            mix.n_long = 3;
            let (flows, next) = sustained_mix(&cfg.topo, &mix, 4, &mut SimRng::new(80));
            Simulation::new_chained(cfg, flows, next).run()
        }
        // Fig. 10's premise: the large-scale web-search workload (heavy
        // tail, ~30% of bytes in >1 MB flows) at 60% load, quick trace.
        "fig10" => {
            let mut cfg = SimConfig::large_scale(scheme, 32);
            cfg.audit = true;
            cfg.fidelity = fidelity;
            let dist = web_search();
            let wl = PoissonWorkload {
                load: 0.6,
                dist: &dist,
                duration: SimTime::from_millis(10),
                deadline_lo: SimTime::from_millis(5),
                deadline_hi: SimTime::from_millis(25),
                short_threshold: 100_000,
                inter_leaf_only: true,
            };
            let flows = wl.generate(&cfg.topo, &mut SimRng::new(100));
            Simulation::new(cfg, flows).run()
        }
        other => panic!("unknown shape {other}"),
    }
}

/// Assert `hybrid/packet` for one metric within `[lo, hi]`.
fn band(shape: &str, metric: &str, packet: f64, hybrid: f64, lo: f64, hi: f64) {
    assert!(
        packet > 0.0,
        "{shape}/{metric}: packet baseline is degenerate ({packet})"
    );
    let ratio = hybrid / packet;
    assert!(
        (lo..=hi).contains(&ratio),
        "{shape}/{metric}: hybrid/packet ratio {ratio:.3} outside [{lo}, {hi}] \
         (packet {packet:.6}, hybrid {hybrid:.6})"
    );
}

/// The audit must have run and closed its books.
fn assert_audit_clean(shape: &str, r: &RunReport) {
    let audit = r
        .audit
        .as_ref()
        .unwrap_or_else(|| panic!("{shape}: audit enabled but report missing"));
    let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
    assert_eq!(
        audit.total_emitted(),
        audit.total_delivered() + audit.total_dropped() + in_flight,
        "{shape}: conservation must close the books"
    );
    assert_eq!(
        audit.monotonicity_violations, 0,
        "{shape}: clock ran backwards"
    );
}

/// The headline suite: rerun each paper-figure operating point under both
/// fidelities and hold hybrid to the documented tolerance bands, with the
/// exact metrics (completion, audit, stickiness) compared exactly.
#[test]
fn tolerance_bands_hold_at_paper_operating_points() {
    // (shape, short-AFCT band, short-p99 band, long-AFCT band).
    // Rationale for the widths: shorts can only get *faster* when long
    // tails vacate the queues (lower bound well under the measured ~0.6,
    // upper bound allows neutral-to-slightly-worse placements); long FCT
    // may swing both ways — the fluid rate skips slow-start (faster) but
    // also never exceeds its fair share even when the packet flow would
    // have (slower).
    type Band = (f64, f64);
    let shapes: [(&str, Band, Band, Band); 3] = [
        ("fig04", (0.25, 1.35), (0.25, 1.5), (0.45, 2.0)),
        ("fig08", (0.25, 1.35), (0.25, 1.5), (0.45, 2.0)),
        ("fig10", (0.30, 1.35), (0.30, 1.5), (0.40, 2.2)),
    ];
    for (shape, s_mean, s_p99, l_mean) in shapes {
        let p = run_shape(shape, FidelityKind::Packet, Scheme::tlb_default());
        let h = run_shape(shape, FidelityKind::Hybrid, Scheme::tlb_default());

        // Exact: both fidelities finish the same work, audited.
        assert_eq!(
            p.completed, p.total_flows,
            "{shape}: packet run stranded flows"
        );
        assert_eq!(
            h.completed, h.total_flows,
            "{shape}: hybrid run stranded flows"
        );
        assert_audit_clean(shape, &p);
        assert_audit_clean(shape, &h);

        // The model must actually engage: the workloads all carry >100 KB
        // flows, so hybrid runs migrate some and packet runs never do.
        assert_eq!(
            p.fluid_migrations, 0,
            "{shape}: packet run used the fluid tier"
        );
        assert!(
            h.fluid_migrations > 0,
            "{shape}: no flow ever migrated to the fluid tier"
        );

        // The point of the tier: the long-flow population's packet work
        // (segment transmissions) collapses once tails go fluid.
        let work = |r: &RunReport| r.long.data_sent + r.long.retransmits;
        assert!(
            work(&p) >= 2 * work(&h),
            "{shape}: expected ≥2x fewer long-flow segment transmissions, \
             packet {} vs hybrid {}",
            work(&p),
            work(&h)
        );

        // Banded: FCT per class.
        band(
            shape,
            "short.afct",
            p.fct_short.afct,
            h.fct_short.afct,
            s_mean.0,
            s_mean.1,
        );
        band(
            shape,
            "short.p99",
            p.fct_short.p99,
            h.fct_short.p99,
            s_p99.0,
            s_p99.1,
        );
        band(
            shape,
            "long.afct",
            p.fct_long.afct,
            h.fct_long.afct,
            l_mean.0,
            l_mean.1,
        );
    }
}

/// Stickiness discipline, preserved exactly: a TLB pinned at `q_th = ∞`
/// must make zero voluntary long-flow reroutes under *both* fidelities —
/// migrating a tail to the fluid tier routes it once through the same
/// balancer hooks and never again.
#[test]
fn pinned_tlb_voluntary_reroutes_are_exactly_preserved() {
    for shape in ["fig04", "fig08"] {
        let p = run_shape(shape, FidelityKind::Packet, pinned_tlb());
        let h = run_shape(shape, FidelityKind::Hybrid, pinned_tlb());
        assert_eq!(
            p.tlb_long_reroutes,
            Some(0),
            "{shape}: pinned TLB rerouted voluntarily at packet fidelity"
        );
        assert_eq!(
            h.tlb_long_reroutes,
            Some(0),
            "{shape}: pinned TLB rerouted voluntarily at hybrid fidelity"
        );
        assert_eq!(p.completed, p.total_flows);
        assert_eq!(h.completed, h.total_flows);
    }
}

/// The fidelity knob itself must not perturb packet-mode results: a
/// config with `FidelityKind::Packet` set explicitly is bit-identical to
/// the preset default (which reads `TLB_FIDELITY`, unset in CI) — i.e.
/// packet fidelity *is* the pre-knob simulator.
#[test]
fn explicit_packet_fidelity_matches_the_default() {
    let run = |set_explicitly: bool| {
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.audit = true;
        if set_explicitly {
            cfg.fidelity = FidelityKind::Packet;
        }
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 30;
        mix.n_long = 2;
        mix.long_lo = 1_000_000;
        mix.long_hi = 2_000_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(5));
        Simulation::new(cfg, flows).run()
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(
        digest(&a),
        digest(&b),
        "fidelity knob perturbed packet mode"
    );
    assert_eq!(a.audit, b.audit, "audit counters diverged");
    assert_eq!(a.fluid_migrations, 0);
    assert_eq!(b.fluid_migrations, 0);
}

/// Hybrid runs are themselves bit-deterministic: same seed, same digests,
/// rerun to rerun (the fluid model's f64 updates happen in a fixed
/// flow-id order precisely so this holds).
#[test]
fn hybrid_runs_are_bit_deterministic() {
    let a = run_shape("fig04", FidelityKind::Hybrid, Scheme::tlb_default());
    let b = run_shape("fig04", FidelityKind::Hybrid, Scheme::tlb_default());
    assert_eq!(digest(&a), digest(&b), "hybrid rerun diverged");
    assert_eq!(a.fluid_migrations, b.fluid_migrations);
    assert_eq!(a.fluid_bytes, b.fluid_bytes);
    assert_eq!(a.audit, b.audit, "hybrid audit counters diverged");
}
