//! Path-level assertions via the packet tracer: packets must traverse the
//! fabric exactly as the leaf-spine forwarding rules dictate.

use tlb::prelude::*;
use tlb::simnet::{Hop, TraceEvent};

fn run_traced(scheme: Scheme, flows: Vec<FlowSpec>, trace: &[u32]) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.trace_flows = trace.iter().map(|&f| FlowId(f)).collect();
    Simulation::new(cfg, flows).run()
}

fn one_flow(src: u32, dst: u32, size: u64) -> Vec<FlowSpec> {
    vec![FlowSpec {
        id: FlowId(0),
        src: HostId(src),
        dst: HostId(dst),
        size_bytes: size,
        start: SimTime::ZERO,
        deadline: None,
    }]
}

/// The hops of flow 0's *data* packets, grouped per segment. (Concurrent
/// segments interleave in the time-ordered trace, so group by sequence
/// number; the tests use loss-free runs where each segment travels once.)
fn data_hops(traces: &[TraceEvent]) -> Vec<Vec<Hop>> {
    let mut by_seq: std::collections::BTreeMap<u32, Vec<Hop>> = Default::default();
    for t in traces.iter().filter(|t| t.kind == tlb::net::PktKind::Data) {
        by_seq.entry(t.seq).or_default().push(t.hop);
    }
    by_seq.into_values().collect()
}

#[test]
fn inter_rack_data_takes_the_canonical_path() {
    // Host 0 (leaf 0) -> host 20 (leaf 1): NIC -> leaf-up -> spine-down ->
    // leaf-down -> delivered. Every data packet, every time.
    let r = run_traced(Scheme::Ecmp, one_flow(0, 20, 50_000), &[0]);
    assert_eq!(r.completed, 1);
    let journeys = data_hops(&r.traces);
    assert!(!journeys.is_empty());
    for j in &journeys {
        assert_eq!(j.len(), 5, "hop count: {j:?}");
        assert!(matches!(j[0], Hop::HostNic { host: 0 }));
        let Hop::LeafUplink { leaf: 0, spine } = j[1] else {
            panic!("second hop not a leaf-0 uplink: {j:?}");
        };
        assert!(
            matches!(j[2], Hop::SpineDownlink { spine: s2, leaf: 1 } if s2 == spine),
            "spine mismatch: {j:?}"
        );
        assert!(matches!(j[3], Hop::LeafDownlink { leaf: 1, slot: 4 }));
        assert!(matches!(j[4], Hop::Delivered { host: 20 }));
    }
}

#[test]
fn intra_rack_data_never_touches_a_spine() {
    let r = run_traced(Scheme::Rps, one_flow(0, 5, 50_000), &[0]);
    assert_eq!(r.completed, 1);
    for t in &r.traces {
        assert!(
            !matches!(t.hop, Hop::LeafUplink { .. } | Hop::SpineDownlink { .. }),
            "intra-rack packet escaped the rack: {t:?}"
        );
    }
}

#[test]
fn ecmp_uses_one_spine_rps_uses_many() {
    let spine_set = |r: &RunReport| {
        let mut s: Vec<u16> = r
            .traces
            .iter()
            .filter(|t| t.kind == tlb::net::PktKind::Data)
            .filter_map(|t| match t.hop {
                Hop::LeafUplink { spine, .. } => Some(spine),
                _ => None,
            })
            .collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    };
    let ecmp = run_traced(Scheme::Ecmp, one_flow(0, 20, 500_000), &[0]);
    assert_eq!(spine_set(&ecmp), 1, "ECMP must pin the flow to one spine");
    let rps = run_traced(Scheme::Rps, one_flow(0, 20, 500_000), &[0]);
    assert!(
        spine_set(&rps) >= 10,
        "RPS must spray across most of the 15 spines, used {}",
        spine_set(&rps)
    );
}

#[test]
fn acks_flow_backwards_through_the_fabric() {
    let r = run_traced(Scheme::Ecmp, one_flow(0, 20, 20_000), &[0]);
    let ack_hops: Vec<&TraceEvent> = r
        .traces
        .iter()
        .filter(|t| t.kind == tlb::net::PktKind::Ack)
        .collect();
    assert!(!ack_hops.is_empty(), "acks must be traced too");
    // ACKs originate at host 20's NIC and climb leaf 1's uplinks.
    assert!(ack_hops
        .iter()
        .any(|t| matches!(t.hop, Hop::HostNic { host: 20 })));
    assert!(ack_hops
        .iter()
        .any(|t| matches!(t.hop, Hop::LeafUplink { leaf: 1, .. })));
    assert!(ack_hops
        .iter()
        .any(|t| matches!(t.hop, Hop::Delivered { host: 0 })));
}

#[test]
fn untraced_flows_leave_no_records() {
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(20),
            size_bytes: 30_000,
            start: SimTime::ZERO,
            deadline: None,
        },
        FlowSpec {
            id: FlowId(1),
            src: HostId(1),
            dst: HostId(21),
            size_bytes: 30_000,
            start: SimTime::ZERO,
            deadline: None,
        },
    ];
    let r = run_traced(Scheme::Ecmp, flows, &[1]);
    assert!(r.traces.iter().all(|t| t.flow == FlowId(1)));
    assert!(!r.traces.is_empty());
}

#[test]
fn syn_handshake_is_visible_in_the_trace() {
    let r = run_traced(Scheme::Ecmp, one_flow(0, 20, 10_000), &[0]);
    let kinds: Vec<tlb::net::PktKind> = r
        .traces
        .iter()
        .filter(|t| matches!(t.hop, Hop::Delivered { .. }))
        .map(|t| t.kind)
        .collect();
    use tlb::net::PktKind::*;
    assert_eq!(kinds[0], Syn, "first delivery must be the SYN");
    assert_eq!(kinds[1], SynAck, "then the SYN-ACK back");
    assert!(kinds.contains(&Data));
    // The run ends the instant the last byte lands, so the final delivery
    // is the completing data segment (the FIN never gets to travel).
    assert_eq!(*kinds.last().unwrap(), Data);
}

#[test]
fn trace_times_are_monotone() {
    let r = run_traced(Scheme::letflow_default(), one_flow(0, 20, 100_000), &[0]);
    for w in r.traces.windows(2) {
        assert!(w[0].at <= w[1].at, "trace out of order: {w:?}");
    }
}
