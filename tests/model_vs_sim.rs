//! Model ↔ simulator consistency: the paper's §4 analysis should predict
//! the right *trends* in the simulator, not just satisfy its own algebra.

use tlb::model::{mean_fct_short, q_th_min, ModelParams, QTh};
use tlb::prelude::*;

/// Simulated short-flow AFCT under sustained m_S short flows + 3 longs.
fn sim_afct(m_s: usize, seed: u64) -> f64 {
    let cfg = SimConfig::basic_paper(Scheme::tlb_default());
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = m_s;
    mix.n_long = 3;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, 8, &mut SimRng::new(seed));
    Simulation::new_chained(cfg, flows, next)
        .run()
        .fct_short
        .afct
}

#[test]
fn fct_grows_with_short_load_in_both_worlds() {
    // Eq. 8: FCT_S increases with m_S. The simulator must agree.
    let params = ModelParams::paper_defaults();
    let model_at = |m: f64| {
        let mut p = params;
        p.m_short = m;
        mean_fct_short(&p, 13.0).expect("stable")
    };
    let sim_at: Vec<f64> = [40usize, 100, 160]
        .iter()
        .map(|&m| sim_afct(m, 5))
        .collect();
    let model: Vec<f64> = [40.0, 100.0, 160.0].iter().map(|&m| model_at(m)).collect();
    for w in model.windows(2) {
        assert!(w[1] > w[0], "model not monotone: {model:?}");
    }
    for w in sim_at.windows(2) {
        assert!(w[1] > w[0] * 0.95, "sim not (weakly) monotone: {sim_at:?}");
    }
}

#[test]
fn model_fct_is_the_right_order_of_magnitude() {
    // At the paper's operating point, model and simulator should agree
    // within a small factor (the model ignores slow-start serialization and
    // handshakes; exactness is not expected).
    let mut p = ModelParams::paper_defaults();
    p.m_short = 100.0;
    let model = mean_fct_short(&p, 13.0).unwrap();
    let sim = sim_afct(100, 7);
    let ratio = sim / model;
    assert!(
        (0.2..5.0).contains(&ratio),
        "model {model}s vs sim {sim}s (ratio {ratio})"
    );
}

#[test]
fn model_tracks_sim_across_random_operating_points() {
    // The order-of-magnitude agreement above, generalized from one pinned
    // operating point to randomized ones (load level x workload seed),
    // with a tolerance band instead of exactness: the Eq. 8 model ignores
    // slow-start serialization and handshakes, so sim/model stays within
    // a small factor rather than converging. Case count is deliberately
    // tiny (each case is a full simulation); the seed derivation and
    // `TLB_PROPTEST_*` overrides come from the shared proptest driver,
    // and failures shrink toward the lightest operating point.
    proptest::run_cases_n(
        "model_tracks_sim_across_random_operating_points",
        6,
        (30u64..150, 0u64..1000),
        |(m_s, seed)| {
            let mut p = ModelParams::paper_defaults();
            p.m_short = m_s as f64;
            let Some(model) = mean_fct_short(&p, 13.0) else {
                // Model says this load is unstable; nothing to compare.
                return Ok(());
            };
            let sim = sim_afct(m_s as usize, seed);
            let ratio = sim / model;
            if !(0.15..8.0).contains(&ratio) {
                return Err(proptest::TestCaseError::fail(format!(
                    "m_S={m_s} seed={seed}: model {model}s vs sim {sim}s (ratio {ratio})"
                )));
            }
            Ok(())
        },
    );
}

#[test]
fn qth_trends_match_fig7_axes() {
    // The four monotonicity claims of Fig. 7 in one place (the simulator
    // side is verified by the fig07 harness; here we pin the model against
    // explicit numeric expectations).
    let base = ModelParams::paper_defaults();
    let f = |p: &ModelParams| match q_th_min(p) {
        QTh::Finite(b) => b,
        QTh::Infinite => f64::INFINITY,
    };
    // (a) more short flows -> bigger q_th
    let mut hi = base;
    hi.m_short = 200.0;
    assert!(f(&hi) > f(&base));
    // (b) more long flows -> bigger q_th
    let mut hi = base;
    hi.m_long = 6.0;
    assert!(f(&hi) > f(&base));
    // (c) more paths -> smaller q_th
    let mut hi = base;
    hi.n_paths = 21.0;
    assert!(f(&hi) < f(&base));
    // (d) laxer deadline -> smaller q_th
    let mut hi = base;
    hi.deadline = 25e-3;
    assert!(f(&hi) < f(&base));
}

#[test]
fn running_at_the_model_threshold_meets_deadlines() {
    // The fig07 verification, as a regression test: fixed q_th from Eq. 9,
    // deep drop-tail queues, every short flow deadline D = 10 ms.
    let mut p = ModelParams::paper_defaults();
    p.m_short = 80.0;
    let q = match q_th_min(&p) {
        QTh::Finite(b) => b as u64,
        QTh::Infinite => u64::MAX,
    };
    let mut tlb = TlbConfig::paper_default();
    tlb.threshold_mode = ThresholdMode::Fixed(q);
    let mut cfg = SimConfig::basic_paper(Scheme::Tlb(tlb));
    cfg.queue.capacity_pkts = 512;
    cfg.queue.ecn_threshold_pkts = None;
    cfg.host_queue.ecn_threshold_pkts = None;
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 80;
    mix.n_long = 3;
    mix.deadline_lo = SimTime::from_millis(10);
    mix.deadline_hi = SimTime::from_millis(10);
    let (flows, next) = sustained_mix(&cfg.topo, &mix, 6, &mut SimRng::new(9));
    let r = Simulation::new_chained(cfg, flows, next).run();
    assert_eq!(r.completed, r.total_flows);
    assert_eq!(
        r.fct_short.deadline_miss, 0.0,
        "model-guided threshold must be deadline-safe at m_S=80 (afct {})",
        r.fct_short.afct
    );
}

#[test]
fn adaptive_qth_follows_load_in_the_simulator() {
    // The qth_series of an adaptive run must actually move: high while the
    // short burst is active (or at least present), settling once it drains.
    let cfg = SimConfig::basic_paper(Scheme::tlb_default());
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 200;
    mix.n_long = 3;
    mix.short_window = SimTime::from_millis(2);
    let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(13));
    let r = Simulation::new(cfg, flows).run();
    assert!(r.qth_series.len() > 5);
    let finite_max = r
        .qth_series
        .iter()
        .map(|&(_, v)| if v.is_finite() { v } else { 1e12 })
        .fold(0.0f64, f64::max);
    let last = r.qth_series.last().unwrap().1;
    assert!(
        finite_max > last,
        "q_th never rose above its final value: max {finite_max}, last {last}"
    );
}
