//! k=16 fat-tree smoke coverage (PR 8).
//!
//! The k=8 fabric is exercised by the failure-injection matrix; this
//! suite scales the same machinery to the 1024-host, 320-switch k=16
//! pod fabric and checks the things that tend to break first at scale:
//! every flow completes, the conservation audit closes its books, and
//! reruns are bit-identical (digest stability). A hybrid-fidelity leg
//! rides along so the fluid tier's multi-hop fat-tree routing (edge →
//! agg → core → agg → edge) gets coverage on the deepest path shape.

use tlb::engine::FelKind;
use tlb::prelude::*;

fn digest(r: &RunReport) -> (u64, String, u64, u64, usize, usize) {
    (
        r.events,
        format!("{:.12}/{:.12}", r.fct_short.afct, r.fct_long.mean_goodput),
        r.drops,
        r.marks,
        r.traces.len(),
        r.completed,
    )
}

fn k16_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.topo = FatTreeBuilder::new(16)
        .link_gbps(1.0)
        .target_rtt(SimTime::from_micros(100))
        .build()
        .into();
    cfg.audit = true;
    cfg
}

fn k16_run(scheme: Scheme, fidelity: FidelityKind, seed: u64) -> RunReport {
    let mut cfg = k16_cfg(scheme);
    cfg.fidelity = fidelity;
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 80;
    mix.n_long = 4;
    mix.long_lo = 1_000_000;
    mix.long_hi = 2_000_000;
    let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

#[test]
fn k16_smoke_completes_with_clean_audit() {
    let r = k16_run(Scheme::tlb_default(), FidelityKind::Packet, 16);
    assert_eq!(r.completed, r.total_flows, "k=16 run stranded flows");
    let audit = r.audit.as_ref().expect("conservation audit did not run");
    let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
    assert_eq!(
        audit.total_emitted(),
        audit.total_delivered() + audit.total_dropped() + in_flight,
        "k=16: conservation must close the books"
    );
    assert_eq!(audit.monotonicity_violations, 0);
}

#[test]
fn k16_digests_are_stable_across_reruns_and_backends() {
    let base = k16_run(Scheme::tlb_default(), FidelityKind::Packet, 16);
    let rerun = k16_run(Scheme::tlb_default(), FidelityKind::Packet, 16);
    assert_eq!(digest(&base), digest(&rerun), "k=16 rerun diverged");

    // The differential backends must agree at this scale too.
    for fel in [FelKind::Calendar, FelKind::Heap] {
        let mut cfg = k16_cfg(Scheme::tlb_default());
        cfg.fel = fel;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 80;
        mix.n_long = 4;
        mix.long_lo = 1_000_000;
        mix.long_hi = 2_000_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(16));
        let r = Simulation::new(cfg, flows).run();
        assert_eq!(digest(&r), digest(&base), "{fel:?} diverged on k=16");
    }
}

#[test]
fn k16_hybrid_smoke_migrates_and_completes() {
    let r = k16_run(Scheme::tlb_default(), FidelityKind::Hybrid, 16);
    assert_eq!(r.completed, r.total_flows, "k=16 hybrid run stranded flows");
    assert!(
        r.fluid_migrations > 0,
        "no flow migrated to the fluid tier on the k=16 fabric"
    );
    assert!(r.audit.is_some(), "conservation audit did not run");
    // Determinism holds for the hybrid tier on the deep path shape too.
    let rerun = k16_run(Scheme::tlb_default(), FidelityKind::Hybrid, 16);
    assert_eq!(digest(&r), digest(&rerun), "k=16 hybrid rerun diverged");
    assert_eq!(r.fluid_bytes, rerun.fluid_bytes);
}
