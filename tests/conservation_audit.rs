//! The packet-conservation audit exercised end to end: clean runs must
//! produce a passing [`tlb::simnet::AuditReport`], a deliberately injected
//! driver bug must be caught, and the horizon must bound `sim_end` even
//! when the only pending work is a late retransmission timer.

use tlb::prelude::*;

fn small_mix(n_short: usize, n_long: usize) -> BasicMixConfig {
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = n_short;
    mix.n_long = n_long;
    mix.long_lo = 1_000_000;
    mix.long_hi = 2_000_000;
    mix
}

/// One flow, started at time zero, no deadline.
fn one_flow(size: u64) -> FlowSpec {
    FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(16),
        size_bytes: size,
        start: SimTime::ZERO,
        deadline: None,
    }
}

#[test]
fn clean_runs_pass_the_audit_for_every_scheme() {
    let mix = small_mix(30, 2);
    for scheme in Scheme::paper_set() {
        let name = scheme.name();
        let mut cfg = SimConfig::basic_paper(scheme);
        cfg.audit = true; // explicit: on even if this test binary is release
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(11));
        let r = Simulation::new(cfg, flows).run();
        let audit = r
            .audit
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: audit enabled but report missing"));
        assert!(audit.total_emitted() > 0, "{name}: nothing emitted");
        // The loop exits the instant the last data byte is delivered, so
        // trailing ACKs/FINs may legitimately still be in flight — but they
        // must be *accounted* in flight, not lost.
        let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
        assert_eq!(
            audit.total_emitted(),
            audit.total_delivered() + audit.total_dropped() + in_flight,
            "{name}: conservation must close the books"
        );
        assert!(
            audit.total_delivered() > audit.total_emitted() / 2,
            "{name}: most packets should be delivered on a clean run"
        );
        assert!(audit.ports_checked > 0, "{name}: no ports checked");
        assert_eq!(
            audit.senders_checked, r.total_flows,
            "{name}: every launched flow has a sender to check"
        );
        assert_eq!(audit.monotonicity_violations, 0);
    }
}

#[test]
fn audit_is_absent_when_disabled() {
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.audit = false;
    let flows = basic_mix(&cfg.topo, &small_mix(5, 0), &mut SimRng::new(3));
    let r = Simulation::new(cfg, flows).run();
    assert!(r.audit.is_none());
    assert_eq!(r.completed, r.total_flows);
}

#[test]
#[should_panic(expected = "audit")]
fn audit_catches_a_packet_dropped_outside_port_accounting() {
    // fault_drop_nth silently discards the 5th arrival event — a packet
    // vanishes between a port's TxDone and the next node, exactly the class
    // of driver bug no per-port counter can see. The audit must panic.
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.audit = true;
    cfg.fault_drop_nth = Some(5);
    // A short horizon keeps the doomed run cheap: the lost packet is
    // recovered by the transport, so the flow still finishes, and the audit
    // fires at report time.
    cfg.horizon = SimTime::from_millis(500);
    let r = Simulation::new(cfg, vec![one_flow(50_000)]).run();
    // Unreachable: into_report must have panicked.
    let _ = r;
}

#[test]
fn sim_end_never_passes_the_horizon() {
    // Regression: the run loop used to pop the first post-horizon event
    // before breaking, advancing the clock past the horizon and inflating
    // every rate derived from `sim_end`. Arrange the worst case — the only
    // pending event is an RTO timer far beyond the horizon: drop the SYN's
    // arrival (fault injection, audit off so nothing panics); the handshake
    // timer is armed at `initial_rto` = 10 ms while the horizon is 1 ms.
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.audit = false;
    cfg.fault_drop_nth = Some(1);
    cfg.horizon = SimTime::from_millis(1);
    let horizon = cfg.horizon;
    assert!(
        cfg.tcp.initial_rto > horizon,
        "test premise: the timer must be armed past the horizon"
    );
    let r = Simulation::new(cfg, vec![one_flow(10_000)]).run();
    assert_eq!(
        r.completed, 0,
        "the lone flow lost its SYN and cannot finish"
    );
    assert!(
        r.sim_end <= horizon,
        "sim_end {} ran past the horizon {}",
        r.sim_end,
        horizon
    );
}

#[test]
fn unfinished_flows_leave_in_flight_packets_the_audit_accounts_for() {
    // Cut a bulk transfer off mid-run: conservation must still close the
    // books, with the remainder attributed to queued/in-service/propagating
    // residuals rather than silently lost.
    let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
    cfg.audit = true;
    cfg.horizon = SimTime::from_millis(2);
    let r = Simulation::new(cfg, vec![one_flow(20_000_000)]).run();
    assert_eq!(r.completed, 0, "20 MB cannot finish in 2 ms at 1 Gbit/s");
    let audit = r.audit.expect("audit enabled");
    let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
    assert!(
        in_flight > 0,
        "a truncated bulk transfer must leave packets in flight"
    );
    assert_eq!(
        audit.total_emitted(),
        audit.total_delivered() + audit.total_dropped() + in_flight
    );
}

// ---------------------------------------------------------------------------
// The 100 KB reclassification seam under hybrid fidelity (PR 8, re-entry
// in PR 9). A long flow crosses the short/long boundary mid-life and
// hands its tail to the fluid tier; a failure may demote it back to
// packets, and a later ACK over a healthy path may migrate it *again*.
// Byte conservation must hold through link flaps, rate changes and any
// migrate/demote/re-migrate history — the audit's per-flow byte ledger
// (sender packet bytes + accumulated fluid credit == flow size) is
// asserted inside the driver whenever `cfg.audit` is on.
// ---------------------------------------------------------------------------

/// Exactly-one-path fabric so the flap below is guaranteed to hit the
/// migrated flow's route.
fn one_path_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.topo = LeafSpineBuilder::new(2, 1, 2)
        .link_gbps(1.0)
        .target_rtt(SimTime::from_micros(100))
        .build()
        .into();
    cfg.audit = true;
    cfg.fidelity = FidelityKind::Hybrid;
    cfg
}

fn cross_leaf_flow(size: u64) -> FlowSpec {
    FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(2),
        size_bytes: size,
        start: SimTime::ZERO,
        deadline: None,
    }
}

#[test]
fn hybrid_seam_migrates_exactly_once_and_conserves_bytes() {
    let cfg = one_path_cfg(Scheme::Ecmp);
    let r = Simulation::new(cfg, vec![cross_leaf_flow(2_000_000)]).run();
    assert_eq!(r.completed, 1, "the migrated flow must finish");
    assert_eq!(
        r.fluid_migrations, 1,
        "one boundary crossing, one migration"
    );
    assert_eq!(r.fluid_demotions, 0, "no failure, no demotion");
    assert!(
        r.fluid_bytes > 0 && r.fluid_bytes < 2_000_000,
        "the fluid tier carries the tail, not the whole flow (got {})",
        r.fluid_bytes
    );
    let audit = r.audit.expect("audit enabled");
    let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
    assert_eq!(
        audit.total_emitted(),
        audit.total_delivered() + audit.total_dropped() + in_flight,
        "conservation must close the books across the seam"
    );
}

#[test]
fn hybrid_seam_survives_a_brownout_without_demotion() {
    // The path browns out to half rate while the tail is fluid: the rate
    // model recomputes, nothing demotes, and the flow takes visibly longer
    // than the clean run while conserving every byte.
    let clean = Simulation::new(one_path_cfg(Scheme::Ecmp), vec![cross_leaf_flow(2_000_000)]).run();
    let mut cfg = one_path_cfg(Scheme::Ecmp);
    cfg.link_events.push(LinkEvent {
        at: SimTime::from_millis(4),
        leaf: LeafId(0),
        spine: SpineId(0),
        bw_factor: 0.5,
        new_prop_delay: None,
        extra_delay: SimTime::ZERO,
    });
    let r = Simulation::new(cfg, vec![cross_leaf_flow(2_000_000)]).run();
    assert_eq!(r.completed, 1);
    assert_eq!(r.fluid_migrations, 1);
    assert_eq!(
        r.fluid_demotions, 0,
        "a brownout is a rate change, not a failure"
    );
    let clean_fct = clean.fct.fct_of(FlowId(0)).unwrap();
    let slow_fct = r.fct.fct_of(FlowId(0)).unwrap();
    assert!(
        slow_fct > clean_fct,
        "halving the only path's rate must slow the fluid tail: {slow_fct} vs {clean_fct}"
    );
    assert!(r.audit.is_some());
}

#[test]
fn hybrid_seam_demotes_then_remigrates_and_conserves() {
    // Hard flap on the fluid tail's path: the flow is demoted back to the
    // packet tier (its remaining bytes regrown into segments), reroutes
    // onto the surviving spine, and — once an ACK confirms the new path
    // is healthy and unsent bytes remain — hands its tail to the fluid
    // tier a *second* time (PR 9; demotion previously pinned the flow to
    // packets for good). Stale `FluidDone`s from the first residency must
    // die on the generation counter, and the byte ledger must balance
    // across the whole migrate → demote → re-migrate history. Two spines
    // so a live path remains after the flap; the ECMP hash
    // deterministically lands flow 0 on spine 0 (if that tie-break ever
    // changes, the `fluid_demotions` assert below will say so — retarget
    // the failure at the other spine).
    let mut cfg = one_path_cfg(Scheme::Ecmp);
    cfg.topo = LeafSpineBuilder::new(2, 2, 2)
        .link_gbps(1.0)
        .target_rtt(SimTime::from_micros(100))
        .build()
        .into();
    for (at_ms, action) in [(4, FailureAction::Down), (8, FailureAction::Up)] {
        cfg.failure_events.push(FailureEvent {
            at: SimTime::from_millis(at_ms),
            target: FailureTarget::Link {
                sw: LeafId(0),
                up: SpineId(0),
            },
            action,
        });
    }
    let r = Simulation::new(cfg, vec![cross_leaf_flow(2_000_000)]).run();
    assert_eq!(r.completed, 1, "demoted flow must finish");
    assert_eq!(
        r.fluid_demotions, 1,
        "the path failure must demote the tail"
    );
    assert_eq!(
        r.fluid_migrations, 2,
        "the demoted flow must re-qualify and migrate a second time"
    );
    let audit = r.audit.expect("audit enabled");
    let in_flight: u64 = audit.kinds.iter().map(|k| k.in_flight_at_end()).sum();
    assert_eq!(
        audit.total_emitted(),
        audit.total_delivered() + audit.total_dropped() + in_flight,
        "conservation must close the books across migrate + demote + re-migrate"
    );
}
