//! Allocation hygiene: after warmup, the simulator's per-packet steady
//! state performs ZERO heap acquisitions — no allocations, no Vec
//! regrowth — across both delivery modes, both LB dispatch paths and both
//! FEL backends, on a fig10-shaped production job and on the fuzzer's
//! 16-job differential batch.
//!
//! This binary installs [`tlb::engine::CountingAlloc`] as the global
//! allocator; the simulator snapshots the process-wide counters at the
//! configured warmup boundary and reports the steady-state delta in
//! [`RunReport::alloc_audit`]. Because the counters are process-wide,
//! everything here runs inside ONE `#[test]` — a second concurrent test
//! thread allocating mid-window would make the gate flaky. The simulator
//! itself is bit-deterministic, so within a quiet process the gate is an
//! exact equality, not a threshold.
//!
//! The warmup boundary is learned empirically per job: run once without
//! auditing to learn the total event count `E`, then rerun with the
//! window opening at `E/2`. Everything the simulator ever allocates —
//! metric reservations, pool/arena warm-up growth, calendar-queue bucket
//! doubling, balancer flow tables — must have reached steady state by
//! mid-run.

use tlb::engine::{alloc_audit, CountingAlloc, FelKind};
use tlb::prelude::*;

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// The BENCH_PR6 macro job shape: the large-scale fabric under a Poisson
/// web-search load (what fig10 sweeps), sized to finish quickly in debug
/// builds while still processing enough events to have a steady state.
fn fig10_job() -> (SimConfig, Vec<FlowSpec>) {
    let dist = web_search();
    let cfg = SimConfig::large_scale(Scheme::tlb_default(), 8);
    let wl = PoissonWorkload {
        load: 0.6,
        dist: &dist,
        duration: SimTime::from_millis(6),
        deadline_lo: SimTime::from_millis(5),
        deadline_hi: SimTime::from_millis(25),
        short_threshold: 100_000,
        inter_leaf_only: true,
    };
    let flows = wl.generate(&cfg.topo, &mut SimRng::new(42));
    (cfg, flows)
}

/// Run `(cfg, flows)` serially with the audit window opening at `warmup`
/// events. The packet-conservation ledger is disabled: it is test-only
/// bookkeeping whose per-packet records are *supposed* to allocate, and
/// the zero-alloc invariant covers the production path.
fn audited(mut cfg: SimConfig, flows: Vec<FlowSpec>, warmup: u64) -> RunReport {
    cfg.audit = false;
    cfg.alloc_warmup_events = Some(warmup.max(1));
    run_one(cfg, flows)
}

/// Total events of `(cfg, flows)` without auditing (the learning pass).
fn learn_events(mut cfg: SimConfig, flows: Vec<FlowSpec>) -> u64 {
    cfg.audit = false;
    cfg.alloc_warmup_events = None;
    run_one(cfg, flows).events
}

fn assert_zero_alloc(r: &RunReport, label: &str) {
    let a = r
        .alloc_audit
        .unwrap_or_else(|| panic!("{label}: audit window never closed"));
    assert!(a.counting, "{label}: counting allocator not detected");
    assert!(a.steady_events > 0, "{label}: empty steady window");
    assert_eq!(
        a.acquisitions(),
        0,
        "{label}: {} allocs + {} reallocs ({} bytes) across {} steady events",
        a.allocs,
        a.reallocs,
        a.bytes,
        a.steady_events,
    );
}

#[test]
fn steady_state_is_allocation_free() {
    assert!(
        alloc_audit::probe_counting(),
        "this binary must install the counting allocator"
    );

    // --- fig10-shaped job, all 2x2x2 delivery/dispatch/FEL combos -------
    let (cfg0, flows0) = fig10_job();
    let e = learn_events(cfg0.clone(), flows0.clone());
    assert!(e > 100_000, "job too small for a steady state: {e} events");
    for delivery in [DeliveryKind::Pipelined, DeliveryKind::PerPacket] {
        for dispatch in [LbDispatch::Enum, LbDispatch::Dyn] {
            for fel in [FelKind::Calendar, FelKind::Heap] {
                let mut cfg = cfg0.clone();
                cfg.delivery = delivery;
                cfg.lb_dispatch = dispatch;
                cfg.fel = fel;
                let r = audited(cfg, flows0.clone(), e / 2);
                assert_eq!(r.events, e, "combo changed the event count");
                assert_zero_alloc(&r, &format!("fig10 {delivery:?}/{dispatch:?}/{fel:?}"));
            }
        }
    }

    // --- mid-audit flap on a 10 Gb/s link: pipe-capacity regression ------
    // Two stacked LinkEvents land INSIDE the audit window on one 10 Gb/s
    // uplink: a bandwidth improvement (shorter tx time) plus extra
    // propagation delay, each growing the worst-case number of packets in
    // flight on the wire. Before build-time pipe sizing replayed the
    // link-event schedule, the pipelined delivery pipe's ring buffer grew
    // mid-window and the realloc tripped the gate; `refit_pipe` also
    // shifts the warmup baseline if growth ever does happen at the event.
    {
        let dist = web_search();
        let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
        cfg.topo = LeafSpineBuilder::new(4, 4, 8)
            .link_gbps(10.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into();
        cfg.delivery = DeliveryKind::Pipelined;
        for (at_us, extra_us) in [(1_300, 150), (1_600, 150)] {
            cfg.link_events.push(tlb::simnet::LinkEvent {
                at: SimTime::from_micros(at_us),
                leaf: LeafId(0),
                spine: SpineId(1),
                bw_factor: 1.25,
                new_prop_delay: None,
                extra_delay: SimTime::from_micros(extra_us),
            });
        }
        let wl = PoissonWorkload {
            load: 0.4,
            dist: &dist,
            duration: SimTime::from_millis(2),
            deadline_lo: SimTime::from_millis(5),
            deadline_hi: SimTime::from_millis(25),
            short_threshold: 100_000,
            inter_leaf_only: true,
        };
        let flows = wl.generate(&cfg.topo, &mut SimRng::new(77));
        let e = learn_events(cfg.clone(), flows.clone());
        assert!(e > 100_000, "flap job too small for a steady state: {e}");
        for fel in [FelKind::Calendar, FelKind::Heap] {
            let mut c = cfg.clone();
            c.fel = fel;
            let r = audited(c, flows.clone(), e / 2);
            assert_eq!(r.events, e, "FEL backend changed the event count");
            assert_zero_alloc(&r, &format!("10G mid-audit flap {fel:?}"));
        }
    }

    // --- the fuzzer's 16-job differential batch, run serially ------------
    // Same raw tuples as tests/determinism.rs: they span schemes, incast,
    // and static + mid-run degradation.
    let raws: [tlb_fuzz::RawScenario; 4] = [
        (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ),
        (
            (3, 4, 3, 15),
            (5, 10, 2, 3),
            (7, true, 25, 40, true),
            (0, false, 0, 0, false),
        ),
        (
            (2, 2, 4, 5),
            (1, 8, 1, 0),
            (99, false, 50, 0, false),
            (0, false, 0, 0, false),
        ),
        (
            (4, 6, 2, 20),
            (3, 12, 3, 5),
            (1234, true, 75, 5, true),
            (0, false, 0, 0, false),
        ),
    ];
    for &(topo, traffic, (seed, degrade, bw, extra, mid), failure) in &raws {
        for k in 0..4u64 {
            let raw = (
                topo,
                traffic,
                (seed + k * 1000, degrade, bw, extra, mid),
                failure,
            );
            let b = tlb_fuzz::Scenario::from_raw(raw).build();
            let e = learn_events(b.cfg.clone(), b.flows.clone());
            let r = audited(b.cfg, b.flows, e / 2);
            assert_zero_alloc(&r, &format!("fuzz {raw:?}"));
        }
    }
}
