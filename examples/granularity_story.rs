//! The paper's Fig. 2 motivating story, on the real simulator: one long
//! flow and a burst of short flows behind 3 equal-cost paths, forwarded at
//! flow, packet, flowlet, and adaptive (TLB) granularity.
//!
//! ```sh
//! cargo run --release --example granularity_story
//! ```

use tlb::prelude::*;

fn main() {
    // Fig. 1's miniature fabric: one sending rack, 3 equal-cost paths.
    let build_cfg = |scheme: Scheme| {
        let mut cfg = SimConfig::basic_paper(scheme);
        cfg.topo = LeafSpineBuilder::new(2, 3, 8)
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
            .into();
        cfg
    };

    // S1 sends a long flow; S2/S3 send short flows shortly after (T1<T2<T3).
    let mk_flows = || {
        vec![
            FlowSpec {
                id: FlowId(0),
                src: HostId(0),
                dst: HostId(8),
                size_bytes: 8_000_000,
                start: SimTime::ZERO,
                deadline: None,
            },
            FlowSpec {
                id: FlowId(1),
                src: HostId(1),
                dst: HostId(9),
                size_bytes: 60_000,
                start: SimTime::from_micros(200),
                deadline: Some(SimTime::from_millis(10)),
            },
            FlowSpec {
                id: FlowId(2),
                src: HostId(2),
                dst: HostId(10),
                size_bytes: 60_000,
                start: SimTime::from_micros(400),
                deadline: Some(SimTime::from_millis(10)),
            },
        ]
    };

    println!("Fig. 2 on the simulator: 1 long + 2 short flows, 3 paths\n");
    println!(
        "{:<22} {:>16} {:>16} {:>14}",
        "granularity", "short AFCT(us)", "short p99(us)", "long(Mbit/s)"
    );

    let cases: Vec<(&str, Scheme)> = vec![
        ("flow (ECMP)", Scheme::Ecmp),
        ("packet (RPS)", Scheme::Rps),
        ("flowlet (LetFlow)", Scheme::letflow_default()),
        ("adaptive (TLB)", Scheme::tlb_default()),
    ];

    for (label, scheme) in cases {
        let r = Simulation::new(build_cfg(scheme), mk_flows()).run();
        println!(
            "{:<22} {:>16.1} {:>16.1} {:>14.1}",
            label,
            r.fct_short.afct * 1e6,
            r.fct_short.p99 * 1e6,
            r.long_throughput() * 8.0 / 1e6,
        );
    }

    println!("\nFlow-level hashing can trap a short flow behind the long one;");
    println!("packet spraying mixes everyone everywhere; TLB parks the long");
    println!("flow and gives short flows the empty queues (Fig. 2(d)).");
}
