//! Failure injection: 30% of the rack's uplink capacity browns out while a
//! mixed workload is in flight. Watch which balancers reroute around the
//! damage and which keep feeding it.
//!
//! ```sh
//! cargo run --release --example failure_demo
//! ```

use tlb::prelude::*;
use tlb::simnet::LinkEvent;

fn main() {
    println!("brownout drill: at t=10ms, 4 of 15 uplinks drop to 10% bandwidth\n");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "scheme", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbit/s)"
    );

    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 4;
    mix.short_window = SimTime::from_millis(30);

    let mut schemes = Scheme::paper_set();
    schemes.push(Scheme::Wcmp); // knows nothing: weights were set pre-failure

    for scheme in schemes {
        let mut cfg = SimConfig::basic_paper(scheme);
        for spine in [1u32, 5, 9, 13] {
            cfg.link_events.push(LinkEvent {
                at: SimTime::from_millis(10),
                leaf: LeafId(0),
                spine: SpineId(spine),
                bw_factor: 0.10,
                new_prop_delay: None,
                extra_delay: SimTime::ZERO,
            });
        }
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(404));
        let r = Simulation::new(cfg, flows).run();
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>10.1} {:>14.1}",
            r.scheme,
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.fct_short.deadline_miss * 100.0,
            r.long_throughput() * 8.0 / 1e6,
        );
    }

    println!("\nECMP and WCMP placed flows before the failure and never");
    println!("reconsider; queue-aware schemes (TLB, and LetFlow at flowlet");
    println!("gaps) drain away from the browned-out links.");
}
