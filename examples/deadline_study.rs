//! Deadline-agnostic TLB (paper §6.3 / Fig. 12): when real per-flow
//! deadlines are unknown, TLB protects a fixed percentile of the deadline
//! distribution. This example sweeps the 5th/25th/50th/75th percentiles and
//! shows the paper's conclusion: the 25th percentile gives the best
//! latency/throughput trade-off.
//!
//! ```sh
//! cargo run --release --example deadline_study
//! ```

use tlb::prelude::*;

fn main() {
    println!("deadline-agnostic TLB: protecting different percentiles of U[5ms, 25ms]\n");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10} {:>14}",
        "variant", "D(ms)", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbit/s)"
    );

    // Heavy short-flow pressure: the percentile choice only matters when
    // q_th actually binds, i.e. when m_S is large enough that Eq. 9 pins or
    // frees the long flows depending on D.
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 500;
    mix.n_long = 6;
    mix.short_window = SimTime::from_millis(15);

    for (label, pct) in [
        ("TLB-5th", 0.05),
        ("TLB-25th", 0.25),
        ("TLB-50th", 0.50),
        ("TLB-75th", 0.75),
    ] {
        let mut tlb_cfg = TlbConfig::paper_default();
        tlb_cfg.deadline_percentile = pct;
        let protected = tlb_cfg.deadline();
        let cfg = SimConfig::basic_paper(Scheme::Tlb(tlb_cfg));
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(31));
        let r = Simulation::new(cfg, flows).run();
        println!(
            "{:<12} {:>8.0} {:>12.3} {:>12.3} {:>10.1} {:>14.1}",
            label,
            protected.as_millis_f64(),
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.fct_short.deadline_miss * 100.0,
            r.long_throughput() * 8.0 / 1e6,
        );
    }

    println!("\nA tight percentile (5th) protects short flows hardest but pins");
    println!("long flows (q_th -> infinity) and costs throughput; a lax one");
    println!("(75th) lets long flows roam but misses more deadlines. The 25th");
    println!("is the paper's sweet spot.");
}
