//! Asymmetry study (paper Fig. 16/17): degrade two leaf-to-spine links and
//! watch which schemes keep working. RPS/Presto spray obliviously into the
//! slow paths and reorder; LetFlow and TLB route around them.
//!
//! ```sh
//! cargo run --release --example asymmetric
//! ```

use tlb::prelude::*;

fn main() {
    println!("asymmetric fabric: 2 of 15 uplinks at 25% bandwidth, +200us delay\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>10}",
        "scheme", "AFCT(ms)", "p99(ms)", "long(Mbit/s)", "reord(%)"
    );

    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 60;
    mix.n_long = 3;

    for scheme in Scheme::paper_set() {
        let mut cfg = SimConfig::basic_paper(scheme);
        // Degrade two randomly chosen sender-side uplinks, as §7 does.
        cfg.topo
            .degrade_link(LeafId(0), SpineId(3), 0.25, SimTime::from_micros(200));
        cfg.topo
            .degrade_link(LeafId(0), SpineId(11), 0.25, SimTime::from_micros(200));

        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(77));
        let r = Simulation::new(cfg, flows).run();
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>14.1} {:>10.3}",
            r.scheme,
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.long_throughput() * 8.0 / 1e6,
            (r.short.reorder_ratio() + r.long.reorder_ratio()) * 50.0,
        );
    }

    println!("\nCongestion-oblivious spraying (RPS/Presto) pays for the slow");
    println!("paths with reordering; queue-aware schemes (TLB) and flowlet");
    println!("schemes (LetFlow) avoid them.");
}
