//! The paper's §6.2 web-search scenario in miniature: Poisson arrivals with
//! the heavy-tailed web-search flow-size distribution across an 8×8
//! leaf-spine fabric, all five schemes compared at one load.
//!
//! ```sh
//! cargo run --release --example web_search            # load 0.6
//! cargo run --release --example web_search -- 0.4     # custom load
//! ```

use tlb::prelude::*;

fn main() {
    let load: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.6);

    // 8 ToR x 8 core like the paper; 16 hosts/rack (the paper's 32 scaled
    // down 2x for example runtime) keeps the 2:1+ oversubscription that
    // makes uplinks contend.
    let hosts_per_leaf = 16;
    let duration = SimTime::from_millis(50);

    println!(
        "web-search workload, load {load}, {}ms of traffic\n",
        duration.as_millis_f64()
    );
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10} {:>14}",
        "scheme", "flows", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbit/s)"
    );

    let dist = web_search();
    let jobs: Vec<_> = Scheme::paper_set()
        .into_iter()
        .map(|scheme| {
            let cfg = SimConfig::large_scale(scheme, hosts_per_leaf);
            let wl = PoissonWorkload {
                load,
                dist: &dist,
                duration,
                deadline_lo: SimTime::from_millis(5),
                deadline_hi: SimTime::from_millis(25),
                short_threshold: 100_000,
                inter_leaf_only: true,
            };
            let flows = wl.generate(&cfg.topo, &mut SimRng::new(99));
            (cfg, flows)
        })
        .collect();

    // All five schemes run in parallel across cores.
    for r in run_all(jobs) {
        println!(
            "{:<10} {:>9} {:>12.3} {:>12.3} {:>10.1} {:>14.1}",
            r.scheme,
            r.total_flows,
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.fct_short.deadline_miss * 100.0,
            r.long_throughput() * 8.0 / 1e6,
        );
    }
}
