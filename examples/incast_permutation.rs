//! Two classic data-center stress patterns on the simulator:
//!
//! 1. **Incast** — N senders answer one aggregator simultaneously; the
//!    receiver's access link melts. DCTCP's ECN marking keeps the queue
//!    shallow; the load balancer barely matters (single downlink
//!    bottleneck).
//! 2. **Permutation** — every host sends to a distinct remote host; the
//!    fabric is the bottleneck and the balancer is everything. ECMP's hash
//!    collisions strand capacity; TLB/RPS recover it.
//!
//! ```sh
//! cargo run --release --example incast_permutation
//! ```

use tlb::prelude::*;
use tlb::workload::permutation::permutation;
use tlb::workload::FixedBytes;

fn main() {
    // --- Part 1: incast -------------------------------------------------
    println!("== incast: 24 responses of 256 kB into one aggregator ==\n");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8}",
        "scheme", "AFCT(ms)", "p99(ms)", "drops", "marks"
    );
    for scheme in [Scheme::Ecmp, Scheme::tlb_default()] {
        let cfg = SimConfig::basic_paper(scheme);
        let flows: Vec<FlowSpec> = (0..24)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: HostId(16 + i), // leaf 1 + leaf 2 workers
                dst: HostId(0),      // the aggregator on leaf 0
                size_bytes: 256 * 1024,
                start: SimTime::ZERO,
                deadline: None,
            })
            .collect();
        let r = Simulation::new(cfg, flows).run();
        let s = r.summary(FlowClass::Long); // 256 kB > 100 kB threshold
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>8} {:>8}",
            r.scheme,
            s.afct * 1e3,
            s.p99 * 1e3,
            r.drops,
            r.marks
        );
    }
    println!("\n(the bottleneck is the aggregator's own link — schemes tie,");
    println!("and DCTCP absorbs the burst without drops)\n");

    // --- Part 2: permutation --------------------------------------------
    println!("== permutation: all 48 hosts send 4 MB to a distinct peer ==\n");
    println!(
        "{:<10} {:>16} {:>16}",
        "scheme", "mean gput(Mbps)", "min gput(Mbps)"
    );
    for scheme in Scheme::paper_set() {
        let cfg = SimConfig::basic_paper(scheme);
        let flows = permutation(&cfg.topo, &FixedBytes(4_000_000), &mut SimRng::new(11));
        let r = Simulation::new(cfg, flows).run();
        // Per-flow goodputs.
        let mut gputs: Vec<f64> = (0..r.total_flows)
            .filter_map(|i| {
                r.fct
                    .fct_of(FlowId(i as u32))
                    .map(|fct| 4_000_000.0 / fct * 8.0 / 1e6)
            })
            .collect();
        gputs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = gputs.iter().sum::<f64>() / gputs.len() as f64;
        println!("{:<10} {:>16.1} {:>16.1}", r.scheme, mean, gputs[0]);
    }
    println!("\n(ECMP's unlucky flows collide and crawl — look at the min;");
    println!("queue-aware spreading keeps the worst case near the mean)");
}
