//! Quickstart: run the paper's basic mixed workload under TLB and ECMP and
//! compare short-flow latency and long-flow throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tlb::prelude::*;

fn main() {
    // The paper's §6.1 setup: 3 racks behind 15 spines, 1 Gbit/s links,
    // 100 µs RTT, DCTCP endpoints, 256-packet switch buffers.
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 60; // trimmed from 100 to keep the example snappy
    mix.n_long = 3;

    println!(
        "TLB quickstart — {} short + {} long flows, 15 equal-cost paths\n",
        mix.n_short, mix.n_long
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>14} {:>10}",
        "scheme", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbit/s)", "reord(%)"
    );

    for scheme in [Scheme::Ecmp, Scheme::tlb_default()] {
        let cfg = SimConfig::basic_paper(scheme);
        // The workload is seeded independently of the scheme so both runs
        // see the identical flow set.
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(2024));
        let report = Simulation::new(cfg, flows).run();
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>10.1} {:>14.1} {:>10.3}",
            report.scheme,
            report.fct_short.afct * 1e3,
            report.fct_short.p99 * 1e3,
            report.fct_short.deadline_miss * 100.0,
            report.long_throughput() * 8.0 / 1e6,
            report.long.reorder_ratio() * 100.0,
        );
    }

    println!("\nTLB routes short flows per packet to the shortest queue and");
    println!("reroutes long flows only at the adaptive q_th threshold, so the");
    println!("short flows dodge the long flows' queues.");
}
