//! # tlb-metrics — measurement collectors for the evaluation
//!
//! Everything the paper's figures read off a run: flow completion times
//! (average, tail, CDF, deadline misses — Fig. 3(c), 10, 11, 12, 13, 14),
//! sample sets with percentiles (queue lengths/delays — Fig. 3(a), 8(b)),
//! and bucketed time series (instantaneous reordering/throughput —
//! Fig. 8(a), 9).

pub mod ascii;
pub mod fct;
pub mod samples;
pub mod series;
pub mod stats;

pub use ascii::chart;
pub use fct::{FctRecorder, FctSummary, FlowClass};
pub use samples::SampleSet;
pub use series::TimeSeries;
pub use stats::{max, mean, min, percentile, percentile_select, Cdf};
