//! Terminal plots for the reproduction harness: render time series and
//! CDFs as compact ASCII charts so `results/*.txt` reads like the paper's
//! figures.

/// Render one or more named series as an ASCII line chart.
///
/// Each series is a list of `(x, y)` points; x ranges are merged, y is
/// auto-scaled. Series are drawn with distinct glyphs (`*`, `o`, `x`, …)
/// and overlaps shown with `#`.
pub fn chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let glyphs = ['*', 'o', 'x', '+', '@', '%', '&', '~'];
    let pts: Vec<&(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter()).collect();
    if pts.is_empty() {
        return "(no data)\n".into();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &&(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in s.iter() {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            let cell = &mut grid[row][cx.min(width - 1)];
            *cell = if *cell == ' ' || *cell == glyph {
                glyph
            } else {
                '#'
            };
        }
    }

    let mut out = String::new();
    let label_w = 10;
    for (i, row) in grid.iter().enumerate() {
        let yv = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{yv:>9.3} ")
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<w$.3}{:>r$.3}\n",
        " ".repeat(label_w + 1),
        x0,
        x1,
        w = width / 2,
        r = width - width / 2
    ));
    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!(
        "{}{}\n",
        " ".repeat(label_w + 1),
        legend.join("   ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_series() {
        let s: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let c = chart(&[("quad", &s)], 40, 10);
        assert!(c.contains('*'), "glyph missing:\n{c}");
        assert!(c.contains("quad"));
        // 10 rows + axis + labels + legend.
        assert_eq!(c.lines().count(), 13);
    }

    #[test]
    fn renders_multiple_series_with_distinct_glyphs() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (9 - i) as f64)).collect();
        let c = chart(&[("up", &a), ("down", &b)], 30, 8);
        assert!(c.contains('*') && c.contains('o'));
        assert!(c.contains("up") && c.contains("down"));
    }

    #[test]
    fn empty_series_is_benign() {
        assert_eq!(chart(&[("none", &[])], 30, 8), "(no data)\n");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let c = chart(&[("flat", &s)], 20, 5);
        assert!(c.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        let _ = chart(&[("x", &[(0.0, 0.0)])], 4, 2);
    }

    #[test]
    fn extremes_land_on_edges() {
        let s = [(0.0, 0.0), (10.0, 10.0)];
        let c = chart(&[("diag", &s)], 21, 7);
        let lines: Vec<&str> = c.lines().collect();
        // Max value on the top row, min on the bottom data row.
        assert!(lines[0].contains('*'), "top row:\n{c}");
        assert!(lines[6].contains('*'), "bottom row:\n{c}");
    }
}
