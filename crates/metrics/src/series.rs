//! Bucketed time series for "instantaneous" metrics.

use tlb_engine::SimTime;

/// Accumulates `(time, value)` observations into fixed-width buckets; reads
/// back per-bucket means, sums or rates. Used for instantaneous throughput
/// (Fig. 9(b)), reordering ratio over time (Fig. 8(a)), queue delay over
/// time (Fig. 8(b)).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: SimTime,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// A series with the given bucket width.
    pub fn new(bucket: SimTime) -> TimeSeries {
        assert!(!bucket.is_zero(), "zero bucket width");
        TimeSeries {
            bucket,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> SimTime {
        self.bucket
    }

    /// Materialize every bucket up to `horizon` now, so `add` calls within
    /// the horizon never resize mid-run. `cap` bounds the up-front footprint
    /// for absurd horizon/bucket ratios; observations beyond it fall back to
    /// resize-on-demand.
    pub fn reserve_until(&mut self, horizon: SimTime, cap: usize) {
        let n = (self.idx(horizon) + 1).min(cap);
        if n > self.sums.len() {
            self.sums.resize(n, 0.0);
            self.counts.resize(n, 0);
        }
    }

    fn idx(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.bucket.as_nanos()) as usize
    }

    /// Record an observation at time `t`.
    pub fn add(&mut self, t: SimTime, v: f64) {
        let i = self.idx(t);
        if i >= self.sums.len() {
            self.sums.resize(i + 1, 0.0);
            self.counts.resize(i + 1, 0);
        }
        self.sums[i] += v;
        self.counts[i] += 1;
    }

    /// Number of buckets touched so far.
    pub fn n_buckets(&self) -> usize {
        self.sums.len()
    }

    /// Per-bucket `(bucket_start_time_s, mean_value)`; buckets without
    /// observations are skipped.
    pub fn means(&self) -> Vec<(f64, f64)> {
        self.per_bucket(|sum, count| sum / count as f64)
    }

    /// Per-bucket `(bucket_start_time_s, sum)`.
    pub fn sums(&self) -> Vec<(f64, f64)> {
        self.per_bucket(|sum, _| sum)
    }

    /// Per-bucket `(bucket_start_time_s, sum / bucket_seconds)` — e.g.
    /// bytes recorded per bucket become bytes/second.
    pub fn rates(&self) -> Vec<(f64, f64)> {
        let w = self.bucket.as_secs_f64();
        self.per_bucket(move |sum, _| sum / w)
    }

    fn per_bucket(&self, f: impl Fn(f64, u64) -> f64) -> Vec<(f64, f64)> {
        let w = self.bucket.as_secs_f64();
        self.sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(|(i, (&s, &c))| (i as f64 * w, f(s, c)))
            .collect()
    }

    /// Merge another series into this one, bucket by bucket (sums add,
    /// counts add). Widths must match. Note the merged per-bucket sums add
    /// each shard's subtotal rather than the serial observation order, so
    /// floating-point results may differ from a serial run in the last bits
    /// — merged series are reporting artifacts, not digest material.
    pub fn absorb(&mut self, other: &TimeSeries) {
        assert_eq!(self.bucket, other.bucket, "bucket widths differ");
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, (&s, &c)) in other.sums.iter().zip(&other.counts).enumerate() {
            self.sums[i] += s;
            self.counts[i] += c;
        }
    }

    /// Mean of the per-bucket means (a robust "steady-state" scalar).
    pub fn grand_mean(&self) -> f64 {
        let m = self.means();
        if m.is_empty() {
            return 0.0;
        }
        m.iter().map(|(_, v)| v).sum::<f64>() / m.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn buckets_by_time() {
        let mut s = TimeSeries::new(ms(10));
        s.add(ms(1), 2.0);
        s.add(ms(9), 4.0);
        s.add(ms(15), 10.0);
        let m = s.means();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], (0.0, 3.0));
        assert_eq!(m[1], (0.010, 10.0));
    }

    #[test]
    fn rates_divide_by_width() {
        let mut s = TimeSeries::new(ms(100));
        // 1 MB in a 100 ms bucket = 10 MB/s.
        s.add(ms(50), 1_000_000.0);
        let r = s.rates();
        assert_eq!(r.len(), 1);
        assert!((r[0].1 - 10_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_buckets_skipped() {
        let mut s = TimeSeries::new(ms(1));
        s.add(ms(0), 1.0);
        s.add(ms(5), 1.0);
        assert_eq!(s.n_buckets(), 6);
        assert_eq!(s.means().len(), 2);
        assert_eq!(s.sums().len(), 2);
    }

    #[test]
    fn grand_mean_over_buckets() {
        let mut s = TimeSeries::new(ms(1));
        s.add(ms(0), 1.0);
        s.add(ms(1), 3.0);
        assert_eq!(s.grand_mean(), 2.0);
        let empty = TimeSeries::new(ms(1));
        assert_eq!(empty.grand_mean(), 0.0);
    }

    #[test]
    fn reserve_until_pre_materializes_without_changing_output() {
        let mut s = TimeSeries::new(ms(1));
        s.reserve_until(ms(10), 1 << 16);
        let cap = s.sums.capacity();
        s.add(ms(0), 1.0);
        s.add(ms(9), 3.0);
        assert_eq!(s.sums.capacity(), cap, "adds within horizon must not grow");
        // Zero-count buckets stay invisible to every reader.
        assert_eq!(s.means().len(), 2);
        assert_eq!(s.grand_mean(), 2.0);
        // The cap bounds the up-front footprint.
        let mut t = TimeSeries::new(ms(1));
        t.reserve_until(ms(1_000_000), 64);
        assert_eq!(t.n_buckets(), 64);
    }

    #[test]
    fn absorb_adds_buckets_pairwise() {
        let mut a = TimeSeries::new(ms(1));
        a.add(ms(0), 1.0);
        a.add(ms(2), 2.0);
        let mut b = TimeSeries::new(ms(1));
        b.add(ms(0), 3.0);
        b.add(ms(4), 5.0);
        a.absorb(&b);
        assert_eq!(a.means(), vec![(0.0, 2.0), (0.002, 2.0), (0.004, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "zero bucket width")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(SimTime::ZERO);
    }
}
