//! A bag of scalar samples with summary statistics.

use crate::stats::{max, mean, min, percentile, percentile_select, Cdf};

/// Collects scalar observations (queue lengths, queueing delays, …) and
/// summarizes them. Sorting is deferred to read time.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> SampleSet {
        SampleSet::default()
    }

    /// An empty sample set with room for `cap` observations before the
    /// backing storage grows. Hot-path recorders pre-size from workload
    /// bounds so steady state stays allocation-free.
    pub fn with_capacity(cap: usize) -> SampleSet {
        SampleSet {
            samples: Vec::with_capacity(cap),
        }
    }

    /// Reserve room for `additional` more observations.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite());
        self.samples.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        mean(&self.samples)
    }

    /// The `p`-quantile; 0 when empty. Selects within a scratch copy
    /// (`O(n)`, no full sort) — bit-identical to the sorted path, see
    /// [`percentile_select`]. Readers that need several quantiles of the
    /// same set should still use [`SampleSet::quantiles`], which sorts
    /// once and indexes.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut scratch = self.samples.clone();
        percentile_select(&mut scratch, p)
    }

    /// Batch quantiles with a single sort (the per-call [`Self::quantile`]
    /// clones and re-sorts the whole sample vector every time, which the
    /// figure reports were paying several times per set). Empty sets yield
    /// all zeros.
    pub fn quantiles(&self, ps: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        ps.iter().map(|&p| percentile(&sorted, p)).collect()
    }

    /// Largest observation. Empty sets report 0 (the benign-empty
    /// convention shared by every summary here), but non-empty sets fold
    /// from `-inf` — the previous fold from `0.0` silently clamped
    /// all-negative sample sets to zero.
    pub fn max(&self) -> f64 {
        max(&self.samples)
    }

    /// Smallest observation (0 when empty, same convention as `max`).
    pub fn min(&self) -> f64 {
        min(&self.samples)
    }

    /// Raw observations in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consume into an empirical CDF.
    pub fn into_cdf(self) -> Cdf {
        Cdf::from_samples(self.samples)
    }

    /// Borrowing CDF construction.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_samples(self.samples.clone())
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = SampleSet::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn empty_set_is_benign() {
        let s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.quantiles(&[0.5, 0.99]), vec![0.0, 0.0]);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn batch_quantiles_match_single_calls() {
        let mut s = SampleSet::new();
        for v in [9.0, 2.0, 5.0, 7.0, 1.0, 8.0, 3.0] {
            s.push(v);
        }
        let ps = [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];
        let batch = s.quantiles(&ps);
        for (&p, &q) in ps.iter().zip(&batch) {
            assert_eq!(q.to_bits(), s.quantile(p).to_bits(), "p={p}");
        }
    }

    #[test]
    fn max_of_all_negative_samples_is_negative() {
        // Regression: the old fold seeded with 0.0, so a set of negative
        // observations reported max == 0.0.
        let mut s = SampleSet::new();
        for v in [-5.0, -1.5, -9.0] {
            s.push(v);
        }
        assert_eq!(s.max(), -1.5);
        assert_eq!(s.min(), -9.0);
    }

    #[test]
    fn with_capacity_does_not_grow_within_bound() {
        let mut s = SampleSet::with_capacity(64);
        let cap = s.samples.capacity();
        for v in 0..64 {
            s.push(v as f64);
        }
        assert_eq!(s.samples.capacity(), cap);
    }

    #[test]
    fn merge_combines() {
        let mut a = SampleSet::new();
        a.push(1.0);
        let mut b = SampleSet::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn cdf_roundtrip() {
        let mut s = SampleSet::new();
        for v in 0..100 {
            s.push(v as f64);
        }
        let cdf = s.into_cdf();
        assert!((cdf.fraction_below(49.0) - 0.5).abs() < 0.02);
    }
}
