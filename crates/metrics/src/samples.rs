//! A bag of scalar samples with summary statistics.

use crate::stats::{mean, percentile, Cdf};

/// Collects scalar observations (queue lengths, queueing delays, …) and
/// summarizes them. Sorting is deferred to read time.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> SampleSet {
        SampleSet::default()
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite());
        self.samples.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        mean(&self.samples)
    }

    /// The `p`-quantile; 0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        percentile(&sorted, p)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Consume into an empirical CDF.
    pub fn into_cdf(self) -> Cdf {
        Cdf::from_samples(self.samples)
    }

    /// Borrowing CDF construction.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_samples(self.samples.clone())
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = SampleSet::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn empty_set_is_benign() {
        let s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = SampleSet::new();
        a.push(1.0);
        let mut b = SampleSet::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn cdf_roundtrip() {
        let mut s = SampleSet::new();
        for v in 0..100 {
            s.push(v as f64);
        }
        let cdf = s.into_cdf();
        assert!((cdf.fraction_below(49.0) - 0.5).abs() < 0.02);
    }
}
