//! Flow-completion-time accounting: AFCT, tail FCT, deadline misses.

use crate::stats::{mean, percentile, Cdf};
use tlb_engine::SimTime;
use tlb_net::FlowId;

/// Short/long classification used for reporting (by *actual* flow size, the
/// ground truth the workload generator knows — distinct from the switch's
/// online byte-count classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Below the threshold (paper: < 100 KB) — latency-sensitive.
    Short,
    /// At/above the threshold — throughput-sensitive.
    Long,
}

#[derive(Clone, Copy, Debug)]
struct Record {
    size: u64,
    start: SimTime,
    end: Option<SimTime>,
    /// Deadline as a duration from `start` (short flows only in the paper).
    deadline: Option<SimTime>,
}

/// Summary statistics for one flow class.
#[derive(Clone, Debug)]
pub struct FctSummary {
    /// Completed flows in this class.
    pub completed: usize,
    /// Started but not completed flows.
    pub unfinished: usize,
    /// Mean FCT over completed flows (seconds).
    pub afct: f64,
    /// 99th-percentile FCT (seconds).
    pub p99: f64,
    /// Median FCT (seconds).
    pub p50: f64,
    /// Fraction of deadline-carrying flows that missed (completed late or
    /// never completed).
    pub deadline_miss: f64,
    /// Mean goodput of completed flows in bytes/second.
    pub mean_goodput: f64,
}

/// Records every flow's lifetime and summarizes per class.
#[derive(Clone, Debug, Default)]
pub struct FctRecorder {
    records: Vec<Option<Record>>,
    short_threshold: u64,
}

impl FctRecorder {
    /// A recorder classifying flows below `short_threshold` bytes as short
    /// (the paper uses 100 KB).
    pub fn new(short_threshold: u64) -> FctRecorder {
        FctRecorder {
            records: Vec::new(),
            short_threshold,
        }
    }

    /// Pre-size the record table for `n_flows` flows so `flow_started`
    /// never reallocates mid-run (the resize-on-demand path stays as the
    /// correctness fallback for sparse ids beyond the hint).
    pub fn reserve(&mut self, n_flows: usize) {
        if n_flows > self.records.len() {
            self.records.reserve(n_flows - self.records.len());
        }
    }

    /// Register a flow at its start time.
    pub fn flow_started(
        &mut self,
        flow: FlowId,
        size: u64,
        start: SimTime,
        deadline: Option<SimTime>,
    ) {
        let idx = flow.index();
        if idx >= self.records.len() {
            self.records.resize(idx + 1, None);
        }
        debug_assert!(self.records[idx].is_none(), "flow {flow} started twice");
        self.records[idx] = Some(Record {
            size,
            start,
            end: None,
            deadline,
        });
    }

    /// Sentinel size for a completion recorded before its start is known —
    /// a sharded run completes a flow on the destination host's shard while
    /// the start lives on the source's. [`FctRecorder::absorb`] pairs the
    /// halves back up; a summary never sees the sentinel.
    const DETACHED: u64 = u64::MAX;

    /// Mark a flow complete (all bytes delivered to the receiver). If the
    /// flow was never registered here (its start lives in another shard's
    /// recorder), a detached end-only record is kept for [`Self::absorb`].
    pub fn flow_completed(&mut self, flow: FlowId, end: SimTime) {
        let idx = flow.index();
        if idx >= self.records.len() {
            self.records.resize(idx + 1, None);
        }
        match self.records[idx].as_mut() {
            Some(rec) => {
                debug_assert!(rec.end.is_none(), "flow {flow} completed twice");
                debug_assert!(rec.size == Self::DETACHED || end >= rec.start);
                rec.end = Some(end);
            }
            None => {
                self.records[idx] = Some(Record {
                    size: Self::DETACHED,
                    start: SimTime::ZERO,
                    end: Some(end),
                    deadline: None,
                });
            }
        }
    }

    /// Merge another recorder's records into this one, index by index. Each
    /// flow's start and end may live in different recorders (sharded runs
    /// split them across source and destination shards); the merge pairs a
    /// start-only record with its detached end so the result is exactly
    /// what a single serial recorder would hold. Panics on conflicting
    /// full records for the same flow.
    pub fn absorb(&mut self, other: FctRecorder) {
        debug_assert_eq!(self.short_threshold, other.short_threshold);
        if other.records.len() > self.records.len() {
            self.records.resize(other.records.len(), None);
        }
        for (idx, theirs) in other.records.into_iter().enumerate() {
            let Some(theirs) = theirs else { continue };
            match self.records[idx].as_mut() {
                None => self.records[idx] = Some(theirs),
                Some(mine) => match (mine.size == Self::DETACHED, theirs.size == Self::DETACHED) {
                    (true, false) => {
                        // Ours is the end half, theirs the start half.
                        debug_assert!(theirs.end.is_none(), "flow {idx} completed twice");
                        let end = mine.end;
                        *mine = theirs;
                        mine.end = end;
                    }
                    (false, true) => {
                        debug_assert!(mine.end.is_none(), "flow {idx} completed twice");
                        mine.end = theirs.end;
                    }
                    _ => panic!("flow {idx} recorded in two shards"),
                },
            }
        }
    }

    /// The class of a flow by its registered size.
    pub fn class_of(&self, flow: FlowId) -> Option<FlowClass> {
        self.records[flow.index()].map(|r| {
            if r.size < self.short_threshold {
                FlowClass::Short
            } else {
                FlowClass::Long
            }
        })
    }

    /// FCT of a completed flow in seconds.
    pub fn fct_of(&self, flow: FlowId) -> Option<f64> {
        let r = self.records.get(flow.index())?.as_ref()?;
        let end = r.end?;
        Some((end - r.start).as_secs_f64())
    }

    /// Number of flows registered.
    pub fn n_flows(&self) -> usize {
        self.records.iter().flatten().count()
    }

    fn class_records(&self, class: FlowClass) -> impl Iterator<Item = &Record> {
        self.records.iter().flatten().filter(move |r| {
            let c = if r.size < self.short_threshold {
                FlowClass::Short
            } else {
                FlowClass::Long
            };
            c == class
        })
    }

    /// Summarize one class.
    pub fn summary(&self, class: FlowClass) -> FctSummary {
        let mut fcts = Vec::new();
        let mut goodputs = Vec::new();
        let mut unfinished = 0;
        let mut with_deadline = 0usize;
        let mut missed = 0usize;
        for r in self.class_records(class) {
            match r.end {
                Some(end) => {
                    let fct = (end - r.start).as_secs_f64();
                    fcts.push(fct);
                    if fct > 0.0 {
                        goodputs.push(r.size as f64 / fct);
                    }
                    if let Some(d) = r.deadline {
                        with_deadline += 1;
                        if end - r.start > d {
                            missed += 1;
                        }
                    }
                }
                None => {
                    unfinished += 1;
                    if r.deadline.is_some() {
                        with_deadline += 1;
                        missed += 1; // never finishing certainly misses
                    }
                }
            }
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        FctSummary {
            completed: fcts.len(),
            unfinished,
            afct: mean(&fcts),
            p99: if fcts.is_empty() {
                0.0
            } else {
                percentile(&fcts, 0.99)
            },
            p50: if fcts.is_empty() {
                0.0
            } else {
                percentile(&fcts, 0.50)
            },
            deadline_miss: if with_deadline == 0 {
                0.0
            } else {
                missed as f64 / with_deadline as f64
            },
            mean_goodput: mean(&goodputs),
        }
    }

    /// Completed FCTs of a class, in seconds (unsorted). Lets callers that
    /// merge several runs pool the raw samples and build one CDF at the
    /// end, instead of sorting per run and resampling.
    pub fn fct_samples(&self, class: FlowClass) -> Vec<f64> {
        self.class_records(class)
            .filter_map(|r| r.end.map(|e| (e - r.start).as_secs_f64()))
            .collect()
    }

    /// Empirical CDF of completed FCTs for a class (Fig. 3(c)).
    pub fn fct_cdf(&self, class: FlowClass) -> Cdf {
        Cdf::from_samples(self.fct_samples(class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn classifies_by_size() {
        let mut r = FctRecorder::new(100_000);
        r.flow_started(FlowId(0), 50_000, ms(0), None);
        r.flow_started(FlowId(1), 10_000_000, ms(0), None);
        assert_eq!(r.class_of(FlowId(0)), Some(FlowClass::Short));
        assert_eq!(r.class_of(FlowId(1)), Some(FlowClass::Long));
    }

    #[test]
    fn afct_and_percentiles() {
        let mut r = FctRecorder::new(100_000);
        for (i, fct_ms) in [10u64, 20, 30, 40].iter().enumerate() {
            r.flow_started(FlowId(i as u32), 1_000, ms(0), None);
            r.flow_completed(FlowId(i as u32), ms(*fct_ms));
        }
        let s = r.summary(FlowClass::Short);
        assert_eq!(s.completed, 4);
        assert!((s.afct - 0.025).abs() < 1e-9);
        assert!((s.p50 - 0.025).abs() < 1e-9);
        assert!(s.p99 > 0.039 && s.p99 <= 0.040);
    }

    #[test]
    fn deadline_misses() {
        let mut r = FctRecorder::new(100_000);
        // Meets its 15 ms deadline.
        r.flow_started(FlowId(0), 1_000, ms(0), Some(ms(15)));
        r.flow_completed(FlowId(0), ms(10));
        // Misses its 5 ms deadline.
        r.flow_started(FlowId(1), 1_000, ms(0), Some(ms(5)));
        r.flow_completed(FlowId(1), ms(10));
        // Never completes: counted as missed.
        r.flow_started(FlowId(2), 1_000, ms(0), Some(ms(5)));
        let s = r.summary(FlowClass::Short);
        assert!((s.deadline_miss - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.unfinished, 1);
    }

    #[test]
    fn goodput_accounts_size_over_fct() {
        let mut r = FctRecorder::new(100);
        r.flow_started(FlowId(0), 1_000_000, ms(0), None);
        r.flow_completed(FlowId(0), ms(100)); // 10 MB/s
        let s = r.summary(FlowClass::Long);
        assert!((s.mean_goodput - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    fn classes_do_not_mix() {
        let mut r = FctRecorder::new(100_000);
        r.flow_started(FlowId(0), 1_000, ms(0), None);
        r.flow_completed(FlowId(0), ms(1));
        r.flow_started(FlowId(1), 1_000_000, ms(0), None);
        r.flow_completed(FlowId(1), ms(1000));
        let s = r.summary(FlowClass::Short);
        let l = r.summary(FlowClass::Long);
        assert_eq!(s.completed, 1);
        assert_eq!(l.completed, 1);
        assert!((s.afct - 0.001).abs() < 1e-12);
        assert!((l.afct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_of_fcts() {
        let mut r = FctRecorder::new(100_000);
        for i in 0..10u32 {
            r.flow_started(FlowId(i), 1_000, ms(0), None);
            r.flow_completed(FlowId(i), ms((i + 1) as u64));
        }
        let cdf = r.fct_cdf(FlowClass::Short);
        assert_eq!(cdf.len(), 10);
        assert!((cdf.fraction_below(0.005) - 0.5).abs() < 0.01);
    }

    #[test]
    fn absorb_pairs_split_starts_and_ends() {
        // Shard A starts flows 0 and 1 and completes 1 locally; shard B
        // holds flow 0's detached completion. The merge must reconstruct
        // exactly what one serial recorder would hold.
        let mut a = FctRecorder::new(100_000);
        a.flow_started(FlowId(0), 1_000, ms(0), Some(ms(15)));
        a.flow_started(FlowId(1), 2_000, ms(1), None);
        a.flow_completed(FlowId(1), ms(5));
        let mut b = FctRecorder::new(100_000);
        b.flow_completed(FlowId(0), ms(10)); // detached: start unknown here
        a.absorb(b);
        assert_eq!(a.fct_of(FlowId(0)), Some(0.010));
        assert_eq!(a.fct_of(FlowId(1)), Some(0.004));
        let s = a.summary(FlowClass::Short);
        assert_eq!(s.completed, 2);
        assert_eq!(s.unfinished, 0);
        assert!((s.deadline_miss - 0.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_flow_ids_are_fine() {
        let mut r = FctRecorder::new(100_000);
        r.flow_started(FlowId(100), 1_000, ms(0), None);
        r.flow_completed(FlowId(100), ms(1));
        assert_eq!(r.n_flows(), 1);
        assert_eq!(r.fct_of(FlowId(100)), Some(0.001));
        assert_eq!(r.fct_of(FlowId(5)), None);
    }
}
