//! Percentiles, means and empirical CDFs.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Largest value; 0 for an empty slice (the shared benign-empty
/// convention). Non-empty slices fold from `-inf` so all-negative data
/// reports its true maximum — seeding the fold with `0.0` would silently
/// clamp it to zero, the bug `SampleSet::max` shipped with.
pub fn max(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Smallest value; 0 for an empty slice. Folds from `+inf` on non-empty
/// data for the same reason [`max`] folds from `-inf`.
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The `p`-quantile (0 ≤ p ≤ 1) of **sorted** data using the
/// nearest-rank-with-interpolation convention. Panics in debug builds if
/// the slice is unsorted.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The `p`-quantile of **unsorted** data without sorting it: two
/// `select_nth_unstable` partitions instead of a full `O(n log n)` sort.
/// Matches [`percentile`]-after-sort bit for bit (the interpolation
/// convention is shared), but runs in `O(n)` — the right tool when a
/// caller wants a single quantile of a large set. Reorders `xs`.
pub fn percentile_select(xs: &mut [f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if xs.len() == 1 {
        return xs[0];
    }
    let rank = p * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN sample");
    let (_, &mut v_lo, rest) = xs.select_nth_unstable_by(lo, cmp);
    if lo == hi {
        return v_lo;
    }
    // `sorted[lo + 1]` is exactly the minimum of the right partition
    // (`rest` is non-empty because `hi <= len - 1`).
    let v_hi = rest
        .iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("NaN sample"))
        .expect("right partition empty");
    let frac = rank - lo as f64;
    v_lo * (1.0 - frac) + v_hi * frac
}

/// An empirical cumulative distribution function built from samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from (unsorted) samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Cdf {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The value at quantile `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        percentile(&self.sorted, p)
    }

    /// Evenly spaced (value, cumulative-fraction) points for plotting,
    /// `n` of them.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        if self.sorted.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let p = i as f64 / (n - 1) as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn min_max_handle_all_negative_and_empty() {
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[-3.0, -1.0, -2.0]), -1.0);
        assert_eq!(min(&[-3.0, -1.0, -2.0]), -3.0);
        assert_eq!(max(&[4.0, -7.0]), 4.0);
        assert_eq!(min(&[4.0, -7.0]), -7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 0.5), 5.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&ys, 0.5), 3.0);
        assert_eq!(percentile(&ys, 0.25), 2.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    /// The selection-based median must equal the full-sort median exactly,
    /// on both parities: odd length hits one element, even length
    /// interpolates between the two middle elements.
    #[test]
    fn select_median_matches_sort_for_even_and_odd_lengths() {
        let odd = [9.0, 2.0, 5.0, 7.0, 1.0];
        let even = [9.0, 2.0, 5.0, 7.0, 1.0, 8.0];
        for xs in [&odd[..], &even[..]] {
            let mut sorted = xs.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let want = percentile(&sorted, 0.5);
            let mut scratch = xs.to_vec();
            let got = percentile_select(&mut scratch, 0.5);
            assert_eq!(got.to_bits(), want.to_bits(), "n={}", xs.len());
        }
        assert_eq!(percentile_select(&mut [7.0], 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn cdf_fraction_below() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(10.0), 1.0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let c = Cdf::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts[0].0, 1.0);
        assert_eq!(pts[10].0, 5.0);
    }

    proptest! {
        /// percentile is monotone in p and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let v_lo = percentile(&xs, lo);
            let v_hi = percentile(&xs, hi);
            prop_assert!(v_lo <= v_hi + 1e-9);
            prop_assert!(v_lo >= xs[0] - 1e-9);
            prop_assert!(v_hi <= xs[xs.len() - 1] + 1e-9);
        }

        /// Selection must agree with sort-then-index bit for bit at any p,
        /// on any data — the contract that lets `SampleSet::quantile` swap
        /// the full sort for two partitions.
        #[test]
        fn prop_select_matches_sort(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
            p in 0.0f64..1.0,
        ) {
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let want = percentile(&sorted, p);
            let mut scratch = xs;
            let got = percentile_select(&mut scratch, p);
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }

        /// fraction_below(quantile(p)) >= p - 1/n: the interpolated-quantile
        /// convention can undershoot by at most one sample's mass.
        #[test]
        fn prop_cdf_consistency(
            xs in proptest::collection::vec(0.0f64..100.0, 1..100),
            p in 0.0f64..1.0,
        ) {
            let n = xs.len() as f64;
            let c = Cdf::from_samples(xs);
            let q = c.quantile(p);
            prop_assert!(c.fraction_below(q) >= p - 1.0 / n - 1e-9);
        }
    }
}
