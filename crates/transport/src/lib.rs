//! # tlb-transport — TCP NewReno and DCTCP endpoints
//!
//! The transport substrate the paper's evaluation runs on: NS2's DCTCP
//! agents, rebuilt as explicit state machines. Senders and receivers are
//! *pure*: they never touch the event queue directly. Instead every
//! entry point appends [`SenderOutput`]s (packets to transmit, timers to
//! arm) to a caller-provided buffer, which keeps the state machines
//! unit-testable without a simulator and allocation-free on the hot path.
//!
//! Modelled behaviour (see DESIGN.md §6 for the documented simplifications):
//!
//! * connection setup: SYN → SYN-ACK → data (one RTT, retransmitted on RTO);
//! * slow start with IW = 2 (the paper's Eq. 3 assumes 2, 4, 8, …);
//! * congestion avoidance, fast retransmit / NewReno fast recovery with
//!   partial-ACK retransmission, RTO with exponential backoff and Karn's
//!   rule for RTT sampling (RFC 6298 estimator);
//! * a 64 KB receive-window cap — the paper's `W_L` for long flows;
//! * DCTCP: per-packet ECN echo, `α` EWMA per window, one `α/2`-proportional
//!   window cut per marked window;
//! * per-packet cumulative ACKs (no delayed ACKs) so duplicate-ACK counting
//!   matches the reordering analysis of Fig. 3(b)/Fig. 9(a).

pub mod config;
pub mod pool;
#[cfg(test)]
mod proptests;
pub mod receiver;
pub mod sender;

pub use config::{DctcpConfig, TcpConfig};
pub use pool::OooPool;
pub use receiver::{ReceiverStats, TcpReceiver};
pub use sender::{SenderOutput, SenderStats, TcpSender};
