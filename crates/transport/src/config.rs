//! Transport parameters.

use tlb_engine::SimTime;

/// DCTCP congestion-control extension parameters.
#[derive(Clone, Copy, Debug)]
pub struct DctcpConfig {
    /// EWMA gain `g` for the marked-fraction estimate `α` (paper value 1/16).
    pub g: f64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig { g: 1.0 / 16.0 }
    }
}

/// TCP endpoint configuration shared by all flows of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment payload in bytes.
    pub mss: u32,
    /// TCP/IP header overhead added to each data segment on the wire.
    pub header_bytes: u32,
    /// Initial congestion window in segments (Eq. 3 assumes 2).
    pub init_cwnd: f64,
    /// Receive window cap in bytes (the paper's `W_L`: 64 KB Linux default).
    pub rwnd_bytes: u32,
    /// Duplicate ACKs triggering fast retransmit.
    pub dupack_threshold: u32,
    /// Lower bound for the retransmission timeout.
    pub min_rto: SimTime,
    /// RTO used before any RTT sample exists.
    pub initial_rto: SimTime,
    /// Upper bound for backed-off RTOs.
    pub max_rto: SimTime,
    /// `Some` enables DCTCP window control (requires ECN-marking switches).
    pub dctcp: Option<DctcpConfig>,
}

impl TcpConfig {
    /// DCTCP endpoints as used throughout the paper's NS2 simulations:
    /// MSS 1460 B, IW 2, 64 KB receive window, 10 ms minimum RTO (the usual
    /// datacenter NS2 setting).
    pub fn dctcp_default() -> TcpConfig {
        TcpConfig {
            mss: 1460,
            header_bytes: 40,
            init_cwnd: 2.0,
            rwnd_bytes: 65_535,
            dupack_threshold: 3,
            min_rto: SimTime::from_millis(10),
            initial_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_secs(2),
            dctcp: Some(DctcpConfig::default()),
        }
    }

    /// Plain TCP NewReno (ECN ignored) — for ablations.
    pub fn newreno_default() -> TcpConfig {
        TcpConfig {
            dctcp: None,
            ..TcpConfig::dctcp_default()
        }
    }

    /// The Mininet-testbed flavour (§7): 20 Mbit/s links, millisecond RTTs,
    /// a conventional 200 ms minimum RTO.
    pub fn testbed_default() -> TcpConfig {
        TcpConfig {
            min_rto: SimTime::from_millis(200),
            initial_rto: SimTime::from_millis(200),
            max_rto: SimTime::from_secs(4),
            ..TcpConfig::dctcp_default()
        }
    }

    /// The receive window in whole segments (at least 1).
    pub fn rwnd_segs(&self) -> u32 {
        (self.rwnd_bytes / self.mss).max(1)
    }

    /// Upper bound on [`crate::SenderOutput`]s a *single* sender entry
    /// point can append to its output buffer, derived from the state
    /// machine rather than guessed at the call site:
    ///
    /// * the worst case is a partial ACK in fast recovery: 1 retransmission,
    ///   then up to `rwnd_segs` window-limited fresh sends (the effective
    ///   window is capped by `rwnd_segs` and flight is nonnegative), then
    ///   1 lazy `ArmTimer`;
    /// * every other path is smaller: RTO emits retransmit + re-arm (2),
    ///   fast retransmit emits retransmit + arm (2), flow completion emits
    ///   FIN + Finished (2) and returns before `send_available`.
    ///
    /// The simulator sizes its reusable output buffer from this and the
    /// allocation audit asserts it never regrows — so if a future sender
    /// change widens the worst case, the gate catches the stale bound.
    pub fn max_outputs_per_call(&self) -> usize {
        self.rwnd_segs() as usize + 2
    }

    /// Check configuration consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.init_cwnd < 1.0 {
            return Err("init_cwnd must be at least 1 segment".into());
        }
        if self.dupack_threshold == 0 {
            return Err("dupack_threshold must be positive".into());
        }
        if self.min_rto.is_zero() || self.initial_rto.is_zero() {
            return Err("RTO bounds must be positive".into());
        }
        if self.max_rto < self.min_rto {
            return Err("max_rto < min_rto".into());
        }
        if let Some(d) = self.dctcp {
            if !(0.0..=1.0).contains(&d.g) {
                return Err(format!("DCTCP g out of [0,1]: {}", d.g));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TcpConfig::dctcp_default().validate().unwrap();
        TcpConfig::newreno_default().validate().unwrap();
        TcpConfig::testbed_default().validate().unwrap();
    }

    #[test]
    fn rwnd_is_44_segments() {
        // 65535 / 1460 = 44 full segments — the paper's W_L cap.
        assert_eq!(TcpConfig::dctcp_default().rwnd_segs(), 44);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let ok = TcpConfig::dctcp_default();
        let mut bad = ok;
        bad.mss = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.init_cwnd = 0.5;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.max_rto = SimTime::from_nanos(1);
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.dctcp = Some(DctcpConfig { g: 2.0 });
        assert!(bad.validate().is_err());
    }
}
