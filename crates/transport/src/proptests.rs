//! Property tests for the transport state machines: no input sequence —
//! however adversarial — may violate the TCP invariants.

use crate::config::TcpConfig;
use crate::receiver::TcpReceiver;
use crate::sender::{SenderOutput, TcpSender};
use proptest::prelude::*;
use tlb_engine::{SimRng, SimTime};
use tlb_net::{packet::PktFlags, FlowId, HostId, Packet, PktKind};

fn ack(seq: u32, ece: bool, now: SimTime) -> Packet {
    let mut a = Packet::control(FlowId(1), HostId(9), HostId(0), PktKind::Ack, seq, now);
    a.flags.set(PktFlags::ECE, ece);
    a
}

fn synack(now: SimTime) -> Packet {
    Packet::control(FlowId(1), HostId(9), HostId(0), PktKind::SynAck, 0, now)
}

proptest! {
    /// Feeding the sender an arbitrary stream of ACK numbers (valid,
    /// stale, duplicated, or beyond what was sent — a byzantine receiver)
    /// must never panic, never shrink snd_una, and never push the
    /// congestion window below 1 segment.
    #[test]
    fn prop_sender_survives_byzantine_acks(
        acks in proptest::collection::vec((0u32..200, any::<bool>()), 1..300),
        size_segs in 1u64..150,
    ) {
        let mut s = TcpSender::new(
            TcpConfig::dctcp_default(),
            FlowId(1),
            HostId(0),
            HostId(9),
            size_segs * 1460,
        );
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        s.start(now, &mut out);
        now += SimTime::from_micros(100);
        out.clear();
        s.on_packet(&synack(now), now, &mut out);
        let mut last_una = 0;
        for (a, ece) in acks {
            now += SimTime::from_micros(10);
            out.clear();
            s.on_packet(&ack(a, ece, now), now, &mut out);
            prop_assert!(s.acked_segs() >= last_una, "snd_una went backwards");
            last_una = s.acked_segs();
            prop_assert!(s.cwnd() >= 1.0, "cwnd {} < 1", s.cwnd());
            prop_assert!((0.0..=1.0).contains(&s.alpha()), "alpha {}", s.alpha());
            // Everything it sends stays within the sequence space.
            for o in &out {
                if let SenderOutput::Send(p) = o {
                    if p.kind == PktKind::Data {
                        prop_assert!(p.seq < size_segs as u32);
                    }
                }
            }
        }
    }

    /// Random timer fires interleaved with valid cumulative ACKs: the
    /// transfer state stays consistent and the RTO never exceeds its cap.
    #[test]
    fn prop_sender_timers_and_acks(
        script in proptest::collection::vec(any::<bool>(), 1..200),
        size_segs in 1u64..100,
    ) {
        let cfg = TcpConfig::dctcp_default();
        let mut s = TcpSender::new(cfg, FlowId(1), HostId(0), HostId(9), size_segs * 1460);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        s.start(now, &mut out);
        now += SimTime::from_micros(100);
        out.clear();
        s.on_packet(&synack(now), now, &mut out);
        let mut next_ack = 1u32;
        for fire_timer in script {
            if s.is_finished() {
                break;
            }
            if fire_timer {
                now += s.rto() + SimTime::from_micros(1);
                out.clear();
                s.on_timer(now, &mut out);
            } else {
                now += SimTime::from_micros(50);
                out.clear();
                s.on_packet(&ack(next_ack, false, now), now, &mut out);
                next_ack = (next_ack + 1).min(size_segs as u32);
            }
            prop_assert!(s.rto() <= cfg.max_rto);
            prop_assert!(s.rto() >= cfg.min_rto);
            prop_assert!(s.cwnd() >= 1.0);
        }
    }

    /// Every sender entry point respects `TcpConfig::max_outputs_per_call`
    /// — the bound the simulator sizes its reusable output buffer from.
    /// Drives the adversarial mix the bound's derivation worries about:
    /// RTO fires, duplicate-ACK bursts (fast retransmit), partial ACKs in
    /// recovery followed by window-opening ACKs, and the FIN path — and
    /// asserts the pre-sized buffer never regrows.
    #[test]
    fn prop_out_buf_bound_holds_per_call(
        script in proptest::collection::vec((0u32..3, 0u32..150), 1..300),
        size_segs in 1u64..150,
    ) {
        let cfg = TcpConfig::dctcp_default();
        let bound = cfg.max_outputs_per_call();
        let mut s = TcpSender::new(cfg, FlowId(1), HostId(0), HostId(9), size_segs * 1460);
        let mut out = Vec::with_capacity(bound);
        let cap = out.capacity();
        let mut now = SimTime::ZERO;
        s.start(now, &mut out);
        prop_assert!(out.len() <= bound);
        now += SimTime::from_micros(100);
        out.clear();
        s.on_packet(&synack(now), now, &mut out);
        prop_assert!(out.len() <= bound);
        let mut cum = 0u32;
        for (kind, a) in script {
            out.clear();
            match kind {
                0 => {
                    // RTO fire.
                    now += s.rto() + SimTime::from_micros(1);
                    s.on_timer(now, &mut out);
                }
                1 => {
                    // Arbitrary (possibly stale/duplicate/partial) ACK.
                    now += SimTime::from_micros(10);
                    s.on_packet(&ack(a, a % 3 == 0, now), now, &mut out);
                }
                _ => {
                    // Valid cumulative ACK advancing toward completion
                    // (exercises window-limited bursts and the FIN path).
                    cum = (cum + 1 + a % 4).min(size_segs as u32);
                    now += SimTime::from_micros(10);
                    s.on_packet(&ack(cum, false, now), now, &mut out);
                }
            }
            prop_assert!(
                out.len() <= bound,
                "one call emitted {} outputs, bound {bound}",
                out.len()
            );
            prop_assert_eq!(out.capacity(), cap, "output buffer regrew");
            if s.is_finished() {
                break;
            }
        }
    }

    /// The receiver's cumulative pointer never exceeds the highest
    /// contiguous prefix, whatever arrives (including far-future seqs).
    #[test]
    fn prop_receiver_cumulative_invariant(
        seqs in proptest::collection::vec(0u32..1000, 1..300),
    ) {
        let mut r = TcpReceiver::new(FlowId(1), HostId(9), HostId(0));
        let mut delivered = std::collections::HashSet::new();
        for s in seqs {
            let pkt = Packet::data(FlowId(1), HostId(0), HostId(9), s, 1460, 40, SimTime::ZERO);
            let a = r.on_data(&pkt, SimTime::ZERO);
            delivered.insert(s);
            // ACK always equals rcv_nxt and rcv_nxt == contiguous prefix.
            let mut prefix = 0;
            while delivered.contains(&prefix) {
                prefix += 1;
            }
            prop_assert_eq!(a.seq, prefix);
            prop_assert_eq!(r.delivered_segs(), prefix);
        }
    }

    /// Loopback with an arbitrary loss pattern always completes, and the
    /// receiver never delivers a byte twice (delivered == total exactly).
    #[test]
    fn prop_lossy_loopback_completes(
        seed in 0u64..5000,
        loss_pct in 0u32..30,
        segs in 1u64..80,
    ) {
        let mut s = TcpSender::new(
            TcpConfig::dctcp_default(),
            FlowId(1),
            HostId(0),
            HostId(9),
            segs * 1460,
        );
        let mut r = TcpReceiver::new(FlowId(1), HostId(9), HostId(0));
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        let mut pending: Vec<SenderOutput> = Vec::new();
        let mut deadline = None;
        s.start(now, &mut out);
        pending.append(&mut out);
        let mut steps = 0u64;
        while !s.is_finished() {
            steps += 1;
            prop_assert!(steps < 500_000, "no convergence");
            if pending.is_empty() {
                let d: SimTime = deadline.expect("stall without timer");
                now = now.max(d);
                s.on_timer(now, &mut out);
                pending.append(&mut out);
                continue;
            }
            match pending.remove(0) {
                SenderOutput::ArmTimer { deadline: d } => deadline = Some(d),
                SenderOutput::Finished => {}
                SenderOutput::Send(pkt) => {
                    now += SimTime::from_micros(5);
                    match pkt.kind {
                        PktKind::Syn => {
                            let sa = r.on_syn(now);
                            s.on_packet(&sa, now, &mut out);
                            pending.append(&mut out);
                        }
                        PktKind::Data if rng.gen_range(100) >= loss_pct as u64 => {
                            let a = r.on_data(&pkt, now);
                            s.on_packet(&a, now, &mut out);
                            pending.append(&mut out);
                        }
                        PktKind::Fin => {}
                        _ => {}
                    }
                }
            }
        }
        prop_assert_eq!(r.delivered_segs() as u64, segs);
    }
}
