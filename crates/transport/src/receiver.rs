//! The receiving endpoint: cumulative ACKs, out-of-order buffering,
//! per-packet ECN echo, reordering statistics.

use tlb_engine::SimTime;
use tlb_net::{packet::PktFlags, FlowId, HostId, Packet, PktKind};

/// Counters the evaluation reads off each receiver.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReceiverStats {
    /// Data segments that arrived in order (== `rcv_nxt`).
    pub in_order: u64,
    /// Data segments that arrived beyond `rcv_nxt` (a gap — the receiver
    /// buffered them and emitted a duplicate ACK). This is the
    /// "out-of-order packets" series of Fig. 4(b)/Fig. 9(a).
    pub out_of_order: u64,
    /// Data segments that were already delivered or buffered (spurious
    /// retransmissions / duplicates).
    pub duplicates: u64,
    /// Duplicate ACKs emitted.
    pub dup_acks_sent: u64,
    /// Data segments carrying a CE mark.
    pub ce_marked: u64,
    /// Total data segments received (any disposition).
    pub total_data: u64,
}

/// One flow's receiver. Acks every data packet (no delayed ACKs) with the
/// cumulative next-expected sequence and echoes CE marks per packet.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    /// This endpoint's host (source of the ACKs).
    host: HostId,
    /// The sender's host (destination of the ACKs).
    peer: HostId,
    /// Next expected in-order segment.
    rcv_nxt: u32,
    /// Buffered out-of-order segments, kept sorted ascending. Bounded by
    /// the sender's window (≤ `rwnd_segs` entries), so a flat sorted Vec
    /// beats a tree: binary-search insert, first-element min, prefix-drain
    /// on heal — and the backing storage can be pooled and recycled across
    /// flows (see [`crate::pool::OooPool`]) instead of node-allocating.
    ooo: Vec<u32>,
    /// High-water mark of `rcv_nxt`, kept separately so the monotone
    /// in-order-delivery invariant is checked against recorded history
    /// rather than re-derived from the value it guards.
    delivered_watermark: u32,
    /// First recorded violation of the delivery invariants (sticky).
    violation: Option<String>,
    stats: ReceiverStats,
}

impl TcpReceiver {
    /// Create the receiver side of `flow`, living on `host`, talking back
    /// to `peer`.
    pub fn new(flow: FlowId, host: HostId, peer: HostId) -> TcpReceiver {
        TcpReceiver::with_ooo_buf(flow, host, peer, Vec::new())
    }

    /// Like [`TcpReceiver::new`], but adopting `buf` (cleared) as the
    /// out-of-order buffer — the hook the simulator uses to hand receivers
    /// pooled, pre-sized storage instead of letting each flow grow its own.
    pub fn with_ooo_buf(
        flow: FlowId,
        host: HostId,
        peer: HostId,
        mut buf: Vec<u32>,
    ) -> TcpReceiver {
        buf.clear();
        TcpReceiver {
            flow,
            host,
            peer,
            rcv_nxt: 0,
            ooo: buf,
            delivered_watermark: 0,
            violation: None,
            stats: ReceiverStats::default(),
        }
    }

    /// Reclaim the out-of-order buffer for pooling, leaving an empty
    /// unallocated Vec behind. Called at flow teardown (FIN delivery), by
    /// which point the buffer is necessarily empty: the cumulative point
    /// has passed every segment the sender ever emitted. Idempotent — a
    /// second call returns a capacity-0 Vec, which pools ignore.
    pub fn take_ooo_buf(&mut self) -> Vec<u32> {
        debug_assert!(
            self.ooo.is_empty(),
            "ooo buffer non-empty at teardown (rcv_nxt {})",
            self.rcv_nxt
        );
        std::mem::take(&mut self.ooo)
    }

    /// Highest in-order segment delivered so far (`rcv_nxt`).
    #[inline]
    pub fn delivered_segs(&self) -> u32 {
        self.rcv_nxt
    }

    /// Segments currently buffered out of order.
    #[inline]
    pub fn buffered(&self) -> usize {
        self.ooo.len()
    }

    /// Statistics snapshot.
    #[inline]
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// End-of-run receiver invariant check, mirroring
    /// `TcpSender::invariant_violation` — `None` when healthy.
    ///
    /// Checked: monotone in-order delivery (`rcv_nxt` never moved
    /// backwards, recorded against a separate high-water mark on every
    /// segment), the out-of-order buffer only holds segments beyond
    /// `rcv_nxt`, delivery never outruns distinct received segments, and
    /// the disposition counters partition `total_data`. The conservation
    /// audit and the scenario fuzzer both consume this.
    pub fn invariant_violation(&self) -> Option<String> {
        if let Some(v) = &self.violation {
            return Some(v.clone());
        }
        if let Some(&lo) = self.ooo.first() {
            if lo <= self.rcv_nxt {
                return Some(format!(
                    "ooo buffer holds already-delivered segment {lo} (rcv_nxt {})",
                    self.rcv_nxt
                ));
            }
        }
        let distinct = self.stats.in_order + self.stats.out_of_order;
        if u64::from(self.rcv_nxt) > distinct {
            return Some(format!(
                "delivered {} segments but only {distinct} distinct ones arrived",
                self.rcv_nxt
            ));
        }
        let parts = distinct + self.stats.duplicates;
        if self.stats.total_data != parts {
            return Some(format!(
                "disposition counters {parts} do not partition total_data {}",
                self.stats.total_data
            ));
        }
        None
    }

    /// Respond to a SYN with a SYN-ACK (idempotent — handles retransmitted
    /// SYNs).
    pub fn on_syn(&self, now: SimTime) -> Packet {
        Packet::control(self.flow, self.host, self.peer, PktKind::SynAck, 0, now)
    }

    /// Accept a data segment, returning the cumulative ACK to send back.
    ///
    /// The ACK's `seq` is the next expected segment after processing; its
    /// ECE flag echoes the data packet's CE mark (per-packet echo, the
    /// simplified DCTCP receiver state machine for one-ACK-per-packet).
    pub fn on_data(&mut self, pkt: &Packet, now: SimTime) -> Packet {
        debug_assert_eq!(pkt.kind, PktKind::Data);
        debug_assert_eq!(pkt.flow, self.flow);
        self.stats.total_data += 1;
        if pkt.ce() {
            self.stats.ce_marked += 1;
        }

        let seq = pkt.seq;
        let advanced = if seq == self.rcv_nxt {
            self.stats.in_order += 1;
            self.rcv_nxt += 1;
            // Drain any buffered continuation: with `ooo` sorted and every
            // entry > the old rcv_nxt, the healed run is exactly the
            // longest prefix of consecutive values starting at rcv_nxt.
            let mut run = 0usize;
            while run < self.ooo.len() && self.ooo[run] == self.rcv_nxt + run as u32 {
                run += 1;
            }
            if run > 0 {
                self.rcv_nxt += run as u32;
                self.ooo.copy_within(run.., 0);
                self.ooo.truncate(self.ooo.len() - run);
            }
            true
        } else if seq > self.rcv_nxt {
            match self.ooo.binary_search(&seq) {
                Ok(_) => self.stats.duplicates += 1,
                Err(pos) => {
                    self.ooo.insert(pos, seq);
                    self.stats.out_of_order += 1;
                }
            }
            false
        } else {
            // Already delivered: a spurious retransmission or duplicate.
            self.stats.duplicates += 1;
            false
        };

        if !advanced {
            self.stats.dup_acks_sent += 1;
        }
        // Monotone-delivery bookkeeping: the cumulative point must never
        // regress. Record (rather than assert) so release runs surface it
        // through the audit instead of aborting mid-flight.
        if self.rcv_nxt < self.delivered_watermark && self.violation.is_none() {
            self.violation = Some(format!(
                "rcv_nxt moved backwards: {} after watermark {}",
                self.rcv_nxt, self.delivered_watermark
            ));
        }
        self.delivered_watermark = self.delivered_watermark.max(self.rcv_nxt);
        let mut ack = Packet::control(
            self.flow,
            self.host,
            self.peer,
            PktKind::Ack,
            self.rcv_nxt,
            now,
        );
        if pkt.ce() {
            ack.flags.set(PktFlags::ECE, true);
        }
        ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(FlowId(1), HostId(9), HostId(0))
    }

    fn seg(seq: u32, ce: bool) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        );
        if ce {
            p.mark_ce();
        }
        p
    }

    #[test]
    fn in_order_stream_advances() {
        let mut r = rx();
        for s in 0..10 {
            let ack = r.on_data(&seg(s, false), SimTime::ZERO);
            assert_eq!(ack.seq, s + 1);
            assert_eq!(ack.kind, PktKind::Ack);
            assert!(!ack.ece());
        }
        assert_eq!(r.delivered_segs(), 10);
        assert_eq!(r.stats().in_order, 10);
        assert_eq!(r.stats().out_of_order, 0);
        assert_eq!(r.stats().dup_acks_sent, 0);
    }

    #[test]
    fn gap_generates_dup_acks_then_heals() {
        let mut r = rx();
        r.on_data(&seg(0, false), SimTime::ZERO);
        // Segment 1 lost; 2, 3, 4 arrive.
        for s in [2, 3, 4] {
            let ack = r.on_data(&seg(s, false), SimTime::ZERO);
            assert_eq!(ack.seq, 1, "cumulative ACK stuck at the hole");
        }
        assert_eq!(r.stats().dup_acks_sent, 3);
        assert_eq!(r.stats().out_of_order, 3);
        assert_eq!(r.buffered(), 3);
        // The retransmission fills the hole: ACK jumps to 5.
        let ack = r.on_data(&seg(1, false), SimTime::ZERO);
        assert_eq!(ack.seq, 5);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.delivered_segs(), 5);
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let mut r = rx();
        r.on_data(&seg(0, false), SimTime::ZERO);
        let ack = r.on_data(&seg(0, false), SimTime::ZERO);
        assert_eq!(ack.seq, 1);
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.delivered_segs(), 1);
        // Duplicate of a buffered out-of-order segment.
        r.on_data(&seg(5, false), SimTime::ZERO);
        r.on_data(&seg(5, false), SimTime::ZERO);
        assert_eq!(r.stats().duplicates, 2);
        assert_eq!(r.stats().out_of_order, 1);
    }

    #[test]
    fn ce_is_echoed_per_packet() {
        let mut r = rx();
        let a0 = r.on_data(&seg(0, true), SimTime::ZERO);
        assert!(a0.ece());
        let a1 = r.on_data(&seg(1, false), SimTime::ZERO);
        assert!(!a1.ece());
        assert_eq!(r.stats().ce_marked, 1);
    }

    #[test]
    fn pooled_buffer_roundtrip() {
        // A recycled buffer (dirty, pre-sized) is adopted cleanly…
        let mut dirty = Vec::with_capacity(44);
        dirty.extend_from_slice(&[7, 9, 11]);
        let cap = dirty.capacity();
        let mut r = TcpReceiver::with_ooo_buf(FlowId(1), HostId(9), HostId(0), dirty);
        assert_eq!(r.buffered(), 0, "adopted buffer must be cleared");
        // …used through a gap-and-heal cycle without growing…
        r.on_data(&seg(0, false), SimTime::ZERO);
        for s in [2, 4, 3] {
            r.on_data(&seg(s, false), SimTime::ZERO);
        }
        r.on_data(&seg(1, false), SimTime::ZERO);
        assert_eq!(r.delivered_segs(), 5);
        assert_eq!(r.buffered(), 0);
        // …and reclaimed at teardown with its capacity intact.
        let buf = r.take_ooo_buf();
        assert_eq!(buf.capacity(), cap);
        // A second take is idempotent: capacity-0, which pools ignore.
        assert_eq!(r.take_ooo_buf().capacity(), 0);
    }

    #[test]
    fn heal_drains_only_the_contiguous_prefix() {
        let mut r = rx();
        // Buffer 1, 2, 5 while 0 is missing.
        for s in [2, 5, 1] {
            r.on_data(&seg(s, false), SimTime::ZERO);
        }
        assert_eq!(r.buffered(), 3);
        // 0 arrives: 0-1-2 heal, 5 stays buffered.
        let ack = r.on_data(&seg(0, false), SimTime::ZERO);
        assert_eq!(ack.seq, 3);
        assert_eq!(r.buffered(), 1);
        assert!(r.invariant_violation().is_none());
    }

    #[test]
    fn synack_is_idempotent() {
        let r = rx();
        let s1 = r.on_syn(SimTime::ZERO);
        let s2 = r.on_syn(SimTime::from_micros(5));
        assert_eq!(s1.kind, PktKind::SynAck);
        assert_eq!(s2.kind, PktKind::SynAck);
        assert_eq!(s1.src, HostId(9));
        assert_eq!(s1.dst, HostId(0));
    }

    proptest! {
        /// Delivering any permutation of segments 0..n exactly once ends
        /// with rcv_nxt == n, an empty buffer, and consistent counters.
        #[test]
        fn prop_any_arrival_order_delivers_all(n in 1u32..60, seed in 0u64..1000) {
            let mut order: Vec<u32> = (0..n).collect();
            let mut rng = tlb_engine::SimRng::new(seed);
            rng.shuffle(&mut order);
            let mut r = rx();
            for &s in &order {
                r.on_data(&seg(s, false), SimTime::ZERO);
            }
            prop_assert_eq!(r.delivered_segs(), n);
            prop_assert_eq!(r.buffered(), 0);
            prop_assert_eq!(r.stats().in_order + r.stats().out_of_order, n as u64);
            prop_assert_eq!(r.stats().total_data, n as u64);
        }

        /// With duplicates mixed in, rcv_nxt still converges and never
        /// exceeds the highest contiguous prefix.
        #[test]
        fn prop_duplicates_are_harmless(
            arrivals in proptest::collection::vec(0u32..20, 1..200)
        ) {
            let mut r = rx();
            let mut seen = std::collections::HashSet::new();
            for &s in &arrivals {
                r.on_data(&seg(s, false), SimTime::ZERO);
                seen.insert(s);
            }
            // rcv_nxt equals the length of the contiguous prefix present.
            let mut expect = 0;
            while seen.contains(&expect) {
                expect += 1;
            }
            prop_assert_eq!(r.delivered_segs(), expect);
        }

        /// The receiver invariants hold after any arrival pattern,
        /// including duplicates and gaps that never heal.
        #[test]
        fn prop_receiver_invariants_always_hold(
            arrivals in proptest::collection::vec(0u32..40, 1..300)
        ) {
            let mut r = rx();
            for &s in &arrivals {
                r.on_data(&seg(s, false), SimTime::ZERO);
            }
            prop_assert!(
                r.invariant_violation().is_none(),
                "{:?}",
                r.invariant_violation()
            );
        }
    }
}
