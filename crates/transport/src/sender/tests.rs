//! Sender state-machine tests: each drives the sender with synthetic
//! packets, no simulator needed. A closing section runs a loss-injecting
//! loopback "network" end to end against the real receiver.

use super::*;
use crate::config::DctcpConfig;
use crate::receiver::TcpReceiver;
use tlb_engine::SimRng;

fn cfg() -> TcpConfig {
    TcpConfig::dctcp_default()
}

fn sender(size: u64) -> TcpSender {
    TcpSender::new(cfg(), FlowId(1), HostId(0), HostId(9), size)
}

fn synack(now: SimTime) -> Packet {
    Packet::control(FlowId(1), HostId(9), HostId(0), PktKind::SynAck, 0, now)
}

fn ack(seq: u32, ece: bool, now: SimTime) -> Packet {
    let mut a = Packet::control(FlowId(1), HostId(9), HostId(0), PktKind::Ack, seq, now);
    a.flags.set(PktFlags::ECE, ece);
    a
}

fn us(n: u64) -> SimTime {
    SimTime::from_micros(n)
}

fn sent_data(out: &[SenderOutput]) -> Vec<Packet> {
    out.iter()
        .filter_map(|o| match o {
            SenderOutput::Send(p) if p.kind == PktKind::Data => Some(*p),
            _ => None,
        })
        .collect()
}

fn has_fin(out: &[SenderOutput]) -> bool {
    out.iter()
        .any(|o| matches!(o, SenderOutput::Send(p) if p.kind == PktKind::Fin))
}

#[test]
fn handshake_then_initial_window() {
    let mut s = sender(100 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    assert!(
        matches!(out[0], SenderOutput::Send(p) if p.kind == PktKind::Syn),
        "first output must be the SYN"
    );
    assert!(out
        .iter()
        .any(|o| matches!(o, SenderOutput::ArmTimer { .. })));
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    let data = sent_data(&out);
    assert_eq!(data.len(), 2, "IW = 2 (paper Eq. 3)");
    assert_eq!(data[0].seq, 0);
    assert_eq!(data[1].seq, 1);
    assert_eq!(data[0].payload_bytes, 1460);
    assert_eq!(data[0].wire_bytes, 1500);
}

#[test]
fn slow_start_doubles_per_rtt() {
    let mut s = sender(1000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    let mut next_expected_ack = 1u32;
    let mut window_sizes = vec![sent_data(&out).len()];
    // Ack everything outstanding, one "round" at a time, three rounds.
    let mut outstanding: u32 = window_sizes[0] as u32;
    let mut t = 200;
    for _ in 0..3 {
        let mut new_sends = 0;
        for _ in 0..outstanding {
            out.clear();
            s.on_packet(&ack(next_expected_ack, false, us(t)), us(t), &mut out);
            next_expected_ack += 1;
            new_sends += sent_data(&out).len();
            t += 1;
        }
        window_sizes.push(new_sends);
        outstanding = new_sends as u32;
        t += 100;
    }
    // 2 -> 4 -> 8 -> 16.
    assert_eq!(window_sizes, vec![2, 4, 8, 16]);
}

#[test]
fn receive_window_caps_flight() {
    let mut s = sender(10_000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    // Ack a huge range in single-segment steps, never letting flight drop:
    // total in-flight must never exceed rwnd (44 segments).
    let mut total_sent = sent_data(&out).len() as u32;
    for a in 1..=400u32 {
        out.clear();
        s.on_packet(
            &ack(a, false, us(100 + a as u64)),
            us(100 + a as u64),
            &mut out,
        );
        total_sent += sent_data(&out).len() as u32;
        let flight = total_sent - a;
        assert!(flight <= 44, "flight {flight} exceeds rwnd at ack {a}");
    }
    assert!(s.cwnd() >= 44.0, "cwnd should have grown past the cap");
}

#[test]
fn three_dup_acks_trigger_fast_retransmit() {
    let mut s = sender(1000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    // Grow the window a bit: ack 1..=8.
    for a in 1..=8 {
        out.clear();
        s.on_packet(
            &ack(a, false, us(200 + a as u64)),
            us(200 + a as u64),
            &mut out,
        );
    }
    assert!(!s.in_recovery());
    // Segment 8 lost: three dup ACKs for 8.
    for i in 0..3 {
        out.clear();
        s.on_packet(&ack(8, false, us(300 + i)), us(300 + i), &mut out);
        if i < 2 {
            assert!(!s.in_recovery());
            assert!(sent_data(&out).is_empty());
        }
    }
    assert!(s.in_recovery(), "third dup ACK enters recovery");
    let rtx = sent_data(&out);
    assert_eq!(rtx.len(), 1);
    assert_eq!(rtx[0].seq, 8, "retransmit the hole");
    assert!(rtx[0].flags.contains(PktFlags::RETX));
    assert_eq!(s.stats().fast_retransmits, 1);
    assert_eq!(s.stats().dup_acks, 3);
}

#[test]
fn full_ack_exits_recovery_at_ssthresh() {
    let mut s = sender(1000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    for a in 1..=8 {
        out.clear();
        s.on_packet(
            &ack(a, false, us(200 + a as u64)),
            us(200 + a as u64),
            &mut out,
        );
    }
    let cwnd_before = s.cwnd();
    for i in 0..3 {
        out.clear();
        s.on_packet(&ack(8, false, us(300 + i)), us(300 + i), &mut out);
    }
    assert!(s.in_recovery());
    // Full ACK: everything sent so far is covered.
    out.clear();
    let recover_point = 8 + (s.stats().data_sent as u32 - 8); // == snd_nxt
    s.on_packet(&ack(recover_point, false, us(400)), us(400), &mut out);
    assert!(!s.in_recovery());
    assert!(
        s.cwnd() < cwnd_before,
        "post-recovery cwnd {} must be below pre-loss {}",
        s.cwnd(),
        cwnd_before
    );
}

#[test]
fn partial_ack_retransmits_next_hole() {
    let mut s = sender(1000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    for a in 1..=8 {
        out.clear();
        s.on_packet(
            &ack(a, false, us(200 + a as u64)),
            us(200 + a as u64),
            &mut out,
        );
    }
    for i in 0..3 {
        out.clear();
        s.on_packet(&ack(8, false, us(300 + i)), us(300 + i), &mut out);
    }
    assert!(s.in_recovery());
    // Partial ACK to 10 (recover point is further out): hole at 10.
    out.clear();
    s.on_packet(&ack(10, false, us(400)), us(400), &mut out);
    assert!(s.in_recovery(), "partial ACK stays in recovery");
    let rtx = sent_data(&out);
    assert!(
        rtx.iter().any(|p| p.seq == 10),
        "retransmit next hole: {rtx:?}"
    );
    assert!(s.stats().retransmits >= 2);
}

#[test]
fn rto_collapses_window_and_doubles() {
    let mut s = sender(1000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    let rto0 = s.rto();
    // No ACKs ever arrive; fire the timer at its deadline.
    out.clear();
    let deadline = us(100) + rto0;
    s.on_timer(deadline, &mut out);
    assert_eq!(s.stats().timeouts, 1);
    let rtx = sent_data(&out);
    assert_eq!(rtx.len(), 1);
    assert_eq!(rtx[0].seq, 0, "retransmit snd_una");
    assert!(s.rto() > rto0, "RTO backs off");
    assert!(s.cwnd() <= 1.0 + f64::EPSILON);
    // Second timeout doubles again, capped at max_rto.
    out.clear();
    s.on_timer(deadline + s.rto(), &mut out);
    assert_eq!(s.stats().timeouts, 2);
    assert!(s.rto() <= cfg().max_rto);
}

#[test]
fn early_timer_fire_rearms_without_timeout() {
    let mut s = sender(10 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    // Progress: an ACK pushes the deadline forward.
    out.clear();
    s.on_packet(&ack(1, false, us(200)), us(200), &mut out);
    // The original timer (armed at handshake) fires "early".
    out.clear();
    s.on_timer(us(150), &mut out);
    assert_eq!(s.stats().timeouts, 0, "early fire is not a timeout");
    assert!(
        matches!(out[0], SenderOutput::ArmTimer { deadline } if deadline > us(150)),
        "must re-arm for the remaining time"
    );
}

#[test]
fn handshake_timeout_resends_syn() {
    let mut s = sender(1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_timer(us(0) + cfg().initial_rto, &mut out);
    let syns: Vec<_> = out
        .iter()
        .filter(|o| matches!(o, SenderOutput::Send(p) if p.kind == PktKind::Syn))
        .collect();
    assert_eq!(syns.len(), 1, "SYN retransmitted on timeout");
    assert_eq!(s.stats().timeouts, 1);
}

#[test]
fn dctcp_alpha_rises_and_cuts_window() {
    let mut s = sender(10_000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    assert_eq!(s.alpha(), 0.0);
    // Every ACK carries ECE across many windows: alpha must approach 1 and
    // cwnd must be repeatedly cut.
    let mut t = 200u64;
    for a in 1..=200u32 {
        out.clear();
        s.on_packet(&ack(a, true, us(t)), us(t), &mut out);
        t += 10;
    }
    assert!(s.alpha() > 0.5, "alpha {} should approach 1", s.alpha());
    assert!(s.stats().dctcp_cuts > 3);
    assert!(
        s.cwnd() < 10.0,
        "persistent marking must keep cwnd small, got {}",
        s.cwnd()
    );
}

#[test]
fn dctcp_no_marks_no_cuts() {
    let mut s = sender(10_000 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    for a in 1..=100u32 {
        out.clear();
        s.on_packet(
            &ack(a, false, us(200 + a as u64)),
            us(200 + a as u64),
            &mut out,
        );
    }
    assert_eq!(s.alpha(), 0.0);
    assert_eq!(s.stats().dctcp_cuts, 0);
}

#[test]
fn newreno_config_ignores_ece() {
    let mut s = TcpSender::new(
        TcpConfig::newreno_default(),
        FlowId(1),
        HostId(0),
        HostId(9),
        1000 * 1460,
    );
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    for a in 1..=50u32 {
        out.clear();
        s.on_packet(
            &ack(a, true, us(200 + a as u64)),
            us(200 + a as u64),
            &mut out,
        );
    }
    assert_eq!(s.stats().ece_acks, 0);
    assert_eq!(s.stats().dctcp_cuts, 0);
}

#[test]
fn completion_emits_fin_and_finished() {
    let mut s = sender(3 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    assert_eq!(sent_data(&out).len(), 2);
    out.clear();
    s.on_packet(&ack(2, false, us(200)), us(200), &mut out);
    assert_eq!(sent_data(&out).len(), 1); // third (last) segment
    assert!(sent_data(&out)[0].is_last_seg());
    out.clear();
    s.on_packet(&ack(3, false, us(300)), us(300), &mut out);
    assert!(s.is_finished());
    assert!(has_fin(&out));
    assert!(out.iter().any(|o| matches!(o, SenderOutput::Finished)));
    // Post-close packets are ignored.
    out.clear();
    s.on_packet(&ack(3, false, us(400)), us(400), &mut out);
    assert!(out.is_empty());
}

#[test]
fn short_final_segment_size() {
    // 3000 B = 2 x 1460 + 80.
    let mut s = sender(3000);
    assert_eq!(s.total_segs(), 3);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    out.clear();
    s.on_packet(&ack(2, false, us(200)), us(200), &mut out);
    let last = sent_data(&out)[0];
    assert_eq!(last.payload_bytes, 80);
    assert_eq!(last.wire_bytes, 80 + 40);
    assert!(last.is_last_seg());
}

#[test]
fn rtt_estimator_tracks_handshake_sample() {
    let mut s = sender(100 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    // Handshake RTT = 100 us; RTO clamps to min_rto (10 ms).
    s.on_packet(&synack(us(100)), us(100), &mut out);
    assert_eq!(s.rto(), cfg().min_rto);
}

#[test]
fn retransmitted_syn_takes_no_rtt_sample() {
    // Karn's rule on the handshake: after a SYN retransmission, a SYN-ACK
    // may have been elicited by the original SYN, so its RTT is ambiguous
    // and must not feed the estimator. Here the initial RTO is 10 ms, the
    // SYN is retransmitted at 11 ms, and a SYN-ACK (responding to the
    // first SYN) lands 1 ms later: the "sample" it would yield, 1 ms,
    // is an order of magnitude below the true 12 ms path RTT.
    let cfg = cfg();
    let mut s = sender(100 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_timer(cfg.initial_rto + us(1_000), &mut out);
    assert_eq!(s.stats().timeouts, 1);
    let backed_off = s.rto();
    assert_eq!(backed_off, cfg.initial_rto * 2, "timeout doubles the RTO");
    out.clear();
    let at = cfg.initial_rto + us(2_000);
    s.on_packet(&synack(at), at, &mut out);
    assert!(!sent_data(&out).is_empty(), "connection is established");
    assert_eq!(s.srtt(), None, "ambiguous handshake sample must be dropped");
    assert_eq!(
        s.rto(),
        backed_off,
        "RTO keeps its backoff, not a bogus 1 ms sample"
    );
}

#[test]
fn clean_handshake_still_seeds_rtt() {
    // The Karn fix must not suppress the legitimate first sample.
    let mut s = sender(100 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    assert_eq!(s.srtt(), Some(100e-6));
}

#[test]
fn invariants_hold_through_transfer_and_timeout() {
    let cfg = cfg();
    let mut s = sender(10 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    assert_eq!(s.invariant_violation(), None);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    assert!(s.timer_pending());
    assert!(s.timer_deadline() >= us(100));
    out.clear();
    s.on_packet(&ack(2, false, us(200)), us(200), &mut out);
    assert_eq!(s.snd_una(), 2);
    assert!(s.snd_nxt() >= s.snd_una());
    assert_eq!(s.invariant_violation(), None);
    out.clear();
    s.on_timer(us(200) + cfg.max_rto, &mut out);
    assert_eq!(s.invariant_violation(), None);
}

#[test]
fn old_acks_are_ignored() {
    let mut s = sender(100 * 1460);
    let mut out = Vec::new();
    s.start(us(0), &mut out);
    out.clear();
    s.on_packet(&synack(us(100)), us(100), &mut out);
    out.clear();
    s.on_packet(&ack(2, false, us(200)), us(200), &mut out);
    out.clear();
    // A stale ACK for 1 (< snd_una = 2) must do nothing.
    s.on_packet(&ack(1, false, us(300)), us(300), &mut out);
    assert!(sent_data(&out).is_empty());
    assert_eq!(s.stats().dup_acks, 0);
}

#[test]
#[should_panic(expected = "zero-length flow")]
fn zero_size_flow_rejected() {
    let _ = sender(0);
}

// ---------------------------------------------------------------------
// Loopback end-to-end: the real sender against the real receiver over a
// lossy instant channel, driven until completion.
// ---------------------------------------------------------------------

/// Run a complete transfer through a channel dropping `loss_pct` percent of
/// data packets. Returns (sender, receiver) after completion.
fn run_lossy_transfer(size: u64, loss_pct: u32, seed: u64) -> (TcpSender, TcpReceiver) {
    let mut s = TcpSender::new(
        TcpConfig {
            dctcp: Some(DctcpConfig::default()),
            ..TcpConfig::dctcp_default()
        },
        FlowId(1),
        HostId(0),
        HostId(9),
        size,
    );
    let mut r = TcpReceiver::new(FlowId(1), HostId(9), HostId(0));
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    let mut pending: Vec<SenderOutput> = Vec::new();
    let mut deadline: Option<SimTime> = None;

    s.start(now, &mut out);
    pending.append(&mut out);

    let mut steps = 0u64;
    while !s.is_finished() {
        steps += 1;
        assert!(steps < 2_000_000, "transfer did not converge");
        if pending.is_empty() {
            // Nothing in flight produces progress only via the timer.
            let d = deadline.expect("stalled with no timer armed");
            now = now.max(d);
            s.on_timer(now, &mut out);
            pending.append(&mut out);
            continue;
        }
        let item = pending.remove(0);
        match item {
            SenderOutput::ArmTimer { deadline: d } => {
                deadline = Some(d);
            }
            SenderOutput::Finished => {}
            SenderOutput::Send(pkt) => {
                now += SimTime::from_micros(10);
                match pkt.kind {
                    PktKind::Syn => {
                        let sa = r.on_syn(now);
                        s.on_packet(&sa, now, &mut out);
                        pending.append(&mut out);
                    }
                    PktKind::Data => {
                        if rng.gen_range(100) < loss_pct as u64 {
                            continue; // dropped
                        }
                        let a = r.on_data(&pkt, now);
                        s.on_packet(&a, now, &mut out);
                        pending.append(&mut out);
                    }
                    PktKind::Fin => {}
                    _ => unreachable!("sender only emits SYN/DATA/FIN"),
                }
            }
        }
    }
    (s, r)
}

#[test]
fn loopback_lossless_transfer_completes() {
    let segs = 500u64;
    let (s, r) = run_lossy_transfer(segs * 1460, 0, 1);
    assert_eq!(r.delivered_segs() as u64, segs);
    assert_eq!(s.stats().retransmits, 0);
    assert_eq!(s.stats().timeouts, 0);
    assert_eq!(s.stats().data_sent, segs);
}

#[test]
fn loopback_survives_5pct_loss() {
    let segs = 400u64;
    let (s, r) = run_lossy_transfer(segs * 1460, 5, 7);
    assert_eq!(
        r.delivered_segs() as u64,
        segs,
        "all data delivered despite loss"
    );
    assert!(
        s.stats().retransmits > 0,
        "losses must have caused retransmits"
    );
}

#[test]
fn loopback_survives_heavy_loss() {
    let segs = 120u64;
    let (s, r) = run_lossy_transfer(segs * 1460, 25, 11);
    assert_eq!(r.delivered_segs() as u64, segs);
    assert!(s.stats().timeouts + s.stats().fast_retransmits > 0);
}
