//! Recycling pool for receiver out-of-order buffers.
//!
//! Every flow's receiver needs an out-of-order buffer bounded by the
//! sender's window (`rwnd_segs` entries). Without pooling, each of the
//! simulator's potentially hundreds of thousands of flows allocates its
//! own and drops it at teardown — per-flow heap churn that the
//! zero-allocation steady-state gate forbids. [`OooPool`] keeps torn-down
//! buffers and hands them to new flows: after the pool's high-water mark
//! of concurrently open flows is reached, connection setup stops touching
//! the allocator entirely.

/// A stack of reusable `Vec<u32>` buffers for receiver out-of-order
/// queues. Returned buffers keep their capacity; handed-out buffers are
/// empty and pre-sized to at least the requested window.
#[derive(Debug, Default)]
pub struct OooPool {
    bufs: Vec<Vec<u32>>,
    /// Buffers served from the free stack (steady state).
    hits: u64,
    /// Buffers that had to be freshly allocated (pool warmup).
    misses: u64,
}

impl OooPool {
    /// An empty pool that has not allocated.
    pub fn new() -> OooPool {
        OooPool::default()
    }

    /// A pool whose free stack can hold `cap` parked buffers before the
    /// stack itself reallocates.
    pub fn with_capacity(cap: usize) -> OooPool {
        OooPool {
            bufs: Vec::with_capacity(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Hand out an empty buffer with capacity ≥ `min_capacity`, recycling
    /// a parked one when available.
    pub fn get(&mut self, min_capacity: usize) -> Vec<u32> {
        match self.bufs.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(min_capacity)
            }
        }
    }

    /// Park a buffer for reuse. Capacity-0 buffers are ignored — that is
    /// what an already-reclaimed receiver hands back (teardown is
    /// idempotent), and parking them would serve useless buffers later.
    pub fn put(&mut self, buf: Vec<u32>) {
        if buf.capacity() > 0 {
            self.bufs.push(buf);
        }
    }

    /// Buffers currently parked.
    pub fn parked(&self) -> usize {
        self.bufs.len()
    }

    /// `(hits, misses)`: gets served from the pool vs. freshly allocated.
    /// In a zero-allocation steady state, misses stop growing once the
    /// concurrent-flow high-water mark is reached.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_instead_of_allocating() {
        let mut p = OooPool::new();
        let a = p.get(44);
        assert!(a.capacity() >= 44);
        p.put(a);
        assert_eq!(p.parked(), 1);
        let b = p.get(44);
        assert!(b.is_empty());
        assert!(b.capacity() >= 44);
        assert_eq!(p.parked(), 0);
        assert_eq!(p.stats(), (1, 1), "second get must be a pool hit");
    }

    #[test]
    fn dirty_buffers_come_back_clean() {
        let mut p = OooPool::new();
        let mut a = p.get(8);
        a.extend_from_slice(&[1, 2, 3]);
        p.put(a);
        let b = p.get(8);
        assert!(b.is_empty());
    }

    #[test]
    fn capacity_zero_put_is_ignored() {
        let mut p = OooPool::new();
        p.put(Vec::new());
        assert_eq!(p.parked(), 0);
    }

    #[test]
    fn undersized_recycled_buffer_is_regrown() {
        let mut p = OooPool::new();
        p.put(Vec::with_capacity(4));
        let b = p.get(64);
        assert!(b.capacity() >= 64);
    }

    #[test]
    fn pool_drain_on_flow_teardown() {
        use crate::receiver::TcpReceiver;
        use tlb_net::{FlowId, HostId};
        // Simulate the simnet lifecycle: N concurrent flows draw from the
        // pool, tear down, and return their buffers; the next N flows are
        // all pool hits.
        let mut p = OooPool::with_capacity(4);
        let mut rxs: Vec<TcpReceiver> = (0..4)
            .map(|i| TcpReceiver::with_ooo_buf(FlowId(i), HostId(1), HostId(0), p.get(44)))
            .collect();
        assert_eq!(p.stats(), (0, 4));
        for r in &mut rxs {
            p.put(r.take_ooo_buf());
        }
        assert_eq!(p.parked(), 4);
        let _rxs2: Vec<TcpReceiver> = (0..4)
            .map(|i| TcpReceiver::with_ooo_buf(FlowId(i), HostId(1), HostId(0), p.get(44)))
            .collect();
        assert_eq!(p.stats(), (4, 4), "second generation must be all hits");
    }
}
