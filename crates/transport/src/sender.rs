//! The sending endpoint: slow start, congestion avoidance, NewReno fast
//! recovery, RTO, the 64 KB receive-window cap, and DCTCP window control.

use crate::config::TcpConfig;
use tlb_engine::SimTime;
use tlb_net::{packet::PktFlags, FlowId, HostId, Packet, PktKind};

/// Actions the sender asks the simulation driver to perform. The sender
/// never touches the event queue itself.
#[derive(Clone, Copy, Debug)]
pub enum SenderOutput {
    /// Transmit this packet (enqueue on the host NIC).
    Send(Packet),
    /// Ensure a retransmission-timer event fires at `deadline`. The driver
    /// schedules a timer event; on firing it calls [`TcpSender::on_timer`],
    /// which re-arms if the deadline has since moved.
    ArmTimer { deadline: SimTime },
    /// All data has been cumulatively acknowledged; a FIN was just emitted.
    Finished,
}

/// Sender-side counters consumed by the evaluation figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// First transmissions of data segments.
    pub data_sent: u64,
    /// All retransmissions (fast + timeout + recovery partial-ACK).
    pub retransmits: u64,
    /// Fast-retransmit events (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Duplicate ACKs received — the Fig. 3(b) metric.
    pub dup_acks: u64,
    /// Cumulatively acknowledged segments.
    pub acked_segs: u64,
    /// ACKs carrying an ECN echo.
    pub ece_acks: u64,
    /// DCTCP window reductions applied.
    pub dctcp_cuts: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// SYN sent, waiting for SYN-ACK.
    Handshake,
    /// Transferring data.
    Established,
    /// Hybrid fidelity only: the packet-mode prefix is fully acknowledged
    /// and the rest of the flow is in flight as a fluid transfer. The
    /// sender is quiescent (no retransmissions, no FIN) until the driver
    /// reports the fluid tail done ([`TcpSender::fluid_done`]) or reroutes
    /// the flow back to packets ([`TcpSender::fluid_demote`]).
    FluidWait,
    /// All data acknowledged; FIN emitted.
    Closed,
}

/// One flow's sender. Sequence numbers count whole segments (each `MSS`
/// bytes of payload except possibly the last).
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    flow: FlowId,
    host: HostId,
    peer: HostId,
    total_segs: u32,
    last_payload: u32,
    /// Hybrid fidelity: bytes beyond the truncated packet prefix are being
    /// delivered by the fluid tier. While set, finishing the prefix parks
    /// the sender in [`Phase::FluidWait`] instead of emitting the FIN.
    fluid_tail: bool,

    phase: Phase,
    snd_una: u32,
    snd_nxt: u32,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u32,

    // Retransmission timer (lazy re-arm: at most one pending event).
    timer_pending: bool,
    deadline: SimTime,
    /// When the pending timer event was armed; `deadline` may only move
    /// forward from here while `timer_pending` (audit invariant).
    armed_at: SimTime,
    rto: SimTime,
    srtt: Option<f64>,
    rttvar: f64,
    /// Karn's algorithm: one outstanding RTT sample `(covers_seq, sent_at)`;
    /// valid only if nothing was retransmitted since it was taken.
    rtt_sample: Option<(u32, SimTime)>,
    syn_sent_at: Option<SimTime>,

    // DCTCP observation window.
    alpha: f64,
    ce_cnt: u64,
    ack_cnt: u64,
    obs_window_end: u32,

    stats: SenderStats,
}

impl TcpSender {
    /// Create a sender for `size_bytes` of payload from `host` to `peer`.
    pub fn new(
        cfg: TcpConfig,
        flow: FlowId,
        host: HostId,
        peer: HostId,
        size_bytes: u64,
    ) -> TcpSender {
        cfg.validate().expect("invalid TCP configuration");
        assert!(size_bytes > 0, "zero-length flow");
        let mss = cfg.mss as u64;
        let total_segs = size_bytes.div_ceil(mss) as u32;
        let last_payload = (size_bytes - (total_segs as u64 - 1) * mss) as u32;
        TcpSender {
            ssthresh: cfg.rwnd_segs() as f64,
            cwnd: cfg.init_cwnd,
            rto: cfg.initial_rto,
            cfg,
            flow,
            host,
            peer,
            total_segs,
            last_payload,
            fluid_tail: false,
            phase: Phase::Handshake,
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            timer_pending: false,
            deadline: SimTime::ZERO,
            armed_at: SimTime::ZERO,
            srtt: None,
            rttvar: 0.0,
            rtt_sample: None,
            syn_sent_at: None,
            alpha: 0.0,
            ce_cnt: 0,
            ack_cnt: 0,
            obs_window_end: 0,
            stats: SenderStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// Total segments this flow will transfer.
    pub fn total_segs(&self) -> u32 {
        self.total_segs
    }

    /// Highest cumulatively acknowledged segment.
    pub fn acked_segs(&self) -> u32 {
        self.snd_una
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current DCTCP marked-fraction estimate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimTime {
        self.rto
    }

    /// True once every byte has been acknowledged.
    pub fn is_finished(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// True while the flow's tail is being delivered by the fluid tier
    /// (hybrid fidelity only).
    pub fn in_fluid(&self) -> bool {
        self.fluid_tail
    }

    /// True once the handshake completed and while unacked packet-path
    /// data remains (the only phase [`TcpSender::hybrid_truncate`] accepts).
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Established
    }

    /// Total payload bytes the packet path is responsible for under the
    /// current segment plan (shrinks at [`TcpSender::hybrid_truncate`],
    /// grows back at [`TcpSender::fluid_demote`]).
    pub fn payload_bytes_total(&self) -> u64 {
        (self.total_segs as u64 - 1) * self.cfg.mss as u64 + self.last_payload as u64
    }

    /// True while in NewReno fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Oldest unacknowledged segment (alias of [`TcpSender::acked_segs`]
    /// under its RFC name, for invariant checks).
    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    /// Next segment to be sent for the first time.
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Smoothed RTT estimate in seconds, once a valid sample exists.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// True while a retransmission-timer event is outstanding.
    pub fn timer_pending(&self) -> bool {
        self.timer_pending
    }

    /// The pending timer's deadline (meaningful while
    /// [`TcpSender::timer_pending`]).
    pub fn timer_deadline(&self) -> SimTime {
        self.deadline
    }

    /// Check the sender's structural invariants; returns a description of
    /// the first violated one. The simulator's conservation audit calls
    /// this for every live sender at end of run.
    pub fn invariant_violation(&self) -> Option<String> {
        if self.snd_una > self.snd_nxt {
            return Some(format!(
                "snd_una {} > snd_nxt {}",
                self.snd_una, self.snd_nxt
            ));
        }
        if self.cwnd < 1.0 {
            return Some(format!("cwnd {} < 1 segment", self.cwnd));
        }
        if self.timer_pending && self.deadline < self.armed_at {
            return Some(format!(
                "pending timer deadline {} precedes its arming time {}",
                self.deadline, self.armed_at
            ));
        }
        None
    }

    /// Begin the connection: emit the SYN and arm the handshake timer.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        debug_assert_eq!(self.phase, Phase::Handshake);
        let syn = Packet::control(self.flow, self.host, self.peer, PktKind::Syn, 0, now);
        self.syn_sent_at = Some(now);
        out.push(SenderOutput::Send(syn));
        self.arm(now, out);
    }

    /// Deliver an incoming packet (SYN-ACK or ACK) to the sender.
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime, out: &mut Vec<SenderOutput>) {
        debug_assert_eq!(pkt.flow, self.flow);
        match (self.phase, pkt.kind) {
            (Phase::Handshake, PktKind::SynAck) => {
                self.phase = Phase::Established;
                if let Some(t0) = self.syn_sent_at.take() {
                    self.rtt_update(now.saturating_sub(t0));
                }
                self.send_available(now, out);
                self.arm(now, out);
            }
            (Phase::Established, PktKind::Ack) => {
                self.on_ack(pkt.seq, pkt.ece(), now, out);
            }
            // Stray packets (late SYN-ACKs, ACKs after close) are ignored.
            _ => {}
        }
    }

    /// The retransmission timer fired.
    pub fn on_timer(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        self.timer_pending = false;
        if self.phase == Phase::Closed || self.phase == Phase::FluidWait {
            // FluidWait: the prefix is fully acknowledged, so there is
            // nothing to retransmit; the fluid tier owns the rest.
            return;
        }
        if now < self.deadline {
            // ACKs pushed the deadline forward since this event was
            // scheduled: re-arm for the remainder.
            out.push(SenderOutput::ArmTimer {
                deadline: self.deadline,
            });
            self.timer_pending = true;
            self.armed_at = now;
            return;
        }
        self.stats.timeouts += 1;
        self.rto = (self.rto * 2).min(self.cfg.max_rto);
        match self.phase {
            Phase::Handshake => {
                let syn = Packet::control(self.flow, self.host, self.peer, PktKind::Syn, 0, now);
                // Karn's rule applies to the handshake too: once the SYN is
                // retransmitted, a SYN-ACK can't be attributed to either
                // copy, so no RTT sample may be taken from it. (Re-stamping
                // `syn_sent_at = Some(now)` here would credit a SYN-ACK
                // elicited by the *original* SYN with a falsely small RTT.)
                self.syn_sent_at = None;
                out.push(SenderOutput::Send(syn));
            }
            Phase::Established => {
                // RFC 5681 timeout response: collapse to one segment and
                // retransmit the oldest outstanding data.
                let flight = (self.snd_nxt - self.snd_una).max(1) as f64;
                self.ssthresh = (flight / 2.0).max(2.0);
                self.cwnd = 1.0;
                self.dup_acks = 0;
                self.in_recovery = false;
                self.retransmit(self.snd_una, now, out);
            }
            Phase::Closed | Phase::FluidWait => unreachable!(),
        }
        self.arm(now, out);
    }

    // ---- hybrid fidelity (fluid tail) ------------------------------------

    /// Hand every not-yet-sent byte to the fluid tier: truncate the
    /// segment plan at `snd_nxt` so the in-flight packet prefix drains (and
    /// retransmits) normally, and return the tail bytes the fluid model
    /// now owns. The FIN is deferred until [`TcpSender::fluid_done`] (or
    /// the flow re-enters packet mode via [`TcpSender::fluid_demote`]), so
    /// SYN/FIN handshakes stay packet-level in both fidelities.
    ///
    /// Callable once per flow, while established with unsent data; every
    /// segment in the remaining prefix carries a full MSS payload (the
    /// original short tail segment moved to the fluid side).
    pub fn hybrid_truncate(&mut self) -> u64 {
        assert_eq!(
            self.phase,
            Phase::Established,
            "truncate needs an open flow"
        );
        assert!(!self.fluid_tail, "flow already migrated to the fluid tier");
        assert!(
            self.snd_nxt < self.total_segs,
            "truncate with nothing unsent"
        );
        let unsent = (self.total_segs - self.snd_nxt) as u64;
        let tail = (unsent - 1) * self.cfg.mss as u64 + self.last_payload as u64;
        self.total_segs = self.snd_nxt;
        self.last_payload = self.cfg.mss;
        self.fluid_tail = true;
        if self.snd_una >= self.total_segs {
            // The surviving prefix is already fully acknowledged: go
            // quiescent immediately (no ACKs are due to wake us).
            self.phase = Phase::FluidWait;
        }
        tail
    }

    /// The fluid tier delivered the flow's tail. If the packet prefix is
    /// already acknowledged this emits the FIN now; otherwise the FIN
    /// follows naturally when the last prefix ACK arrives.
    pub fn fluid_done(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        debug_assert!(self.fluid_tail, "fluid_done without a fluid tail");
        self.fluid_tail = false;
        if self.phase == Phase::FluidWait {
            self.finish(now, out);
        }
    }

    /// A failure broke the fluid flow's path: re-enter packet mode with
    /// `rem_bytes` still to deliver. The tail bytes re-join the segment
    /// plan after the prefix; if the prefix was already drained, sending
    /// resumes immediately (the load balancer reroutes the new packets
    /// around the failure like any others). Returns the segments added.
    pub fn fluid_demote(
        &mut self,
        rem_bytes: u64,
        now: SimTime,
        out: &mut Vec<SenderOutput>,
    ) -> u32 {
        debug_assert!(self.fluid_tail, "demote without a fluid tail");
        debug_assert!(rem_bytes > 0, "demote with nothing left to send");
        self.fluid_tail = false;
        let add = rem_bytes.div_ceil(self.cfg.mss as u64) as u32;
        self.last_payload = (rem_bytes - (add as u64 - 1) * self.cfg.mss as u64) as u32;
        self.total_segs += add;
        if self.phase == Phase::FluidWait {
            self.phase = Phase::Established;
        }
        if self.phase == Phase::Established {
            self.send_available(now, out);
            self.deadline = now + self.rto;
            self.arm(now, out);
        }
        add
    }

    // ---- internals -------------------------------------------------------

    fn on_ack(&mut self, ack: u32, ece: bool, now: SimTime, out: &mut Vec<SenderOutput>) {
        if ack > self.snd_nxt {
            // Acknowledgment for data never sent (corrupted or forged):
            // RFC 9293 says drop it.
            return;
        }
        if self.cfg.dctcp.is_some() {
            self.ack_cnt += 1;
            if ece {
                self.ce_cnt += 1;
                self.stats.ece_acks += 1;
            }
        }

        if ack > self.snd_una {
            let newly = (ack - self.snd_una) as u64;
            self.stats.acked_segs += newly;
            // Karn: only un-retransmitted samples survive to here.
            if let Some((covers, sent_at)) = self.rtt_sample {
                if ack > covers {
                    self.rtt_update(now.saturating_sub(sent_at));
                    self.rtt_sample = None;
                }
            }
            self.snd_una = ack;

            if self.in_recovery {
                if ack >= self.recover {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.cwnd = self.ssthresh;
                    self.in_recovery = false;
                    self.dup_acks = 0;
                } else {
                    // NewReno partial ACK: the next hole is lost too.
                    self.retransmit(self.snd_una, now, out);
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                }
            } else {
                self.dup_acks = 0;
                self.dctcp_window_check(ack);
                if self.cwnd < self.ssthresh {
                    // Slow start: one segment per ACKed segment.
                    self.cwnd += newly as f64;
                } else {
                    // Congestion avoidance: ~one segment per RTT.
                    self.cwnd += newly as f64 / self.cwnd;
                }
            }

            if self.snd_una >= self.total_segs {
                if self.fluid_tail {
                    // Prefix drained but the fluid tail is still in
                    // flight: go quiescent, FIN waits for fluid_done.
                    self.phase = Phase::FluidWait;
                    return;
                }
                self.finish(now, out);
                return;
            }
            self.send_available(now, out);
            self.deadline = now + self.rto; // RTO restarts on progress
            self.arm(now, out);
        } else if ack == self.snd_una && self.snd_nxt > self.snd_una {
            // Duplicate ACK.
            self.stats.dup_acks += 1;
            self.dup_acks += 1;
            if self.in_recovery {
                // Window inflation keeps the pipe full during recovery.
                self.cwnd += 1.0;
                self.send_available(now, out);
            } else if self.dup_acks == self.cfg.dupack_threshold {
                self.stats.fast_retransmits += 1;
                let flight = (self.snd_nxt - self.snd_una) as f64;
                self.ssthresh = (flight / 2.0).max(2.0);
                self.recover = self.snd_nxt;
                self.in_recovery = true;
                self.cwnd = self.ssthresh + self.cfg.dupack_threshold as f64;
                self.retransmit(self.snd_una, now, out);
                self.deadline = now + self.rto;
                self.arm(now, out);
            }
        }
        // ack < snd_una: old ACK, ignore.
    }

    /// DCTCP: once per observation window, fold the marked fraction into α
    /// and, if the window saw any marks, cut cwnd by α/2 (entering
    /// congestion avoidance at the new size).
    fn dctcp_window_check(&mut self, ack: u32) {
        let Some(dctcp) = self.cfg.dctcp else { return };
        if ack < self.obs_window_end {
            return;
        }
        if self.ack_cnt > 0 {
            let f = self.ce_cnt as f64 / self.ack_cnt as f64;
            self.alpha = (1.0 - dctcp.g) * self.alpha + dctcp.g * f;
            if self.ce_cnt > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(1.0);
                self.ssthresh = self.cwnd.max(2.0);
                self.stats.dctcp_cuts += 1;
            }
        }
        self.ce_cnt = 0;
        self.ack_cnt = 0;
        self.obs_window_end = self.snd_nxt;
    }

    fn effective_window(&self) -> u32 {
        let w = self.cwnd.floor().max(1.0) as u32;
        w.min(self.cfg.rwnd_segs())
    }

    fn payload_of(&self, seq: u32) -> u32 {
        if seq + 1 == self.total_segs {
            self.last_payload
        } else {
            self.cfg.mss
        }
    }

    fn send_available(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        let wnd = self.effective_window();
        while self.snd_nxt < self.total_segs && self.snd_nxt - self.snd_una < wnd {
            let seq = self.snd_nxt;
            let mut pkt = Packet::data(
                self.flow,
                self.host,
                self.peer,
                seq,
                self.payload_of(seq),
                self.cfg.header_bytes,
                now,
            );
            if seq + 1 == self.total_segs {
                pkt.flags.set(PktFlags::LAST_SEG, true);
            }
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((seq, now));
            }
            out.push(SenderOutput::Send(pkt));
            self.snd_nxt += 1;
            self.stats.data_sent += 1;
        }
    }

    fn retransmit(&mut self, seq: u32, now: SimTime, out: &mut Vec<SenderOutput>) {
        let mut pkt = Packet::data(
            self.flow,
            self.host,
            self.peer,
            seq,
            self.payload_of(seq),
            self.cfg.header_bytes,
            now,
        );
        pkt.flags.set(PktFlags::RETX, true);
        if seq + 1 == self.total_segs {
            pkt.flags.set(PktFlags::LAST_SEG, true);
        }
        out.push(SenderOutput::Send(pkt));
        self.stats.retransmits += 1;
        // Karn's rule: outstanding samples are ambiguous now.
        self.rtt_sample = None;
    }

    fn finish(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        self.phase = Phase::Closed;
        let fin = Packet::control(
            self.flow,
            self.host,
            self.peer,
            PktKind::Fin,
            self.total_segs,
            now,
        );
        out.push(SenderOutput::Send(fin));
        out.push(SenderOutput::Finished);
    }

    fn rtt_update(&mut self, sample: SimTime) {
        let s = sample.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(s);
                self.rttvar = s / 2.0;
            }
            Some(r) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (r - s).abs();
                self.srtt = Some(0.875 * r + 0.125 * s);
            }
        }
        let rto = SimTime::from_secs_f64(self.srtt.unwrap() + 4.0 * self.rttvar);
        self.rto = rto.max(self.cfg.min_rto).min(self.cfg.max_rto);
    }

    fn arm(&mut self, now: SimTime, out: &mut Vec<SenderOutput>) {
        let desired = now + self.rto;
        if desired > self.deadline {
            self.deadline = desired;
        }
        if !self.timer_pending {
            out.push(SenderOutput::ArmTimer {
                deadline: self.deadline,
            });
            self.timer_pending = true;
            self.armed_at = now;
        }
    }
}

#[cfg(test)]
mod tests;
