//! One flow's specification, as produced by the generators.

use tlb_engine::SimTime;
use tlb_net::{FlowId, HostId};

/// Everything the simulator needs to launch one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Dense id, assigned in arrival order.
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// Absolute start time.
    pub start: SimTime,
    /// Completion deadline as a duration from `start` (the paper assigns
    /// deadlines to short flows only).
    pub deadline: Option<SimTime>,
}

impl FlowSpec {
    /// True when this flow counts as short under `threshold` bytes.
    pub fn is_short(&self, threshold: u64) -> bool {
        self.size_bytes < threshold
    }
}

/// Sanity-check a batch of specs: dense ids from 0, src != dst, positive
/// sizes, sorted by start time. Generators call this in debug builds; tests
/// call it directly.
pub fn validate_specs(specs: &[FlowSpec]) -> Result<(), String> {
    for (i, s) in specs.iter().enumerate() {
        if s.id.index() != i {
            return Err(format!("non-dense flow id at {i}: {}", s.id));
        }
        if s.src == s.dst {
            return Err(format!("flow {} sends to itself", s.id));
        }
        if s.size_bytes == 0 {
            return Err(format!("flow {} has zero size", s.id));
        }
        if i > 0 && specs[i - 1].start > s.start {
            return Err(format!("flows not sorted by start at {i}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: HostId(0),
            dst: HostId(1),
            size_bytes: 1000,
            start: SimTime::from_micros(start_us),
            deadline: None,
        }
    }

    #[test]
    fn is_short_threshold() {
        let mut s = spec(0, 0);
        s.size_bytes = 99_999;
        assert!(s.is_short(100_000));
        s.size_bytes = 100_000;
        assert!(!s.is_short(100_000));
    }

    #[test]
    fn validate_accepts_good_batch() {
        let specs = vec![spec(0, 0), spec(1, 5), spec(2, 5)];
        validate_specs(&specs).unwrap();
    }

    #[test]
    fn validate_rejects_bad_batches() {
        // Non-dense ids.
        assert!(validate_specs(&[spec(1, 0)]).is_err());
        // Unsorted starts.
        assert!(validate_specs(&[spec(0, 10), spec(1, 5)]).is_err());
        // Self-send.
        let mut s = spec(0, 0);
        s.dst = s.src;
        assert!(validate_specs(&[s]).is_err());
        // Zero size.
        let mut z = spec(0, 0);
        z.size_bytes = 0;
        assert!(validate_specs(&[z]).is_err());
    }
}
