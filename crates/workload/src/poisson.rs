//! Large-scale Poisson traffic (§6.2): random host pairs, heavy-tailed
//! sizes, load expressed as a fraction of aggregate host access capacity.

use crate::sizes::SizeDist;
use crate::spec::FlowSpec;
use tlb_engine::{SimRng, SimTime};
use tlb_net::{Fabric, FlowId, HostId};

/// Poisson flow generator over a leaf-spine fabric.
///
/// The flow arrival rate is set so the *offered load* equals
/// `load × n_hosts × host_capacity` bytes/s:
/// `λ = load · C_host · n_hosts / E[size]` flows per second — the standard
/// convention of the CONGA/LetFlow evaluations the paper follows.
pub struct PoissonWorkload<'a, D: SizeDist> {
    /// Target fractional load (the paper sweeps 0.1–0.8).
    pub load: f64,
    /// Flow-size distribution (web-search / data-mining).
    pub dist: &'a D,
    /// Traffic is generated over `[0, duration]`.
    pub duration: SimTime,
    /// Deadline range for short flows.
    pub deadline_lo: SimTime,
    /// Upper deadline bound.
    pub deadline_hi: SimTime,
    /// Flows below this size receive deadlines (paper: 100 KB).
    pub short_threshold: u64,
    /// Restrict to inter-rack pairs (the multipath-relevant traffic).
    pub inter_leaf_only: bool,
}

impl<'a, D: SizeDist> PoissonWorkload<'a, D> {
    /// Flow arrival rate (flows/second) for this load on `topo`:
    /// `λ = load · C_host · n_hosts / E[size]`. Single source of truth for
    /// both [`Self::expected_flows`] and [`Self::generate`].
    fn arrival_rate(&self, topo: &Fabric) -> f64 {
        let c_host = topo.host_link().bytes_per_sec as f64;
        self.load * c_host * topo.n_hosts() as f64 / self.dist.mean()
    }

    /// The expected number of flows this configuration generates.
    pub fn expected_flows(&self, topo: &Fabric) -> f64 {
        self.arrival_rate(topo) * self.duration.as_secs_f64()
    }

    /// Generate the flow set.
    pub fn generate(&self, topo: &Fabric, rng: &mut SimRng) -> Vec<FlowSpec> {
        assert!(self.load > 0.0 && self.load <= 1.5, "unreasonable load");
        assert!(
            !self.inter_leaf_only || topo.n_leaves() >= 2,
            "inter-leaf traffic needs at least 2 leaves"
        );
        // Guard the deadline window up front: sampled as
        // `lo + U[0, hi-lo]` in nanoseconds, so an inverted window would
        // otherwise surface as a baffling u64 subtraction overflow below.
        assert!(
            self.deadline_hi >= self.deadline_lo,
            "PoissonWorkload: deadline_hi ({:?}) must be >= deadline_lo ({:?})",
            self.deadline_hi,
            self.deadline_lo
        );
        let rate = self.arrival_rate(topo);
        let mean_gap = 1.0 / rate;
        let horizon = self.duration.as_secs_f64();
        let n_hosts = topo.n_hosts();

        let mut specs = Vec::with_capacity((rate * horizon * 1.2) as usize + 16);
        let mut t = rng.exp(mean_gap);
        while t < horizon {
            let src = HostId(rng.index(n_hosts) as u32);
            let dst = loop {
                let d = HostId(rng.index(n_hosts) as u32);
                if d == src {
                    continue;
                }
                if self.inter_leaf_only && topo.leaf_of(d) == topo.leaf_of(src) {
                    continue;
                }
                break d;
            };
            let size = self.dist.sample(rng);
            let deadline = if size < self.short_threshold {
                let span = self.deadline_hi.as_nanos() - self.deadline_lo.as_nanos();
                Some(SimTime::from_nanos(
                    self.deadline_lo.as_nanos() + rng.gen_range(span + 1),
                ))
            } else {
                None
            };
            specs.push(FlowSpec {
                id: FlowId(0),
                src,
                dst,
                size_bytes: size,
                start: SimTime::from_secs_f64(t),
                deadline,
            });
            t += rng.exp(mean_gap);
        }
        crate::mix::finalize(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::{web_search, FixedBytes};
    use crate::spec::validate_specs;
    use tlb_net::LeafSpineBuilder;

    fn topo() -> Fabric {
        LeafSpineBuilder::new(4, 4, 4).build().into()
    }

    fn workload(dist: &impl SizeDist, load: f64) -> PoissonWorkload<'_, impl SizeDist + '_> {
        PoissonWorkload {
            load,
            dist,
            duration: SimTime::from_millis(100),
            deadline_lo: SimTime::from_millis(5),
            deadline_hi: SimTime::from_millis(25),
            short_threshold: 100_000,
            inter_leaf_only: true,
        }
    }

    #[test]
    fn flow_count_tracks_load() {
        let d = FixedBytes(1_000_000);
        let mut rng = SimRng::new(1);
        let w = workload(&d, 0.4);
        let specs = w.generate(&topo(), &mut rng);
        validate_specs(&specs).unwrap();
        let expected = w.expected_flows(&topo());
        let got = specs.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.25,
            "got {got}, expected ~{expected}"
        );
        // Double the load -> roughly double the flows.
        let specs2 = workload(&d, 0.8).generate(&topo(), &mut SimRng::new(1));
        assert!(specs2.len() as f64 > got * 1.5);
    }

    #[test]
    fn offered_bytes_match_load() {
        let d = web_search();
        let mut rng = SimRng::new(2);
        let t = topo();
        let w = workload(&d, 0.5);
        let specs = w.generate(&t, &mut rng);
        let bytes: u64 = specs.iter().map(|s| s.size_bytes).sum();
        let capacity =
            t.host_link().bytes_per_sec as f64 * t.n_hosts() as f64 * w.duration.as_secs_f64();
        let achieved = bytes as f64 / capacity;
        // Heavy-tailed sizes make this noisy; just require the right scale.
        assert!(
            (0.2..=0.9).contains(&achieved),
            "offered load {achieved} far from 0.5"
        );
    }

    #[test]
    fn inter_leaf_constraint_holds() {
        let d = web_search();
        let mut rng = SimRng::new(3);
        let t = topo();
        let specs = workload(&d, 0.3).generate(&t, &mut rng);
        for s in &specs {
            assert_ne!(t.leaf_of(s.src), t.leaf_of(s.dst));
        }
    }

    #[test]
    fn intra_leaf_allowed_when_disabled() {
        let d = FixedBytes(10_000);
        let mut rng = SimRng::new(4);
        let t = topo();
        let mut w = workload(&d, 0.5);
        w.inter_leaf_only = false;
        let specs = w.generate(&t, &mut rng);
        let intra = specs
            .iter()
            .filter(|s| t.leaf_of(s.src) == t.leaf_of(s.dst))
            .count();
        assert!(intra > 0, "expected some intra-leaf flows");
    }

    #[test]
    fn deadlines_only_for_short_flows() {
        let d = web_search();
        let mut rng = SimRng::new(5);
        let specs = workload(&d, 0.5).generate(&topo(), &mut rng);
        for s in &specs {
            assert_eq!(s.deadline.is_some(), s.size_bytes < 100_000);
        }
    }

    #[test]
    #[should_panic(expected = "deadline_hi")]
    fn inverted_deadline_window_panics_clearly() {
        let d = web_search();
        let mut w = workload(&d, 0.5);
        w.deadline_lo = SimTime::from_millis(25);
        w.deadline_hi = SimTime::from_millis(5);
        w.generate(&topo(), &mut SimRng::new(7));
    }

    #[test]
    fn expected_flows_uses_the_same_rate_as_generate() {
        // Degenerate window (hi == lo) is valid and must not panic; and the
        // generated count must track expected_flows (shared rate formula).
        let d = FixedBytes(50_000); // below short_threshold: all get deadlines
        let mut w = workload(&d, 0.6);
        w.deadline_lo = SimTime::from_millis(10);
        w.deadline_hi = SimTime::from_millis(10);
        let t = topo();
        let specs = w.generate(&t, &mut SimRng::new(8));
        let expected = w.expected_flows(&t);
        assert!(expected > 0.0);
        assert!(
            (specs.len() as f64 - expected).abs() / expected < 0.3,
            "count {} vs expected {expected}",
            specs.len()
        );
        for s in specs.iter().filter(|s| s.deadline.is_some()) {
            assert_eq!(s.deadline, Some(SimTime::from_millis(10)));
        }
    }

    #[test]
    fn poisson_gaps_have_exponential_spread() {
        let d = FixedBytes(100_000);
        let mut rng = SimRng::new(6);
        let specs = workload(&d, 0.8).generate(&topo(), &mut rng);
        assert!(specs.len() > 100);
        let gaps: Vec<f64> = specs
            .windows(2)
            .map(|w| (w[1].start - w[0].start).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential: CV = std/mean = 1. Accept [0.7, 1.3].
        let cv = var.sqrt() / mean;
        assert!((0.7..1.3).contains(&cv), "gap CV {cv} not exponential-like");
    }
}
