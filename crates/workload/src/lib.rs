//! # tlb-workload — data-center traffic generation
//!
//! The traffic the paper evaluates on:
//!
//! * §6.1 basic mix: 100 short flows (< 100 KB) + a few long flows
//!   (> 10 MB) on one leaf pair — [`basic_mix`].
//! * §6.2 large-scale: Poisson arrivals between random host pairs with the
//!   heavy-tailed **web search** (DCTCP) and **data mining** (VL2)
//!   flow-size distributions, load swept 0.1–0.8 — [`PoissonWorkload`].
//! * short-flow deadlines drawn uniformly from a range (§4.2: [5 ms, 25 ms];
//!   §7 testbed: [2 s, 6 s]).

pub mod mix;
pub mod permutation;
pub mod poisson;
pub mod sizes;
pub mod spec;

pub use mix::{basic_mix, sustained_mix, BasicMixConfig};
pub use permutation::permutation;
pub use poisson::PoissonWorkload;
pub use sizes::{data_mining, web_search, FixedBytes, PiecewiseCdf, SizeDist, UniformBytes};
pub use spec::FlowSpec;
