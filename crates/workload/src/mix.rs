//! The §6.1 basic mix: a handful of long flows plus a wave of short ones
//! between two racks.

use crate::sizes::{SizeDist, UniformBytes};
use crate::spec::FlowSpec;
use tlb_engine::{SimRng, SimTime};
use tlb_net::{Fabric, FlowId, HostId};

/// Configuration of the basic §6.1/§4.2 mix.
#[derive(Clone, Copy, Debug)]
pub struct BasicMixConfig {
    /// Number of short flows (paper: 100).
    pub n_short: usize,
    /// Number of long flows (paper: 3 in §4.2, 5 in §2.2, 4 in §7).
    pub n_long: usize,
    /// Short-flow sizes, uniform in `[short_lo, short_hi]` (paper: "random
    /// size of less than 100 KB", mean 70 KB -> [40 KB, 100 KB]).
    pub short_lo: u64,
    /// Upper bound of short sizes (exclusive of the long threshold).
    pub short_hi: u64,
    /// Long-flow sizes, uniform in `[long_lo, long_hi]` (paper: > 10 MB).
    pub long_lo: u64,
    /// Upper bound of long sizes.
    pub long_hi: u64,
    /// Short flows arrive Poisson over `[0, short_window]`.
    pub short_window: SimTime,
    /// Deadline range for short flows (paper: [5 ms, 25 ms]).
    pub deadline_lo: SimTime,
    /// Upper deadline bound.
    pub deadline_hi: SimTime,
}

impl BasicMixConfig {
    /// The §4.2/§6.1 defaults.
    pub fn paper_default() -> BasicMixConfig {
        BasicMixConfig {
            n_short: 100,
            n_long: 3,
            short_lo: 40_000,
            short_hi: 100_000,
            long_lo: 10_000_000,
            long_hi: 20_000_000,
            // The paper's model verification assumes ~100 *concurrently
            // active* short flows (m_S = 100), so the arrivals are bursty:
            // all short flows arrive within a few milliseconds and overlap.
            short_window: SimTime::from_millis(2),
            deadline_lo: SimTime::from_millis(5),
            deadline_hi: SimTime::from_millis(25),
        }
    }
}

/// Generate the basic mix on a leaf-spine fabric: all senders sit on leaf 0
/// (so its uplinks are the shared bottleneck the paper's Fig. 1 describes),
/// receivers are spread over the other leaves. Long flows start at t = 0,
/// short flows arrive Poisson across the window.
pub fn basic_mix(topo: &Fabric, cfg: &BasicMixConfig, rng: &mut SimRng) -> Vec<FlowSpec> {
    assert!(topo.n_leaves() >= 2, "basic mix needs at least 2 leaves");
    let senders: Vec<HostId> = topo.hosts_of(tlb_net::LeafId(0)).collect();
    let receivers: Vec<HostId> = (1..topo.n_leaves())
        .flat_map(|l| topo.hosts_of(tlb_net::LeafId(l as u32)))
        .collect();

    let short_dist = UniformBytes {
        lo: cfg.short_lo,
        hi: cfg.short_hi,
    };
    let long_dist = UniformBytes {
        lo: cfg.long_lo,
        hi: cfg.long_hi,
    };

    let mut specs = Vec::with_capacity(cfg.n_short + cfg.n_long);
    // Long flows first, all starting at t=0 (they are "continuously sending"
    // in the paper's setup).
    for i in 0..cfg.n_long {
        specs.push(FlowSpec {
            id: FlowId(0), // assigned after sorting
            src: senders[i % senders.len()],
            dst: receivers[i % receivers.len()],
            size_bytes: long_dist.sample(rng),
            start: SimTime::ZERO,
            deadline: None,
        });
    }
    // Short flows: Poisson arrivals across the window.
    let mean_gap = cfg.short_window.as_secs_f64() / cfg.n_short.max(1) as f64;
    let mut t = 0.0;
    for i in 0..cfg.n_short {
        t += rng.exp(mean_gap);
        let deadline_ns = rng
            .gen_range(cfg.deadline_hi.as_nanos() - cfg.deadline_lo.as_nanos() + 1)
            + cfg.deadline_lo.as_nanos();
        specs.push(FlowSpec {
            id: FlowId(0),
            src: senders[(cfg.n_long + i) % senders.len()],
            dst: receivers[rng.index(receivers.len())],
            size_bytes: short_dist.sample(rng),
            start: SimTime::from_secs_f64(t),
            deadline: Some(SimTime::from_nanos(deadline_ns)),
        });
    }
    finalize(specs)
}

/// The sustained (closed-loop) variant of the basic mix: each of
/// `cfg.n_short` clients runs `rounds` short flows back-to-back (the next
/// request starts when the previous one completes), holding the number of
/// *active* short flows at ≈ `n_short` for the whole run — the paper's
/// "m_S active short flows" premise behind the Fig. 7 model verification
/// and the Fig. 8/9 time series.
///
/// Returns `(flows, next)` for [`Simulation::new_chained`]: `next[i]` is
/// the flow launched when `i` completes.
///
/// [`Simulation::new_chained`]: https://docs.rs/tlb-simnet
pub fn sustained_mix(
    topo: &Fabric,
    cfg: &BasicMixConfig,
    rounds: usize,
    rng: &mut SimRng,
) -> (Vec<FlowSpec>, Vec<Option<u32>>) {
    assert!(rounds >= 1);
    assert!(topo.n_leaves() >= 2, "mix needs at least 2 leaves");
    let senders: Vec<HostId> = topo.hosts_of(tlb_net::LeafId(0)).collect();
    let receivers: Vec<HostId> = (1..topo.n_leaves())
        .flat_map(|l| topo.hosts_of(tlb_net::LeafId(l as u32)))
        .collect();
    let short_dist = UniformBytes {
        lo: cfg.short_lo,
        hi: cfg.short_hi,
    };
    let long_dist = UniformBytes {
        lo: cfg.long_lo,
        hi: cfg.long_hi,
    };

    let mut flows = Vec::with_capacity(cfg.n_long + cfg.n_short * rounds);
    let mut next: Vec<Option<u32>> = Vec::with_capacity(cfg.n_long + cfg.n_short * rounds);
    for i in 0..cfg.n_long {
        flows.push(FlowSpec {
            id: FlowId(flows.len() as u32),
            src: senders[i % senders.len()],
            dst: receivers[i % receivers.len()],
            size_bytes: long_dist.sample(rng),
            start: SimTime::ZERO,
            deadline: None,
        });
        next.push(None);
    }
    for c in 0..cfg.n_short {
        let src = senders[(cfg.n_long + c) % senders.len()];
        // Clients ramp up over the arrival window, then stay busy.
        let head_start = SimTime::from_nanos(rng.gen_range(cfg.short_window.as_nanos().max(1)));
        for k in 0..rounds {
            let id = flows.len() as u32;
            let deadline_ns = rng
                .gen_range(cfg.deadline_hi.as_nanos() - cfg.deadline_lo.as_nanos() + 1)
                + cfg.deadline_lo.as_nanos();
            flows.push(FlowSpec {
                id: FlowId(id),
                src,
                dst: receivers[rng.index(receivers.len())],
                size_bytes: short_dist.sample(rng),
                // Only the chain head's start is honoured by the simulator.
                start: head_start,
                deadline: Some(SimTime::from_nanos(deadline_ns)),
            });
            next.push(None);
            if k > 0 {
                next[(id - 1) as usize] = Some(id);
            }
        }
    }
    (flows, next)
}

/// Sort by start time and assign dense ids.
pub(crate) fn finalize(mut specs: Vec<FlowSpec>) -> Vec<FlowSpec> {
    specs.sort_by_key(|s| s.start);
    for (i, s) in specs.iter_mut().enumerate() {
        s.id = FlowId(i as u32);
    }
    debug_assert!(crate::spec::validate_specs(&specs).is_ok());
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::validate_specs;
    use tlb_net::LeafSpineBuilder;

    fn topo() -> Fabric {
        LeafSpineBuilder::new(3, 15, 16).build().into()
    }

    #[test]
    fn generates_requested_counts() {
        let mut rng = SimRng::new(1);
        let specs = basic_mix(&topo(), &BasicMixConfig::paper_default(), &mut rng);
        assert_eq!(specs.len(), 103);
        validate_specs(&specs).unwrap();
        let short = specs.iter().filter(|s| s.is_short(100_001)).count();
        assert_eq!(short, 100);
    }

    #[test]
    fn senders_on_leaf0_receivers_elsewhere() {
        let mut rng = SimRng::new(2);
        let t = topo();
        let specs = basic_mix(&t, &BasicMixConfig::paper_default(), &mut rng);
        for s in &specs {
            assert_eq!(t.leaf_of(s.src).index(), 0, "sender off leaf 0");
            assert_ne!(t.leaf_of(s.dst).index(), 0, "receiver on leaf 0");
        }
    }

    #[test]
    fn long_flows_start_at_zero_with_no_deadline() {
        let mut rng = SimRng::new(3);
        let specs = basic_mix(&topo(), &BasicMixConfig::paper_default(), &mut rng);
        let longs: Vec<_> = specs.iter().filter(|s| !s.is_short(100_001)).collect();
        assert_eq!(longs.len(), 3);
        for l in longs {
            assert_eq!(l.start, SimTime::ZERO);
            assert!(l.deadline.is_none());
            assert!(l.size_bytes >= 10_000_000);
        }
    }

    #[test]
    fn short_deadlines_in_range() {
        let mut rng = SimRng::new(4);
        let cfg = BasicMixConfig::paper_default();
        let specs = basic_mix(&topo(), &cfg, &mut rng);
        for s in specs.iter().filter(|s| s.is_short(100_001)) {
            let d = s.deadline.expect("short flows carry deadlines");
            assert!(d >= cfg.deadline_lo && d <= cfg.deadline_hi);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = topo();
        let cfg = BasicMixConfig::paper_default();
        let a = basic_mix(&t, &cfg, &mut SimRng::new(9));
        let b = basic_mix(&t, &cfg, &mut SimRng::new(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.start, y.start);
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
        }
    }
}
