//! Flow-size distributions.
//!
//! The two production traces the paper's §6.2 uses, encoded as piecewise
//! CDFs with log-linear interpolation (the standard encoding used by the
//! pFabric/DCTCP/VL2 line of papers):
//!
//! * [`web_search`] — the DCTCP web-search workload. Matches the paper's
//!   "about 30% flows are larger than 1 MB".
//! * [`data_mining`] — the VL2 data-mining workload. Matches the paper's
//!   "less than 5% flows larger than 35 MB".
//!
//! Both are heavy-tailed: ≈90 % of bytes come from ≈10 % of flows.

use tlb_engine::SimRng;

/// A sampleable flow-size distribution.
pub trait SizeDist {
    /// Draw one flow size in bytes.
    fn sample(&self, rng: &mut SimRng) -> u64;
    /// The distribution mean in bytes.
    fn mean(&self) -> f64;
    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// A piecewise-linear CDF over flow sizes, interpolated in log-size space
/// (sizes span 5+ orders of magnitude, so linear-in-log is the natural
/// interpolation).
#[derive(Clone, Debug)]
pub struct PiecewiseCdf {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
    name: &'static str,
    mean: f64,
}

impl PiecewiseCdf {
    /// Build from `(bytes, cdf)` control points. The last point must have
    /// cdf = 1.0; the first point's cdf may be > 0 (an atom at the minimum
    /// size).
    pub fn new(name: &'static str, points: Vec<(f64, f64)>) -> PiecewiseCdf {
        assert!(points.len() >= 2, "need at least 2 CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase: {points:?}");
            assert!(w[0].1 <= w[1].1, "cdf must not decrease: {points:?}");
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "cdf must end at 1.0"
        );
        assert!(points[0].0 >= 1.0, "sizes must be at least 1 byte");
        let mean = Self::numeric_mean(&points);
        PiecewiseCdf { points, name, mean }
    }

    /// Mean by integrating the interpolated inverse CDF.
    fn numeric_mean(points: &[(f64, f64)]) -> f64 {
        // E[X] = ∫0..1 Q(p) dp, approximated on a fine grid.
        let n = 20_000;
        let mut acc = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            acc += Self::quantile_of(points, p);
        }
        acc / n as f64
    }

    fn quantile_of(points: &[(f64, f64)], p: f64) -> f64 {
        let first = points[0];
        if p <= first.1 {
            return first.0;
        }
        for w in points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if p <= p1 {
                if p1 == p0 {
                    return x1;
                }
                let frac = (p - p0) / (p1 - p0);
                // Log-linear interpolation between the two sizes.
                let lx = x0.ln() + frac * (x1.ln() - x0.ln());
                return lx.exp();
            }
        }
        points.last().unwrap().0
    }

    /// The size at quantile `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        Self::quantile_of(&self.points, p.clamp(0.0, 1.0))
    }

    /// Fraction of flows larger than `bytes`.
    pub fn frac_larger_than(&self, bytes: f64) -> f64 {
        // Invert by scanning quantiles (points are few).
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.quantile(mid) < bytes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        1.0 - lo
    }
}

impl SizeDist for PiecewiseCdf {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        (self.quantile(rng.f64()).round() as u64).max(1)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The DCTCP web-search flow-size distribution (as tabulated in the pFabric
/// line of work). ~30 % of flows exceed 1 MB; mean ≈ 1.6 MB.
pub fn web_search() -> PiecewiseCdf {
    PiecewiseCdf::new(
        "web-search",
        vec![
            (6_000.0, 0.15),
            (13_000.0, 0.2),
            (19_000.0, 0.3),
            (33_000.0, 0.4),
            (53_000.0, 0.53),
            (133_000.0, 0.6),
            (667_000.0, 0.7),
            (1_333_000.0, 0.8),
            (3_333_000.0, 0.9),
            (6_667_000.0, 0.97),
            (20_000_000.0, 1.0),
        ],
    )
}

/// The VL2 data-mining flow-size distribution. A huge mass of tiny flows
/// with a very long tail; < 5 % of flows exceed 35 MB; ~80 % are under
/// 125 kB.
pub fn data_mining() -> PiecewiseCdf {
    PiecewiseCdf::new(
        "data-mining",
        vec![
            (100.0, 0.03),
            (180.0, 0.1),
            (250.0, 0.2),
            (560.0, 0.3),
            (900.0, 0.4),
            (1_100.0, 0.5),
            (60_000.0, 0.6),
            (80_000.0, 0.7),
            (125_000.0, 0.8),
            (570_000.0, 0.9),
            (1_580_000.0, 0.95),
            (30_000_000.0, 0.98),
            (66_000_000.0, 1.0),
        ],
    )
}

/// Uniform size in `[lo, hi]` bytes — used for the §6.1 basic mix's
/// "random size of less than 100 KB" short flows.
#[derive(Clone, Copy, Debug)]
pub struct UniformBytes {
    /// Smallest size (inclusive).
    pub lo: u64,
    /// Largest size (inclusive).
    pub hi: u64,
}

impl SizeDist for UniformBytes {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        assert!(self.hi >= self.lo);
        self.lo + rng.gen_range(self.hi - self.lo + 1)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// A constant size.
#[derive(Clone, Copy, Debug)]
pub struct FixedBytes(pub u64);

impl SizeDist for FixedBytes {
    fn sample(&self, _rng: &mut SimRng) -> u64 {
        self.0
    }

    fn mean(&self) -> f64 {
        self.0 as f64
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_search_matches_paper_claims() {
        let d = web_search();
        // Paper §6.2: "about 30% flows are larger than 1MB".
        let frac = d.frac_larger_than(1_000_000.0);
        assert!(
            (0.2..=0.4).contains(&frac),
            "P(>1MB) = {frac}, expected ~0.3"
        );
        // Heavy-tailed mean in the low-MB range.
        assert!(
            (500_000.0..3_000_000.0).contains(&d.mean()),
            "mean {} out of range",
            d.mean()
        );
    }

    #[test]
    fn data_mining_matches_paper_claims() {
        let d = data_mining();
        // Paper §6.2: "less than 5% flows larger than 35MB".
        let frac = d.frac_larger_than(35_000_000.0);
        assert!(frac < 0.05, "P(>35MB) = {frac}");
        // And ~80% below 125 kB.
        let small = 1.0 - d.frac_larger_than(125_000.0);
        assert!((0.7..=0.9).contains(&small), "P(<125kB) = {small}");
    }

    #[test]
    fn sampling_tracks_quantiles() {
        let d = web_search();
        let mut rng = SimRng::new(42);
        let n = 200_000;
        let big = (0..n).filter(|_| d.sample(&mut rng) > 1_000_000).count() as f64 / n as f64;
        let expected = d.frac_larger_than(1_000_000.0);
        assert!(
            (big - expected).abs() < 0.01,
            "sampled {big}, analytic {expected}"
        );
    }

    #[test]
    fn sample_mean_matches_numeric_mean() {
        let d = data_mining();
        let mut rng = SimRng::new(7);
        let n = 400_000;
        let mean = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let rel = (mean - d.mean()).abs() / d.mean();
        assert!(rel < 0.05, "sample mean {mean} vs numeric {}", d.mean());
    }

    #[test]
    fn heavy_tail_byte_concentration() {
        // ~90% of bytes from ~10-30% of flows (paper §1).
        let d = web_search();
        let mut rng = SimRng::new(3);
        let mut sizes: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        sizes.sort_unstable();
        let total: u64 = sizes.iter().sum();
        let top10pct: u64 = sizes[sizes.len() * 9 / 10..].iter().sum();
        let share = top10pct as f64 / total as f64;
        assert!(share > 0.5, "top-10% flows carry {share} of bytes");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformBytes {
            lo: 40_000,
            hi: 100_000,
        };
        assert_eq!(d.mean(), 70_000.0);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((40_000..=100_000).contains(&s));
        }
    }

    #[test]
    fn fixed_is_fixed() {
        let d = FixedBytes(10_000_000);
        let mut rng = SimRng::new(1);
        assert_eq!(d.sample(&mut rng), 10_000_000);
        assert_eq!(d.mean(), 10_000_000.0);
    }

    #[test]
    fn quantile_clamps() {
        let d = web_search();
        assert_eq!(d.quantile(-0.5), d.quantile(0.0));
        assert_eq!(d.quantile(1.5), d.quantile(1.0));
        assert!(d.quantile(0.0) <= d.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "cdf must end at 1.0")]
    fn rejects_incomplete_cdf() {
        let _ = PiecewiseCdf::new("bad", vec![(1.0, 0.1), (2.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn rejects_unsorted_sizes() {
        let _ = PiecewiseCdf::new("bad", vec![(10.0, 0.1), (5.0, 1.0)]);
    }
}
