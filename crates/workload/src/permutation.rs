//! Permutation traffic: every host sends one long flow to a distinct
//! receiver. The classic stress pattern of the load-balancing literature
//! (CONGA, DRILL, Presto all use it): with `n` hosts per rack and `n`
//! uplinks, a perfect balancer sustains line rate for everyone, while hash
//! collisions (ECMP) leave some uplinks idle and others doubly loaded.

use crate::sizes::SizeDist;
use crate::spec::FlowSpec;
use tlb_engine::{SimRng, SimTime};
use tlb_net::{Fabric, FlowId, HostId};

/// Generate a random inter-rack permutation: each host sends exactly one
/// flow of `dist`-sampled size to a host in another rack, and each host
/// receives at most one flow. All flows start at t = 0.
pub fn permutation(topo: &Fabric, dist: &impl SizeDist, rng: &mut SimRng) -> Vec<FlowSpec> {
    assert!(topo.n_leaves() >= 2, "permutation needs at least 2 racks");
    let n = topo.n_hosts();
    // Random derangement-ish matching: shuffle receivers until every pair
    // is inter-rack. Rejection is cheap for >= 2 racks of equal size.
    let mut receivers: Vec<usize> = (0..n).collect();
    loop {
        rng.shuffle(&mut receivers);
        let ok = (0..n).all(|s| {
            let d = receivers[s];
            d != s && topo.leaf_of(HostId(s as u32)) != topo.leaf_of(HostId(d as u32))
        });
        if ok {
            break;
        }
    }
    (0..n)
        .map(|s| FlowSpec {
            id: FlowId(s as u32),
            src: HostId(s as u32),
            dst: HostId(receivers[s] as u32),
            size_bytes: dist.sample(rng),
            start: SimTime::ZERO,
            deadline: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::FixedBytes;
    use tlb_net::LeafSpineBuilder;

    #[test]
    fn is_a_valid_inter_rack_matching() {
        let topo: Fabric = LeafSpineBuilder::new(4, 4, 8).build().into();
        let mut rng = SimRng::new(3);
        let flows = permutation(&topo, &FixedBytes(1_000_000), &mut rng);
        assert_eq!(flows.len(), 32);
        // Each host sends once...
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.src, HostId(i as u32));
            assert_ne!(topo.leaf_of(f.src), topo.leaf_of(f.dst));
        }
        // ...and receives at most once.
        let mut dsts: Vec<u32> = flows.iter().map(|f| f.dst.0).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 32);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo: Fabric = LeafSpineBuilder::new(2, 4, 8).build().into();
        let a = permutation(&topo, &FixedBytes(1000), &mut SimRng::new(9));
        let b = permutation(&topo, &FixedBytes(1000), &mut SimRng::new(9));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dst, y.dst);
        }
    }

    #[test]
    fn two_rack_permutation_crosses_racks() {
        let topo: Fabric = LeafSpineBuilder::new(2, 2, 4).build().into();
        let mut rng = SimRng::new(1);
        let flows = permutation(&topo, &FixedBytes(1000), &mut rng);
        for f in &flows {
            assert_ne!(topo.leaf_of(f.src), topo.leaf_of(f.dst));
        }
    }
}
