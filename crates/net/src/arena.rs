//! A recycling arena for in-flight packets.
//!
//! The simulator's per-packet reference delivery mode used to carry every
//! in-flight packet as a `Box<Packet>` inside its FEL event — one heap
//! round-trip per packet per hop. The arena replaces that with a slab:
//! packets park in a flat `Vec`, events carry a 4-byte [`PacketSlot`]
//! handle, and freed slots go on a free list for reuse, so steady state
//! recycles storage instead of allocating.
//!
//! Handles are **generation-checked**: every slot carries an 8-bit
//! generation that increments each time the slot is freed, and the handle
//! embeds the generation it was issued under. [`PacketArena::take`] panics
//! on a mismatch, so a stale handle (use-after-free, double-take) is caught
//! at the moment of misuse rather than silently yielding another packet's
//! bytes. With 8 generation bits an ABA false-negative needs the same slot
//! to be recycled exactly 256·k times between issue and misuse — good
//! enough for a test oracle, and free: the handle still fits in 4 bytes,
//! which is what keeps the simulator's event payload one word.

use crate::packet::Packet;

/// Index bits in a [`PacketSlot`]; the rest hold the generation.
const IDX_BITS: u32 = 24;
const IDX_MASK: u32 = (1 << IDX_BITS) - 1;

/// A 4-byte generation-checked handle to a packet parked in a
/// [`PacketArena`]: 24 bits of slot index, 8 bits of generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSlot(u32);

impl PacketSlot {
    #[inline]
    fn new(idx: u32, generation: u8) -> PacketSlot {
        debug_assert!(idx <= IDX_MASK);
        PacketSlot(idx | (u32::from(generation) << IDX_BITS))
    }

    /// The slot index this handle points at.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & IDX_MASK) as usize
    }

    /// The generation this handle was issued under.
    #[inline]
    pub fn generation(self) -> u8 {
        (self.0 >> IDX_BITS) as u8
    }
}

struct Slot {
    generation: u8,
    pkt: Packet,
}

/// A slab of in-flight packets with free-list recycling and
/// generation-checked handles. See the module docs for the design.
#[derive(Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
}

impl PacketArena {
    /// An empty arena that has not allocated yet.
    pub fn new() -> PacketArena {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// An arena pre-sized for `cap` concurrently live packets: neither the
    /// slot slab nor the free list reallocates until occupancy exceeds it.
    pub fn with_capacity(cap: usize) -> PacketArena {
        let cap = cap.min(IDX_MASK as usize + 1);
        PacketArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
            peak_live: 0,
        }
    }

    /// Park a packet, returning its handle. Reuses a freed slot when one
    /// exists; grows the slab (the only allocating path) otherwise.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketSlot {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.pkt = pkt;
            PacketSlot::new(idx, slot.generation)
        } else {
            let idx = self.slots.len();
            assert!(
                idx <= IDX_MASK as usize,
                "packet arena exhausted its 24-bit index space"
            );
            self.slots.push(Slot { generation: 0, pkt });
            PacketSlot::new(idx as u32, 0)
        }
    }

    /// Take a packet back out, freeing its slot for reuse.
    ///
    /// Panics if the handle is stale — the slot was already freed (and
    /// possibly reissued) since this handle was created.
    #[inline]
    pub fn take(&mut self, handle: PacketSlot) -> Packet {
        let slot = &mut self.slots[handle.index()];
        assert_eq!(
            slot.generation,
            handle.generation(),
            "stale PacketSlot {handle:?}: slot was freed since this handle was issued"
        );
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index() as u32);
        self.live -= 1;
        slot.pkt
    }

    /// Packets currently parked.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when no packet is parked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of concurrently parked packets.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Slots the slab has materialized (== peak live occupancy so far,
    /// since freed slots are reused before the slab grows).
    pub fn slots_allocated(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use tlb_engine::SimTime;

    fn pkt(seq: u32) -> Packet {
        Packet::data(
            FlowId(1),
            HostId(0),
            HostId(5),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    #[test]
    fn roundtrip_preserves_packet() {
        let mut a = PacketArena::new();
        let h = a.insert(pkt(7));
        assert_eq!(a.live(), 1);
        let p = a.take(h);
        assert_eq!(p.seq, 7);
        assert!(a.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_not_grown() {
        let mut a = PacketArena::new();
        for round in 0..100u32 {
            let h = a.insert(pkt(round));
            assert_eq!(a.take(h).seq, round);
        }
        assert_eq!(
            a.slots_allocated(),
            1,
            "sequential insert/take must recycle one slot"
        );
        assert_eq!(a.peak_live(), 1);
    }

    #[test]
    fn interleaved_handles_stay_distinct() {
        let mut a = PacketArena::with_capacity(8);
        let hs: Vec<PacketSlot> = (0..8).map(|s| a.insert(pkt(s))).collect();
        assert_eq!(a.live(), 8);
        // Take in a scrambled order; every handle must yield its own packet.
        for &i in &[3usize, 0, 7, 1, 6, 2, 5, 4] {
            assert_eq!(a.take(hs[i]).seq, i as u32);
        }
        assert_eq!(a.slots_allocated(), 8);
        assert_eq!(a.peak_live(), 8);
    }

    #[test]
    #[should_panic(expected = "stale PacketSlot")]
    fn double_take_panics() {
        let mut a = PacketArena::new();
        let h = a.insert(pkt(0));
        let _ = a.take(h);
        let _ = a.take(h);
    }

    #[test]
    #[should_panic(expected = "stale PacketSlot")]
    fn use_after_reissue_panics() {
        let mut a = PacketArena::new();
        let stale = a.insert(pkt(0));
        let _ = a.take(stale);
        // The slot is reissued under a new generation; the old handle must
        // not be able to steal the new occupant.
        let fresh = a.insert(pkt(1));
        assert_eq!(fresh.index(), stale.index());
        assert_ne!(fresh.generation(), stale.generation());
        let _ = a.take(stale);
    }

    #[test]
    fn handle_packs_index_and_generation() {
        let h = PacketSlot::new(0x00AB_CDEF, 0x7F);
        assert_eq!(h.index(), 0x00AB_CDEF);
        assert_eq!(h.generation(), 0x7F);
        assert_eq!(std::mem::size_of::<PacketSlot>(), 4);
    }

    #[test]
    fn with_capacity_does_not_grow_within_bound() {
        let mut a = PacketArena::with_capacity(16);
        let cap_slots = a.slots.capacity();
        let cap_free = a.free.capacity();
        let hs: Vec<_> = (0..16).map(|s| a.insert(pkt(s))).collect();
        for h in hs {
            a.take(h);
        }
        assert_eq!(a.slots.capacity(), cap_slots);
        assert_eq!(a.free.capacity(), cap_free);
    }
}
