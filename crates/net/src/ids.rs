//! Strongly-typed identifiers.
//!
//! Everything is a dense `u32` index so components can use `Vec`s instead of
//! hash maps on the hot path; the newtypes only exist to stop an index from
//! being used against the wrong table.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this id wraps.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A host (end system). Hosts are numbered leaf-major: host `h` hangs off
    /// leaf `h / hosts_per_leaf`.
    HostId,
    "h"
);
id_type!(
    /// A leaf (top-of-rack) switch.
    LeafId,
    "leaf"
);
id_type!(
    /// A spine (core) switch. With `S` spines there are `S` equal-cost paths
    /// between any pair of hosts in different racks.
    SpineId,
    "spine"
);
id_type!(
    /// A flow (one sender->receiver byte stream). Flow ids are dense and
    /// assigned by the workload generator in arrival order.
    FlowId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let h: HostId = 7usize.into();
        assert_eq!(h.index(), 7);
        assert_eq!(h, HostId(7));
    }

    #[test]
    fn display_tags() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(LeafId(1).to_string(), "leaf1");
        assert_eq!(SpineId(0).to_string(), "spine0");
        assert_eq!(FlowId(9).to_string(), "f9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(FlowId(1) < FlowId(2));
    }
}
