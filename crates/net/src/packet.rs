//! The unit of simulation: one packet on the wire.

use crate::ids::{FlowId, HostId};
use tlb_engine::SimTime;

/// TCP segment/control type carried by a [`Packet`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PktKind {
    /// Connection-open request (sender -> receiver). The leaf switch counts
    /// +1 active flow when it sees a SYN from a local host (paper §5).
    Syn,
    /// Connection-open reply (receiver -> sender).
    SynAck,
    /// A data segment; `seq` is the segment index (0-based, MSS units).
    Data,
    /// A cumulative acknowledgment; `seq` is the next expected segment.
    Ack,
    /// Connection close (sender -> receiver), emitted once all data is
    /// acknowledged. The leaf switch counts -1 active flow (paper §5).
    Fin,
}

impl PktKind {
    /// True for the control packets that carry no payload.
    #[inline]
    pub fn is_control(self) -> bool {
        !matches!(self, PktKind::Data)
    }
}

/// A tiny local `bitflags` substitute (avoids an extra dependency for five
/// flags). Generates a transparent wrapper with set/get/toggle helpers.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
        pub struct $name(pub $ty);

        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($val);)*

            /// No flags set.
            #[inline]
            pub const fn empty() -> Self {
                $name(0)
            }

            /// True if every flag in `other` is set in `self`.
            #[inline]
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Set or clear the flags in `other`.
            #[inline]
            pub fn set(&mut self, other: $name, on: bool) {
                if on {
                    self.0 |= other.0;
                } else {
                    self.0 &= !other.0;
                }
            }

            /// Union of two flag sets.
            #[inline]
            pub const fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }
    };
}

bitflags_lite! {
    /// Per-packet flags, packed into one byte to keep [`Packet`] small.
    pub struct PktFlags: u8 {
        /// Sender negotiated ECN; switches may mark instead of relying on loss.
        const ECN_CAPABLE = 1 << 0;
        /// Congestion Experienced: set by a switch when the queue exceeded
        /// the marking threshold at enqueue time (DCTCP-style instantaneous
        /// marking).
        const CE = 1 << 1;
        /// ECN Echo on an ACK: the receiver saw CE on the data packet this
        /// ACK acknowledges (per-packet echo; see DESIGN.md §6).
        const ECE = 1 << 2;
        /// This data segment is the last one of the flow.
        const LAST_SEG = 1 << 3;
        /// This data segment is a retransmission.
        const RETX = 1 << 4;
    }
}

/// One packet in flight. `Copy` and small (fits in a cache line) because the
/// simulator moves millions of these through `VecDeque`s.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Flow this packet belongs to (same id for both directions).
    pub flow: FlowId,
    /// Originating host.
    pub src: HostId,
    /// Destination host — forwarding looks only at this.
    pub dst: HostId,
    /// Segment/control type.
    pub kind: PktKind,
    /// Data: segment index. Ack: next expected segment (cumulative).
    pub seq: u32,
    /// Bytes occupied on the wire (payload + headers); drives serialization
    /// time and byte-based queue accounting.
    pub wire_bytes: u32,
    /// Payload bytes (0 for control packets).
    pub payload_bytes: u32,
    /// Flag bits (ECN state, retransmission, last segment).
    pub flags: PktFlags,
    /// When the packet left its source host (for end-to-end delay metrics).
    pub sent_at: SimTime,
    /// When the packet entered its current queue (set by the switch; used for
    /// per-hop queueing-delay metrics).
    pub enqueued_at: SimTime,
}

impl Packet {
    /// Wire size of a control packet (SYN/ACK/FIN): TCP/IP headers only.
    pub const CTRL_WIRE_BYTES: u32 = 64;

    /// Build a control packet (no payload).
    pub fn control(
        flow: FlowId,
        src: HostId,
        dst: HostId,
        kind: PktKind,
        seq: u32,
        now: SimTime,
    ) -> Packet {
        debug_assert!(kind.is_control());
        Packet {
            flow,
            src,
            dst,
            kind,
            seq,
            wire_bytes: Self::CTRL_WIRE_BYTES,
            payload_bytes: 0,
            flags: PktFlags::empty(),
            sent_at: now,
            enqueued_at: now,
        }
    }

    /// Build a data segment carrying `payload` bytes plus `header` overhead.
    pub fn data(
        flow: FlowId,
        src: HostId,
        dst: HostId,
        seq: u32,
        payload: u32,
        header: u32,
        now: SimTime,
    ) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PktKind::Data,
            seq,
            wire_bytes: payload + header,
            payload_bytes: payload,
            flags: PktFlags::ECN_CAPABLE,
            sent_at: now,
            enqueued_at: now,
        }
    }

    /// Whether the CE (congestion experienced) bit is set.
    #[inline]
    pub fn ce(&self) -> bool {
        self.flags.contains(PktFlags::CE)
    }

    /// Whether the ACK carries an ECN echo.
    #[inline]
    pub fn ece(&self) -> bool {
        self.flags.contains(PktFlags::ECE)
    }

    /// Whether this switch may ECN-mark the packet.
    #[inline]
    pub fn ecn_capable(&self) -> bool {
        self.flags.contains(PktFlags::ECN_CAPABLE)
    }

    /// Mark CE (called by a congested switch queue).
    #[inline]
    pub fn mark_ce(&mut self) {
        self.flags.set(PktFlags::CE, true);
    }

    /// Whether this is the final data segment of its flow.
    #[inline]
    pub fn is_last_seg(&self) -> bool {
        self.flags.contains(PktFlags::LAST_SEG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(5), 3, 1460, 40, SimTime::ZERO)
    }

    #[test]
    fn data_packet_sizes() {
        let pkt = p();
        assert_eq!(pkt.wire_bytes, 1500);
        assert_eq!(pkt.payload_bytes, 1460);
        assert!(pkt.ecn_capable());
        assert!(!pkt.ce());
    }

    #[test]
    fn control_packet_has_no_payload() {
        let pkt = Packet::control(
            FlowId(2),
            HostId(1),
            HostId(2),
            PktKind::Ack,
            10,
            SimTime::from_nanos(5),
        );
        assert_eq!(pkt.payload_bytes, 0);
        assert_eq!(pkt.wire_bytes, Packet::CTRL_WIRE_BYTES);
        assert_eq!(pkt.seq, 10);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn control_rejects_data_kind() {
        let _ = Packet::control(
            FlowId(0),
            HostId(0),
            HostId(1),
            PktKind::Data,
            0,
            SimTime::ZERO,
        );
    }

    #[test]
    fn ce_marking() {
        let mut pkt = p();
        assert!(!pkt.ce());
        pkt.mark_ce();
        assert!(pkt.ce());
        // Marking must not disturb other flags.
        assert!(pkt.ecn_capable());
    }

    #[test]
    fn flag_set_and_clear() {
        let mut f = PktFlags::empty();
        f.set(PktFlags::LAST_SEG, true);
        assert!(f.contains(PktFlags::LAST_SEG));
        f.set(PktFlags::LAST_SEG, false);
        assert!(!f.contains(PktFlags::LAST_SEG));
    }

    #[test]
    fn flags_union() {
        let f = PktFlags::CE.union(PktFlags::ECE);
        assert!(f.contains(PktFlags::CE));
        assert!(f.contains(PktFlags::ECE));
        assert!(!f.contains(PktFlags::LAST_SEG));
    }

    #[test]
    fn kind_control_classification() {
        assert!(PktKind::Syn.is_control());
        assert!(PktKind::SynAck.is_control());
        assert!(PktKind::Ack.is_control());
        assert!(PktKind::Fin.is_control());
        assert!(!PktKind::Data.is_control());
    }

    #[test]
    fn packet_is_small() {
        // Keep the hot-path type compact: a packet should stay within one
        // cache line (64 bytes).
        assert!(std::mem::size_of::<Packet>() <= 64);
    }
}
