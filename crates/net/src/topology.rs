//! Leaf-spine topology with per-link properties and asymmetry injection.
//!
//! The paper's topologies:
//! * §2.2/§4.2/§6.1 basic: one leaf pair, 15 spines (15 equal-cost paths),
//!   1 Gbit/s, 100 µs base RTT.
//! * §6.2 large-scale: 8 ToR × 8 core, 256 hosts, 1 Gbit/s.
//! * §7 testbed: 10 equal-cost paths, 20 Mbit/s, 1 ms per-link delay.
//! * Fig. 16/17 asymmetry: 2 randomly chosen leaf-to-spine links with extra
//!   delay or reduced bandwidth.

use crate::ids::{HostId, LeafId, SpineId};
use tlb_engine::SimTime;

/// Physical properties of one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkProps {
    /// Capacity in bytes per second.
    pub bytes_per_sec: u64,
    /// One-way propagation delay.
    pub prop_delay: SimTime,
}

impl LinkProps {
    /// A link specified in Gbit/s and nanoseconds of propagation delay.
    pub fn gbps(gbps: f64, prop_delay: SimTime) -> LinkProps {
        LinkProps {
            bytes_per_sec: (gbps * 1e9 / 8.0).round() as u64,
            prop_delay,
        }
    }

    /// A link specified in Mbit/s.
    pub fn mbps(mbps: f64, prop_delay: SimTime) -> LinkProps {
        LinkProps {
            bytes_per_sec: (mbps * 1e6 / 8.0).round() as u64,
            prop_delay,
        }
    }
}

/// A two-tier leaf-spine (folded Clos) fabric.
///
/// Hosts are numbered leaf-major: hosts `l * hosts_per_leaf ..` belong to
/// leaf `l`. Every leaf connects to every spine, so hosts in different racks
/// have exactly `n_spines` equal-cost paths; links are stored per direction
/// so asymmetry can be injected on individual leaf→spine (and the paired
/// spine→leaf) links.
#[derive(Clone, Debug)]
pub struct LeafSpine {
    n_leaves: usize,
    n_spines: usize,
    hosts_per_leaf: usize,
    /// `hosts[h]`: host NIC <-> leaf link (same both directions).
    hosts: Vec<LinkProps>,
    /// `up[leaf][spine]`: leaf -> spine.
    up: Vec<LinkProps>,
    /// `down[spine][leaf]`: spine -> leaf.
    down: Vec<LinkProps>,
}

impl LeafSpine {
    /// Number of leaf switches.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of spine switches (= number of equal-cost inter-rack paths).
    #[inline]
    pub fn n_spines(&self) -> usize {
        self.n_spines
    }

    /// Hosts attached to each leaf.
    #[inline]
    pub fn hosts_per_leaf(&self) -> usize {
        self.hosts_per_leaf
    }

    /// Total host count.
    #[inline]
    pub fn n_hosts(&self) -> usize {
        self.n_leaves * self.hosts_per_leaf
    }

    /// The leaf a host hangs off.
    #[inline]
    pub fn leaf_of(&self, h: HostId) -> LeafId {
        debug_assert!(h.index() < self.n_hosts());
        LeafId((h.index() / self.hosts_per_leaf) as u32)
    }

    /// A host's port index on its leaf (0-based within the rack).
    #[inline]
    pub fn host_slot(&self, h: HostId) -> usize {
        h.index() % self.hosts_per_leaf
    }

    /// All hosts under a leaf.
    pub fn hosts_of(&self, l: LeafId) -> impl Iterator<Item = HostId> {
        let start = l.index() * self.hosts_per_leaf;
        (start..start + self.hosts_per_leaf).map(HostId::from)
    }

    /// The reference host NIC <-> leaf link (host 0's). Fabrics are built
    /// uniform, so this is every host's link until [`degrade_host_link`]
    /// touches one; per-host queries go through [`host_link_of`].
    ///
    /// [`degrade_host_link`]: LeafSpine::degrade_host_link
    /// [`host_link_of`]: LeafSpine::host_link_of
    #[inline]
    pub fn host_link(&self) -> LinkProps {
        self.hosts[0]
    }

    /// A specific host's NIC <-> leaf link (same both directions).
    #[inline]
    pub fn host_link_of(&self, h: HostId) -> LinkProps {
        self.hosts[h.index()]
    }

    /// The leaf -> spine uplink.
    #[inline]
    pub fn uplink(&self, l: LeafId, s: SpineId) -> LinkProps {
        self.up[l.index() * self.n_spines + s.index()]
    }

    /// The spine -> leaf downlink.
    #[inline]
    pub fn downlink(&self, s: SpineId, l: LeafId) -> LinkProps {
        self.down[s.index() * self.n_leaves + l.index()]
    }

    /// Base round-trip propagation delay between two inter-rack hosts via a
    /// given spine (excludes serialization and queueing).
    pub fn rtt_via(&self, src: HostId, spine: SpineId, dst: HostId) -> SimTime {
        let sl = self.leaf_of(src);
        let dl = self.leaf_of(dst);
        let src_nic = self.host_link_of(src).prop_delay;
        let dst_nic = self.host_link_of(dst).prop_delay;
        let one_way = src_nic
            + self.uplink(sl, spine).prop_delay
            + self.downlink(spine, dl).prop_delay
            + dst_nic;
        let back = dst_nic
            + self.uplink(dl, spine).prop_delay
            + self.downlink(spine, sl).prop_delay
            + src_nic;
        one_way + back
    }

    /// Minimum base RTT over all spines for a host pair (what a transport's
    /// RTT estimate converges to on idle paths).
    pub fn min_rtt(&self, src: HostId, dst: HostId) -> SimTime {
        (0..self.n_spines)
            .map(|s| self.rtt_via(src, SpineId(s as u32), dst))
            .min()
            .expect("topology has no spines")
    }

    /// Minimum one-way base propagation delay from `src` to `dst`: over all
    /// spines for inter-rack pairs, or the two host links for intra-rack
    /// ones. Lower-bounds any packet's traversal time (excludes
    /// serialization and queueing), which makes it the propagation term of
    /// the fuzzer's FCT lower-bound oracle.
    pub fn min_one_way_delay(&self, src: HostId, dst: HostId) -> SimTime {
        let sl = self.leaf_of(src);
        let dl = self.leaf_of(dst);
        let nics = self.host_link_of(src).prop_delay + self.host_link_of(dst).prop_delay;
        if sl == dl {
            return nics;
        }
        (0..self.n_spines)
            .map(|s| {
                let spine = SpineId(s as u32);
                nics + self.uplink(sl, spine).prop_delay + self.downlink(spine, dl).prop_delay
            })
            .min()
            .expect("topology has no spines")
    }

    /// Degrade the leaf<->spine link pair: multiply bandwidth by
    /// `bw_factor` (≤ 1.0) and add `extra_delay` to propagation, in both
    /// directions. This is how Fig. 16/17's asymmetric scenarios are built.
    pub fn degrade_link(&mut self, l: LeafId, s: SpineId, bw_factor: f64, extra_delay: SimTime) {
        assert!(
            bw_factor > 0.0 && bw_factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        let up = &mut self.up[l.index() * self.n_spines + s.index()];
        up.bytes_per_sec = ((up.bytes_per_sec as f64) * bw_factor).max(1.0) as u64;
        up.prop_delay += extra_delay;
        let down = &mut self.down[s.index() * self.n_leaves + l.index()];
        down.bytes_per_sec = ((down.bytes_per_sec as f64) * bw_factor).max(1.0) as u64;
        down.prop_delay += extra_delay;
    }

    /// Degrade one host's NIC <-> leaf link (both directions): multiply
    /// bandwidth by `bw_factor` and add `extra_delay` to propagation.
    pub fn degrade_host_link(&mut self, h: HostId, bw_factor: f64, extra_delay: SimTime) {
        assert!(
            bw_factor > 0.0 && bw_factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        let link = &mut self.hosts[h.index()];
        link.bytes_per_sec = ((link.bytes_per_sec as f64) * bw_factor).max(1.0) as u64;
        link.prop_delay += extra_delay;
    }

    /// Set the leaf<->spine link pair's properties outright (both
    /// directions). Unlike [`degrade_link`](LeafSpine::degrade_link) this
    /// can *improve* a link — it is how repair / flap-up schedules and the
    /// fuzzer's best-fabric-state tracking are expressed.
    pub fn set_link(&mut self, l: LeafId, s: SpineId, props: LinkProps) {
        self.up[l.index() * self.n_spines + s.index()] = props;
        self.down[s.index() * self.n_leaves + l.index()] = props;
    }

    /// True if any link differs from any other of its tier (diagnostics).
    ///
    /// Checks all three link populations: leaf->spine uplinks,
    /// spine->leaf downlinks, *and* host NIC links — an earlier version
    /// only compared the uplink/downlink vectors, so a fabric whose only
    /// asymmetry was a degraded host link reported itself symmetric.
    pub fn is_asymmetric(&self) -> bool {
        self.up.windows(2).any(|w| w[0] != w[1])
            || self.down.windows(2).any(|w| w[0] != w[1])
            || self.hosts.windows(2).any(|w| w[0] != w[1])
    }
}

/// Builder for [`LeafSpine`] fabrics.
///
/// The default matches the paper's basic NS2 setup: all links 1 Gbit/s, and
/// per-link propagation delay chosen so the end-to-end round-trip propagation
/// is 100 µs (8 link traversals per round trip).
///
/// ```
/// use tlb_net::{HostId, LeafSpineBuilder};
/// use tlb_engine::SimTime;
///
/// // The paper's §4.2 fabric: 15 equal-cost paths at 1 Gbit/s.
/// let topo = LeafSpineBuilder::new(3, 15, 16)
///     .link_gbps(1.0)
///     .target_rtt(SimTime::from_micros(100))
///     .build();
/// assert_eq!(topo.n_spines(), 15);
/// assert_eq!(topo.min_rtt(HostId(0), HostId(20)), SimTime::from_micros(100));
/// ```
#[derive(Clone, Debug)]
pub struct LeafSpineBuilder {
    n_leaves: usize,
    n_spines: usize,
    hosts_per_leaf: usize,
    link_bytes_per_sec: u64,
    prop_per_link: SimTime,
}

impl LeafSpineBuilder {
    /// Start a fabric with the given switch/host counts.
    pub fn new(n_leaves: usize, n_spines: usize, hosts_per_leaf: usize) -> Self {
        assert!(n_leaves > 0 && n_spines > 0 && hosts_per_leaf > 0);
        LeafSpineBuilder {
            n_leaves,
            n_spines,
            hosts_per_leaf,
            link_bytes_per_sec: 125_000_000,            // 1 Gbit/s
            prop_per_link: SimTime::from_nanos(12_500), // 100 us RTT / 8 hops
        }
    }

    /// Set every link's capacity in Gbit/s.
    pub fn link_gbps(mut self, gbps: f64) -> Self {
        self.link_bytes_per_sec = (gbps * 1e9 / 8.0).round() as u64;
        self
    }

    /// Set every link's capacity in Mbit/s (testbed scenarios).
    pub fn link_mbps(mut self, mbps: f64) -> Self {
        self.link_bytes_per_sec = (mbps * 1e6 / 8.0).round() as u64;
        self
    }

    /// Set the per-link one-way propagation delay directly.
    pub fn prop_per_link(mut self, d: SimTime) -> Self {
        self.prop_per_link = d;
        self
    }

    /// Choose per-link propagation so the host-to-host round-trip
    /// propagation equals `rtt` (divided evenly over the 8 traversals of a
    /// 4-hop path).
    pub fn target_rtt(mut self, rtt: SimTime) -> Self {
        self.prop_per_link = rtt / 8;
        self
    }

    /// Finish building.
    pub fn build(self) -> LeafSpine {
        let link = LinkProps {
            bytes_per_sec: self.link_bytes_per_sec,
            prop_delay: self.prop_per_link,
        };
        LeafSpine {
            n_leaves: self.n_leaves,
            n_spines: self.n_spines,
            hosts_per_leaf: self.hosts_per_leaf,
            hosts: vec![link; self.n_leaves * self.hosts_per_leaf],
            up: vec![link; self.n_leaves * self.n_spines],
            down: vec![link; self.n_spines * self.n_leaves],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn basic() -> LeafSpine {
        // Paper §4.2: 15 equal-cost paths, 1 Gbit/s, 100 us RTT.
        LeafSpineBuilder::new(3, 15, 16)
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(100))
            .build()
    }

    #[test]
    fn dimensions() {
        let t = basic();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.n_spines(), 15);
        assert_eq!(t.n_hosts(), 48);
        assert_eq!(t.hosts_per_leaf(), 16);
    }

    #[test]
    fn leaf_major_numbering() {
        let t = basic();
        assert_eq!(t.leaf_of(HostId(0)), LeafId(0));
        assert_eq!(t.leaf_of(HostId(15)), LeafId(0));
        assert_eq!(t.leaf_of(HostId(16)), LeafId(1));
        assert_eq!(t.host_slot(HostId(17)), 1);
        let under_leaf2: Vec<_> = t.hosts_of(LeafId(2)).collect();
        assert_eq!(under_leaf2.len(), 16);
        assert_eq!(under_leaf2[0], HostId(32));
        assert_eq!(under_leaf2[15], HostId(47));
    }

    #[test]
    fn symmetric_rtt_matches_target() {
        let t = basic();
        let rtt = t.rtt_via(HostId(0), SpineId(7), HostId(20));
        assert_eq!(rtt, SimTime::from_micros(100));
        assert_eq!(t.min_rtt(HostId(0), HostId(20)), SimTime::from_micros(100));
    }

    #[test]
    fn gbps_conversion() {
        let t = basic();
        assert_eq!(t.host_link().bytes_per_sec, 125_000_000);
        let l = LinkProps::mbps(20.0, SimTime::from_millis(1));
        assert_eq!(l.bytes_per_sec, 2_500_000);
    }

    #[test]
    fn degrade_adds_delay_and_cuts_bandwidth() {
        let mut t = basic();
        assert!(!t.is_asymmetric());
        t.degrade_link(LeafId(1), SpineId(3), 0.5, SimTime::from_micros(40));
        assert!(t.is_asymmetric());
        let up = t.uplink(LeafId(1), SpineId(3));
        assert_eq!(up.bytes_per_sec, 62_500_000);
        assert_eq!(
            up.prop_delay,
            SimTime::from_nanos(12_500) + SimTime::from_micros(40)
        );
        // Paired downlink degraded too.
        let down = t.downlink(SpineId(3), LeafId(1));
        assert_eq!(down.bytes_per_sec, 62_500_000);
        // Other links untouched.
        assert_eq!(t.uplink(LeafId(0), SpineId(3)).bytes_per_sec, 125_000_000);
        assert_eq!(t.uplink(LeafId(1), SpineId(2)).bytes_per_sec, 125_000_000);
    }

    #[test]
    fn degraded_path_rtt_grows() {
        let mut t = basic();
        let before = t.rtt_via(HostId(0), SpineId(0), HostId(20));
        t.degrade_link(LeafId(0), SpineId(0), 1.0, SimTime::from_micros(100));
        let after = t.rtt_via(HostId(0), SpineId(0), HostId(20));
        // The degraded hop is crossed twice per round trip (uplink out,
        // downlink back), so the RTT grows by twice the extra delay.
        assert_eq!(after, before + SimTime::from_micros(200));
        // Path via another spine unchanged.
        assert_eq!(t.rtt_via(HostId(0), SpineId(1), HostId(20)), before);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn degrade_rejects_zero_factor() {
        let mut t = basic();
        t.degrade_link(LeafId(0), SpineId(0), 0.0, SimTime::ZERO);
    }

    proptest! {
        /// Every host maps to a valid leaf and back.
        #[test]
        fn prop_host_leaf_roundtrip(
            leaves in 1usize..10,
            spines in 1usize..20,
            hpl in 1usize..40,
        ) {
            let t = LeafSpineBuilder::new(leaves, spines, hpl).build();
            for h in 0..t.n_hosts() {
                let host = HostId::from(h);
                let leaf = t.leaf_of(host);
                prop_assert!(leaf.index() < leaves);
                let slot = t.host_slot(host);
                prop_assert!(slot < hpl);
                prop_assert_eq!(leaf.index() * hpl + slot, h);
            }
        }

        /// RTT via every spine is identical on a symmetric fabric.
        #[test]
        fn prop_symmetric_equal_paths(spines in 1usize..16, rtt_us in 10u64..500) {
            let t = LeafSpineBuilder::new(2, spines, 2)
                .target_rtt(SimTime::from_micros(rtt_us))
                .build();
            let r0 = t.rtt_via(HostId(0), SpineId(0), HostId(2));
            for s in 1..spines {
                prop_assert_eq!(t.rtt_via(HostId(0), SpineId(s as u32), HostId(2)), r0);
            }
        }

        /// The one-way bound is at most half the min RTT on symmetric
        /// fabrics and never grows smaller under link degradation.
        #[test]
        fn prop_one_way_lower_bounds_rtt(
            leaves in 2usize..6,
            spines in 1usize..12,
            extra_us in 0u64..300,
        ) {
            let mut t = LeafSpineBuilder::new(leaves, spines, 2).build();
            let (a, b) = (HostId(0), HostId(2)); // different leaves (hpl=2)
            let one_way = t.min_one_way_delay(a, b);
            prop_assert!(one_way + one_way <= t.min_rtt(a, b));
            t.degrade_link(LeafId(0), SpineId(0), 0.5, SimTime::from_micros(extra_us));
            prop_assert!(t.min_one_way_delay(a, b) >= one_way);
        }
    }

    #[test]
    fn host_link_degradation_is_per_host_and_reported() {
        let mut t = basic();
        assert!(!t.is_asymmetric());
        t.degrade_host_link(HostId(5), 0.25, SimTime::from_micros(10));
        // The audit bug this pins: a fabric whose only asymmetry is a host
        // link must still report asymmetric.
        assert!(t.is_asymmetric(), "host-link asymmetry must be reported");
        let d = t.host_link_of(HostId(5));
        assert_eq!(d.bytes_per_sec, 125_000_000 / 4);
        assert_eq!(
            d.prop_delay,
            SimTime::from_nanos(12_500) + SimTime::from_micros(10)
        );
        // Every other host — including rack mates — keeps pristine links,
        // and the reference accessor still reports host 0's.
        assert_eq!(t.host_link_of(HostId(4)).bytes_per_sec, 125_000_000);
        assert_eq!(t.host_link_of(HostId(6)).bytes_per_sec, 125_000_000);
        assert_eq!(t.host_link().bytes_per_sec, 125_000_000);
    }

    #[test]
    fn host_link_degradation_slows_every_path_of_that_host() {
        let mut t = basic();
        let before_inter = t.min_one_way_delay(HostId(0), HostId(20));
        let before_intra = t.min_one_way_delay(HostId(0), HostId(1));
        t.degrade_host_link(HostId(0), 1.0, SimTime::from_micros(50));
        // Both intra- and inter-rack bounds move by exactly the NIC delta.
        assert_eq!(
            t.min_one_way_delay(HostId(0), HostId(20)),
            before_inter + SimTime::from_micros(50)
        );
        assert_eq!(
            t.min_one_way_delay(HostId(0), HostId(1)),
            before_intra + SimTime::from_micros(50)
        );
        // A pair not involving host 0 is untouched.
        assert_eq!(t.min_one_way_delay(HostId(1), HostId(2)), before_intra);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn degrade_host_link_rejects_zero_factor() {
        let mut t = basic();
        t.degrade_host_link(HostId(0), 0.0, SimTime::ZERO);
    }

    #[test]
    fn set_link_can_improve_and_restores_symmetry() {
        let mut t = basic();
        let pristine = t.uplink(LeafId(0), SpineId(0));
        t.degrade_link(LeafId(0), SpineId(0), 0.5, SimTime::from_micros(40));
        assert!(t.is_asymmetric());
        let fast = LinkProps {
            bytes_per_sec: pristine.bytes_per_sec * 2,
            prop_delay: pristine.prop_delay / 2,
        };
        t.set_link(LeafId(0), SpineId(0), fast);
        assert_eq!(t.uplink(LeafId(0), SpineId(0)), fast);
        assert_eq!(t.downlink(SpineId(0), LeafId(0)), fast);
        t.set_link(LeafId(0), SpineId(0), pristine);
        assert!(!t.is_asymmetric(), "restoring the link restores symmetry");
    }

    #[test]
    fn intra_leaf_one_way_is_two_host_links() {
        let t = basic();
        let d = t.min_one_way_delay(HostId(0), HostId(1));
        assert_eq!(d, t.host_link().prop_delay + t.host_link().prop_delay);
    }
}
