//! Production fabrics behind one abstraction: the k-ary fat tree of
//! "Randomized Load-balanced Routing for Fat-tree Networks" next to the
//! paper's leaf-spine, unified as [`Fabric`].
//!
//! # k-ary fat tree
//!
//! For even `k`: `k` pods, each with `k/2` edge switches and `k/2`
//! aggregation switches, plus `(k/2)²` core switches; every edge switch
//! serves `k/2` hosts, so the fabric carries `k³/4` hosts (k=4 → 16,
//! k=8 → 128, k=16 → 1024). Indexing conventions (all 0-based,
//! `half = k/2`):
//!
//! * host `h`: edge `h / half`, slot `h % half`; edge `e`: pod `e / half`.
//! * aggregation switch `a = p·half + j` (pod `p`, position `j`).
//! * core switch `c = j·half + m`: reachable from every pod's aggregation
//!   switch at position `j` via its uplink `m`; its downlink to pod `p`
//!   lands on aggregation `p·half + j`.
//!
//! Equal-cost paths: `half` choices (the aggregation position `j`) for
//! intra-pod pairs, `half²` choices (`j`, then core uplink `m`) for
//! inter-pod pairs — both fanning out at the *edge* switch, which is why
//! edge and aggregation switches all run a load balancer instance while
//! cores forward deterministically by destination pod.
//!
//! Links are stored once per undirected pair (degradation and failure
//! always apply to both directions in this simulator), unlike
//! [`LeafSpine`]'s historical split up/down vectors.

use crate::ids::{HostId, LeafId, SpineId};
use crate::topology::{LeafSpine, LinkProps};
use tlb_engine::SimTime;

/// A k-ary fat-tree fabric with per-link properties.
#[derive(Clone, Debug)]
pub struct FatTree {
    k: usize,
    /// `hosts[h]`: host NIC <-> edge link.
    hosts: Vec<LinkProps>,
    /// `edge_up[e * half + j]`: edge `e` <-> aggregation `(pod(e), j)`.
    edge_up: Vec<LinkProps>,
    /// `agg_up[a * half + m]`: aggregation `a = (p, j)` <-> core `(j, m)`.
    agg_up: Vec<LinkProps>,
}

impl FatTree {
    /// Arity `k` (even).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// `k / 2`: hosts per edge, edges per pod, uplinks per switch.
    #[inline]
    pub fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of pods (= `k`).
    #[inline]
    pub fn n_pods(&self) -> usize {
        self.k
    }

    /// Number of edge switches (`k²/2`).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.k * self.half()
    }

    /// Number of aggregation switches (`k²/2`).
    #[inline]
    pub fn n_aggs(&self) -> usize {
        self.k * self.half()
    }

    /// Number of core switches (`(k/2)²`).
    #[inline]
    pub fn n_cores(&self) -> usize {
        self.half() * self.half()
    }

    /// Total host count (`k³/4`).
    #[inline]
    pub fn n_hosts(&self) -> usize {
        self.n_edges() * self.half()
    }

    /// The edge switch a host hangs off.
    #[inline]
    pub fn edge_of(&self, h: HostId) -> usize {
        debug_assert!(h.index() < self.n_hosts());
        h.index() / self.half()
    }

    /// A host's port index on its edge switch.
    #[inline]
    pub fn host_slot(&self, h: HostId) -> usize {
        h.index() % self.half()
    }

    /// The pod an edge switch belongs to.
    #[inline]
    pub fn pod_of_edge(&self, e: usize) -> usize {
        e / self.half()
    }

    /// Aggregation switch index for pod `p`, position `j`.
    #[inline]
    pub fn agg_index(&self, p: usize, j: usize) -> usize {
        p * self.half() + j
    }

    /// Core switch index reachable via aggregation position `j`, uplink `m`.
    #[inline]
    pub fn core_index(&self, j: usize, m: usize) -> usize {
        j * self.half() + m
    }

    /// All hosts under an edge switch.
    pub fn hosts_of_edge(&self, e: usize) -> impl Iterator<Item = HostId> {
        let start = e * self.half();
        (start..start + self.half()).map(HostId::from)
    }

    /// A specific host's NIC <-> edge link.
    #[inline]
    pub fn host_link_of(&self, h: HostId) -> LinkProps {
        self.hosts[h.index()]
    }

    /// The edge `e` <-> aggregation `(pod(e), j)` link.
    #[inline]
    pub fn edge_uplink(&self, e: usize, j: usize) -> LinkProps {
        self.edge_up[e * self.half() + j]
    }

    /// The aggregation `a` <-> core link behind uplink `m`.
    #[inline]
    pub fn agg_uplink(&self, a: usize, m: usize) -> LinkProps {
        self.agg_up[a * self.half() + m]
    }

    /// Set an edge uplink's properties (both directions).
    pub fn set_edge_uplink(&mut self, e: usize, j: usize, props: LinkProps) {
        let i = e * self.half() + j;
        self.edge_up[i] = props;
    }

    /// Set an aggregation uplink's properties (both directions).
    pub fn set_agg_uplink(&mut self, a: usize, m: usize, props: LinkProps) {
        let i = a * self.half() + m;
        self.agg_up[i] = props;
    }

    /// Degrade one host's NIC <-> edge link.
    pub fn degrade_host_link(&mut self, h: HostId, bw_factor: f64, extra_delay: SimTime) {
        assert!(
            bw_factor > 0.0 && bw_factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        let link = &mut self.hosts[h.index()];
        link.bytes_per_sec = ((link.bytes_per_sec as f64) * bw_factor).max(1.0) as u64;
        link.prop_delay += extra_delay;
    }

    fn min_inter_edge_delay(&self, e1: usize, e2: usize) -> SimTime {
        let half = self.half();
        let (p1, p2) = (self.pod_of_edge(e1), self.pod_of_edge(e2));
        let mut best: Option<SimTime> = None;
        for j in 0..half {
            let first = self.edge_uplink(e1, j).prop_delay;
            let d = if p1 == p2 {
                first + self.edge_uplink(e2, j).prop_delay
            } else {
                let a1 = self.agg_index(p1, j);
                let a2 = self.agg_index(p2, j);
                let core_leg = (0..half)
                    .map(|m| self.agg_uplink(a1, m).prop_delay + self.agg_uplink(a2, m).prop_delay)
                    .min()
                    .expect("fat tree has no cores");
                first + core_leg + self.edge_uplink(e2, j).prop_delay
            };
            best = Some(best.map_or(d, |b| b.min(d)));
        }
        best.expect("fat tree has no aggregation switches")
    }

    /// Minimum one-way base propagation delay from `src` to `dst` over all
    /// equal-cost paths (excludes serialization and queueing) — the
    /// propagation term of the fuzzer's FCT lower-bound oracle.
    pub fn min_one_way_delay(&self, src: HostId, dst: HostId) -> SimTime {
        let nics = self.host_link_of(src).prop_delay + self.host_link_of(dst).prop_delay;
        let (e1, e2) = (self.edge_of(src), self.edge_of(dst));
        if e1 == e2 {
            return nics;
        }
        nics + self.min_inter_edge_delay(e1, e2)
    }

    /// Minimum base RTT over all paths. Links are undirected, so the best
    /// round trip reuses the best one-way path in both directions.
    pub fn min_rtt(&self, src: HostId, dst: HostId) -> SimTime {
        let one_way = self.min_one_way_delay(src, dst);
        one_way + one_way
    }

    /// True if any link differs from any other of its tier (diagnostics).
    pub fn is_asymmetric(&self) -> bool {
        self.edge_up.windows(2).any(|w| w[0] != w[1])
            || self.agg_up.windows(2).any(|w| w[0] != w[1])
            || self.hosts.windows(2).any(|w| w[0] != w[1])
    }
}

/// Builder for [`FatTree`] fabrics; defaults mirror [`LeafSpineBuilder`]
/// (1 Gbit/s links), with per-link propagation spread over the 12 link
/// traversals of an inter-pod round trip.
///
/// [`LeafSpineBuilder`]: crate::topology::LeafSpineBuilder
///
/// ```
/// use tlb_net::{FatTreeBuilder, HostId};
/// use tlb_engine::SimTime;
///
/// let t = FatTreeBuilder::new(4).target_rtt(SimTime::from_micros(120)).build();
/// assert_eq!(t.n_hosts(), 16);
/// // Hosts 0 and 15 sit in different pods: the full 6-hop path both ways.
/// assert_eq!(t.min_rtt(HostId(0), HostId(15)), SimTime::from_micros(120));
/// ```
#[derive(Clone, Debug)]
pub struct FatTreeBuilder {
    k: usize,
    link_bytes_per_sec: u64,
    prop_per_link: SimTime,
}

impl FatTreeBuilder {
    /// Start a k-ary fat tree. `k` must be even and ≥ 2.
    pub fn new(k: usize) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        FatTreeBuilder {
            k,
            link_bytes_per_sec: 125_000_000,            // 1 Gbit/s
            prop_per_link: SimTime::from_nanos(10_000), // 120 us RTT / 12 hops
        }
    }

    /// Set every link's capacity in Gbit/s.
    pub fn link_gbps(mut self, gbps: f64) -> Self {
        self.link_bytes_per_sec = (gbps * 1e9 / 8.0).round() as u64;
        self
    }

    /// Set the per-link one-way propagation delay directly.
    pub fn prop_per_link(mut self, d: SimTime) -> Self {
        self.prop_per_link = d;
        self
    }

    /// Choose per-link propagation so an *inter-pod* round trip's base
    /// propagation equals `rtt` (12 traversals of a 6-link path).
    pub fn target_rtt(mut self, rtt: SimTime) -> Self {
        self.prop_per_link = rtt / 12;
        self
    }

    /// Finish building.
    pub fn build(self) -> FatTree {
        let link = LinkProps {
            bytes_per_sec: self.link_bytes_per_sec,
            prop_delay: self.prop_per_link,
        };
        let half = self.k / 2;
        let n_edges = self.k * half;
        FatTree {
            k: self.k,
            hosts: vec![link; n_edges * half],
            edge_up: vec![link; n_edges * half],
            agg_up: vec![link; n_edges * half],
        }
    }
}

/// A fabric the simulator can run on: the paper's leaf-spine or a k-ary
/// fat tree, with a uniform query surface.
///
/// Rack-generic vocabulary: a *leaf* is the host-facing switch tier (edge
/// switches in a fat tree), so `n_leaves`/`leaf_of`/`hosts_of` keep their
/// historical names and every workload generator works on both fabrics
/// unchanged. *LB switches* are the switches that own equal-cost uplinks
/// and therefore run a load-balancer instance: leaves in leaf-spine,
/// edge + aggregation switches in a fat tree. Both fabrics have a uniform
/// uplink count per LB switch (`n_spines` / `k/2`), addressed by
/// `(LeafId, SpineId)` pairs reinterpreted as (LB switch, uplink).
#[derive(Clone, Debug)]
pub enum Fabric {
    /// Two-tier leaf-spine (the paper's evaluation fabrics).
    LeafSpine(LeafSpine),
    /// Three-tier k-ary fat tree.
    FatTree(FatTree),
}

impl From<LeafSpine> for Fabric {
    fn from(t: LeafSpine) -> Fabric {
        Fabric::LeafSpine(t)
    }
}

impl From<FatTree> for Fabric {
    fn from(t: FatTree) -> Fabric {
        Fabric::FatTree(t)
    }
}

impl Fabric {
    /// The leaf-spine inside, if that's what this is.
    pub fn as_leaf_spine(&self) -> Option<&LeafSpine> {
        match self {
            Fabric::LeafSpine(t) => Some(t),
            Fabric::FatTree(_) => None,
        }
    }

    /// The fat tree inside, if that's what this is.
    pub fn as_fat_tree(&self) -> Option<&FatTree> {
        match self {
            Fabric::LeafSpine(_) => None,
            Fabric::FatTree(t) => Some(t),
        }
    }

    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.n_hosts(),
            Fabric::FatTree(t) => t.n_hosts(),
        }
    }

    /// Host-facing switches: leaves, or fat-tree edges.
    pub fn n_leaves(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.n_leaves(),
            Fabric::FatTree(t) => t.n_edges(),
        }
    }

    /// Hosts per host-facing switch.
    pub fn hosts_per_leaf(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.hosts_per_leaf(),
            Fabric::FatTree(t) => t.half(),
        }
    }

    /// Equal-cost uplinks per LB switch (spines, or `k/2`).
    pub fn n_spines(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.n_spines(),
            Fabric::FatTree(t) => t.half(),
        }
    }

    /// Switches running a load-balancer instance: leaves, or fat-tree
    /// edges followed by aggregations (in that index order).
    pub fn n_lb_switches(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.n_leaves(),
            Fabric::FatTree(t) => t.n_edges() + t.n_aggs(),
        }
    }

    /// All switches: leaves + spines, or edges + aggregations + cores.
    pub fn n_switches(&self) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.n_leaves() + t.n_spines(),
            Fabric::FatTree(t) => t.n_edges() + t.n_aggs() + t.n_cores(),
        }
    }

    /// The host-facing switch a host hangs off.
    pub fn leaf_of(&self, h: HostId) -> LeafId {
        match self {
            Fabric::LeafSpine(t) => t.leaf_of(h),
            Fabric::FatTree(t) => LeafId(t.edge_of(h) as u32),
        }
    }

    /// A host's port index on its switch.
    pub fn host_slot(&self, h: HostId) -> usize {
        match self {
            Fabric::LeafSpine(t) => t.host_slot(h),
            Fabric::FatTree(t) => t.host_slot(h),
        }
    }

    /// All hosts under a host-facing switch.
    pub fn hosts_of(&self, l: LeafId) -> impl Iterator<Item = HostId> + '_ {
        let (start, n) = match self {
            Fabric::LeafSpine(t) => (l.index() * t.hosts_per_leaf(), t.hosts_per_leaf()),
            Fabric::FatTree(t) => (l.index() * t.half(), t.half()),
        };
        (start..start + n).map(HostId::from)
    }

    /// The reference host link (host 0's; fabrics start uniform).
    pub fn host_link(&self) -> LinkProps {
        self.host_link_of(HostId(0))
    }

    /// A specific host's NIC link.
    pub fn host_link_of(&self, h: HostId) -> LinkProps {
        match self {
            Fabric::LeafSpine(t) => t.host_link_of(h),
            Fabric::FatTree(t) => t.host_link_of(h),
        }
    }

    /// An LB switch's `up`-th uplink. For leaf-spine this is the
    /// leaf->spine link; for a fat tree, edge->aggregation for
    /// `sw < n_edges` and aggregation->core above that.
    pub fn uplink_props(&self, sw: usize, up: usize) -> LinkProps {
        match self {
            Fabric::LeafSpine(t) => t.uplink(LeafId(sw as u32), SpineId(up as u32)),
            Fabric::FatTree(t) => {
                if sw < t.n_edges() {
                    t.edge_uplink(sw, up)
                } else {
                    t.agg_uplink(sw - t.n_edges(), up)
                }
            }
        }
    }

    /// Set an LB switch uplink's properties outright (both directions);
    /// the repair-capable counterpart of [`degrade_link`](Fabric::degrade_link).
    pub fn set_uplink(&mut self, sw: usize, up: usize, props: LinkProps) {
        match self {
            Fabric::LeafSpine(t) => t.set_link(LeafId(sw as u32), SpineId(up as u32), props),
            Fabric::FatTree(t) => {
                if sw < t.n_edges() {
                    t.set_edge_uplink(sw, up, props);
                } else {
                    t.set_agg_uplink(sw - t.n_edges(), up, props);
                }
            }
        }
    }

    /// Degrade an LB switch uplink (both directions): multiply bandwidth
    /// by `bw_factor` ∈ (0, 1] and add `extra_delay`. `(l, s)` is
    /// (LB switch, uplink) — the historical leaf-spine naming.
    pub fn degrade_link(&mut self, l: LeafId, s: SpineId, bw_factor: f64, extra_delay: SimTime) {
        assert!(
            bw_factor > 0.0 && bw_factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        let mut p = self.uplink_props(l.index(), s.index());
        p.bytes_per_sec = ((p.bytes_per_sec as f64) * bw_factor).max(1.0) as u64;
        p.prop_delay += extra_delay;
        self.set_uplink(l.index(), s.index(), p);
    }

    /// Degrade one host's NIC link (both directions).
    pub fn degrade_host_link(&mut self, h: HostId, bw_factor: f64, extra_delay: SimTime) {
        match self {
            Fabric::LeafSpine(t) => t.degrade_host_link(h, bw_factor, extra_delay),
            Fabric::FatTree(t) => t.degrade_host_link(h, bw_factor, extra_delay),
        }
    }

    /// Minimum base RTT over all equal-cost paths.
    pub fn min_rtt(&self, src: HostId, dst: HostId) -> SimTime {
        match self {
            Fabric::LeafSpine(t) => t.min_rtt(src, dst),
            Fabric::FatTree(t) => t.min_rtt(src, dst),
        }
    }

    /// Minimum one-way base propagation delay over all equal-cost paths.
    pub fn min_one_way_delay(&self, src: HostId, dst: HostId) -> SimTime {
        match self {
            Fabric::LeafSpine(t) => t.min_one_way_delay(src, dst),
            Fabric::FatTree(t) => t.min_one_way_delay(src, dst),
        }
    }

    /// True if any same-tier link pair differs (diagnostics).
    pub fn is_asymmetric(&self) -> bool {
        match self {
            Fabric::LeafSpine(t) => t.is_asymmetric(),
            Fabric::FatTree(t) => t.is_asymmetric(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> FatTree {
        FatTreeBuilder::new(4)
            .link_gbps(1.0)
            .target_rtt(SimTime::from_micros(120))
            .build()
    }

    #[test]
    fn k4_dimensions() {
        let t = k4();
        assert_eq!(t.k(), 4);
        assert_eq!(t.n_pods(), 4);
        assert_eq!(t.n_edges(), 8);
        assert_eq!(t.n_aggs(), 8);
        assert_eq!(t.n_cores(), 4);
        assert_eq!(t.n_hosts(), 16);
    }

    #[test]
    fn scale_dimensions() {
        assert_eq!(FatTreeBuilder::new(8).build().n_hosts(), 128);
        assert_eq!(FatTreeBuilder::new(16).build().n_hosts(), 1024);
        assert_eq!(FatTreeBuilder::new(16).build().n_cores(), 64);
    }

    #[test]
    fn host_edge_pod_arithmetic() {
        let t = k4();
        assert_eq!(t.edge_of(HostId(0)), 0);
        assert_eq!(t.edge_of(HostId(3)), 1);
        assert_eq!(t.edge_of(HostId(15)), 7);
        assert_eq!(t.pod_of_edge(0), 0);
        assert_eq!(t.pod_of_edge(3), 1);
        assert_eq!(t.pod_of_edge(7), 3);
        assert_eq!(t.host_slot(HostId(5)), 1);
        let under: Vec<_> = t.hosts_of_edge(2).collect();
        assert_eq!(under, vec![HostId(4), HostId(5)]);
    }

    #[test]
    fn path_delays_by_locality() {
        let t = k4();
        let hop = SimTime::from_micros(10); // 120 us / 12
                                            // Same edge: two NIC hops.
        assert_eq!(t.min_one_way_delay(HostId(0), HostId(1)), hop + hop);
        // Same pod, different edge: NIC + edge->agg + agg->edge + NIC.
        assert_eq!(t.min_one_way_delay(HostId(0), HostId(2)), hop * 4);
        // Different pod: 6 links.
        assert_eq!(t.min_one_way_delay(HostId(0), HostId(15)), hop * 6);
        assert_eq!(t.min_rtt(HostId(0), HostId(15)), SimTime::from_micros(120));
    }

    #[test]
    fn degradation_reroutes_the_minimum() {
        let mut t = k4();
        let before = t.min_one_way_delay(HostId(0), HostId(15));
        // Slow down edge 0's uplink j=0; the j=1 plane keeps the old bound.
        let mut p = t.edge_uplink(0, 0);
        p.prop_delay += SimTime::from_micros(100);
        t.set_edge_uplink(0, 0, p);
        assert!(t.is_asymmetric());
        assert_eq!(t.min_one_way_delay(HostId(0), HostId(15)), before);
        // Slowing the other plane too finally moves the bound.
        let mut q = t.edge_uplink(0, 1);
        q.prop_delay += SimTime::from_micros(100);
        t.set_edge_uplink(0, 1, q);
        assert_eq!(
            t.min_one_way_delay(HostId(0), HostId(15)),
            before + SimTime::from_micros(100)
        );
    }

    #[test]
    fn fabric_surface_agrees_across_variants() {
        let ls: Fabric = crate::topology::LeafSpineBuilder::new(8, 2, 2)
            .build()
            .into();
        let ft: Fabric = k4().into();
        for f in [&ls, &ft] {
            assert_eq!(f.n_hosts(), 16);
            assert_eq!(f.hosts_per_leaf(), 2);
            assert_eq!(f.n_spines(), 2);
            assert_eq!(f.leaf_of(HostId(5)).index(), 2);
            assert_eq!(f.host_slot(HostId(5)), 1);
            let under: Vec<_> = f.hosts_of(LeafId(1)).collect();
            assert_eq!(under, vec![HostId(2), HostId(3)]);
        }
        assert_eq!(ls.n_leaves(), 8);
        assert_eq!(ft.n_leaves(), 8);
        assert_eq!(ls.n_lb_switches(), 8);
        assert_eq!(ft.n_lb_switches(), 16);
        assert_eq!(ft.n_switches(), 20);
    }

    #[test]
    fn fabric_degrade_targets_the_right_tier() {
        let mut f: Fabric = k4().into();
        // LB switch 9 = aggregation 1 (pod 0, j=1); uplink 1 -> core (1,1).
        f.degrade_link(LeafId(9), SpineId(1), 0.5, SimTime::ZERO);
        let t = f.as_fat_tree().unwrap();
        assert_eq!(t.agg_uplink(1, 1).bytes_per_sec, 62_500_000);
        assert_eq!(t.agg_uplink(1, 0).bytes_per_sec, 125_000_000);
        assert_eq!(t.edge_uplink(1, 1).bytes_per_sec, 125_000_000);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_arity_rejected() {
        FatTreeBuilder::new(5);
    }
}
