//! Per-link fair-share rate state for the hybrid fidelity tier.
//!
//! Long flows that leave the packet path (see `tlb-simnet`'s
//! `FidelityKind::Hybrid`) are modeled as fluid transfers: each flow owns a
//! fixed directed-link path and receives the max-min-style rate
//! `min over links l of capacity(l) / n_fluid(l)`, where `n_fluid(l)`
//! counts the fluid flows crossing `l`. Rates depend only on link
//! populations, so they change exactly when a flow joins, leaves, or a
//! link's capacity changes — the driver calls back in at those events and
//! nowhere else (this is the dslab `FairThroughputSharingModel` shape:
//! event-driven recompute, no per-byte work).
//!
//! Fluid flows share capacity only among themselves; coupling with
//! concurrent packet traffic on the same links is the documented modeling
//! approximation the hybrid tolerance bands absorb.
//!
//! Everything is deterministic: iteration orders are insertion orders,
//! arithmetic is plain `f64` evaluated in a fixed order, and every rate
//! change bumps the flow's generation counter so a driver using an FEL
//! without removal can discard stale completion events on pop.

/// Maximum directed links on a fluid path: NIC, two LB uplinks, and the
/// descent (core→agg, agg→edge, edge→host) of a three-tier fat tree.
pub const MAX_FLUID_PATH: usize = 6;

/// One pending rate update the driver turns into a (re)scheduled
/// completion event.
#[derive(Clone, Copy, Debug)]
pub struct RateChange {
    /// The affected fluid flow.
    pub flow: u32,
    /// The flow's generation after this change; completion events carrying
    /// an older generation are stale.
    pub gen: u32,
    /// Absolute completion time in seconds (`now + remaining / rate`).
    pub done_at_s: f64,
}

#[derive(Clone, Copy, Debug)]
struct FluidFlow {
    path: [u32; MAX_FLUID_PATH],
    path_len: u8,
    active: bool,
    /// Bytes still to deliver, advanced lazily at `updated_at`.
    remaining: f64,
    /// Current fair-share rate in bytes/second.
    rate: f64,
    /// When `remaining` was last advanced, in seconds.
    updated_at: f64,
    /// Bumped on every rate change; stale completion events carry an old
    /// value and are ignored by the driver.
    gen: u32,
}

const DEAD: FluidFlow = FluidFlow {
    path: [0; MAX_FLUID_PATH],
    path_len: 0,
    active: false,
    remaining: 0.0,
    rate: 0.0,
    updated_at: 0.0,
    gen: 0,
};

/// The fluid tier's whole state: per-link populations and per-flow rates.
#[derive(Debug)]
pub struct FluidNet {
    /// Per-directed-link capacity in bytes/second.
    caps: Vec<f64>,
    /// Live fluid flows crossing each link.
    n_on: Vec<u32>,
    /// Flow ids crossing each link (lazily deleted: entries whose flow is
    /// no longer active are skipped and periodically compacted).
    on_link: Vec<Vec<u32>>,
    /// Dead entries per `on_link` list, for compaction scheduling.
    dead_on: Vec<u32>,
    flows: Vec<FluidFlow>,
    /// Scratch epoch marks for deduplicating affected-flow scans.
    touched: Vec<u64>,
    epoch: u64,
    /// Pending rate changes since the last [`FluidNet::take_changes`].
    changes: Vec<RateChange>,
    active: usize,
    peak_active: usize,
}

impl FluidNet {
    /// Fluid state for `n_links` directed links and up to `n_flows` flows.
    /// Capacities start at zero; the driver sets them before any join.
    pub fn new(n_links: usize, n_flows: usize) -> FluidNet {
        FluidNet {
            caps: vec![0.0; n_links],
            n_on: vec![0; n_links],
            on_link: vec![Vec::new(); n_links],
            dead_on: vec![0; n_links],
            flows: vec![DEAD; n_flows],
            touched: vec![0; n_flows],
            epoch: 0,
            changes: Vec::new(),
            active: 0,
            peak_active: 0,
        }
    }

    /// Set a directed link's capacity (bytes/second). Call
    /// [`FluidNet::touch_link`] afterwards if flows may already cross it.
    pub fn set_capacity(&mut self, link: u32, bytes_per_sec: f64) {
        self.caps[link as usize] = bytes_per_sec;
    }

    /// Whether `flow` is currently in the fluid tier.
    #[inline]
    pub fn is_active(&self, flow: u32) -> bool {
        self.flows[flow as usize].active
    }

    /// `flow`'s current generation (valid while active).
    #[inline]
    pub fn gen(&self, flow: u32) -> u32 {
        self.flows[flow as usize].gen
    }

    /// Live fluid flows right now.
    #[inline]
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// High-water mark of concurrently live fluid flows.
    #[inline]
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Run `f` for every active fluid flow and its path (insertion order of
    /// flow ids — deterministic).
    pub fn for_each_active(&self, mut f: impl FnMut(u32, &[u32])) {
        for (i, fl) in self.flows.iter().enumerate() {
            if fl.active {
                f(i as u32, &fl.path[..fl.path_len as usize]);
            }
        }
    }

    /// Enter `flow` into the fluid tier with `bytes` to deliver over
    /// `path` (directed links). Emits rate changes for the joiner and every
    /// flow sharing a path link.
    pub fn join(&mut self, flow: u32, path: &[u32], bytes: f64, now_s: f64) {
        let fi = flow as usize;
        assert!(!self.flows[fi].active, "fluid join of an active flow");
        assert!(
            !path.is_empty() && path.len() <= MAX_FLUID_PATH,
            "fluid path length {} out of range",
            path.len()
        );
        assert!(bytes > 0.0, "fluid join with no bytes");
        // Advance sharers at their old rates before the populations move.
        self.begin_scan();
        for &l in path {
            self.collect_on(l, now_s);
        }
        // Populations: the joiner enters every path link.
        for &l in path {
            self.n_on[l as usize] += 1;
            self.on_link[l as usize].push(flow);
        }
        let mut fixed = [0u32; MAX_FLUID_PATH];
        fixed[..path.len()].copy_from_slice(path);
        let f = &mut self.flows[fi];
        f.path = fixed;
        f.path_len = path.len() as u8;
        f.active = true;
        f.remaining = bytes;
        f.updated_at = now_s;
        f.rate = 0.0;
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        // New rates for the joiner and everything it displaced.
        self.rerate(flow, now_s);
        self.finish_scan(now_s);
    }

    /// Remove `flow` from the fluid tier (completion or demotion back to
    /// the packet path), returning the bytes it still had to deliver.
    /// Sharers get their freed share back via emitted rate changes.
    pub fn leave(&mut self, flow: u32, now_s: f64) -> f64 {
        let fi = flow as usize;
        assert!(self.flows[fi].active, "fluid leave of an inactive flow");
        self.advance(flow, now_s);
        let remaining = self.flows[fi].remaining;
        let path = self.flows[fi].path;
        let path_len = self.flows[fi].path_len as usize;
        // Advance sharers before the populations move; the leaver itself is
        // already advanced and must not be re-rated, so mark it first.
        self.begin_scan();
        self.touched[fi] = self.epoch;
        for &l in &path[..path_len] {
            self.collect_on(l, now_s);
        }
        for &l in &path[..path_len] {
            self.n_on[l as usize] -= 1;
            self.dead_on[l as usize] += 1;
        }
        self.flows[fi] = FluidFlow {
            gen: self.flows[fi].gen + 1,
            ..DEAD
        };
        self.active -= 1;
        self.finish_scan(now_s);
        for &l in &path[..path_len] {
            self.maybe_compact(l);
        }
        remaining
    }

    /// A link's capacity changed (degradation/repair): re-rate every flow
    /// crossing it.
    pub fn touch_link(&mut self, link: u32, now_s: f64) {
        self.begin_scan();
        self.collect_on(link, now_s);
        self.finish_scan(now_s);
    }

    /// Drain the pending rate changes (deterministic order). The driver
    /// schedules one completion event per entry.
    pub fn take_changes(&mut self, into: &mut Vec<RateChange>) {
        into.append(&mut self.changes);
    }

    // ---- internals -------------------------------------------------------

    fn begin_scan(&mut self) {
        self.epoch += 1;
    }

    /// Advance every not-yet-touched flow on `link` at its old rate and
    /// mark it for re-rating in [`FluidNet::finish_scan`].
    fn collect_on(&mut self, link: u32, now_s: f64) {
        let li = link as usize;
        let mut list = std::mem::take(&mut self.on_link[li]);
        for &f in &list {
            let fi = f as usize;
            if !self.flows[fi].active || self.touched[fi] == self.epoch {
                continue;
            }
            self.touched[fi] = self.epoch;
            self.advance(f, now_s);
        }
        std::mem::swap(&mut self.on_link[li], &mut list);
    }

    /// Re-rate every flow marked in this scan (the whole affected set),
    /// in flow-id order for determinism.
    fn finish_scan(&mut self, now_s: f64) {
        for fi in 0..self.flows.len() {
            if self.touched[fi] == self.epoch && self.flows[fi].active {
                self.rerate(fi as u32, now_s);
            }
        }
    }

    /// Move `flow`'s byte clock to `now_s` at its current rate.
    fn advance(&mut self, flow: u32, now_s: f64) {
        let f = &mut self.flows[flow as usize];
        let dt = now_s - f.updated_at;
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.updated_at = now_s;
    }

    /// Recompute `flow`'s fair share from current populations, bump its
    /// generation, and emit the change.
    fn rerate(&mut self, flow: u32, now_s: f64) {
        let fi = flow as usize;
        let (path, path_len) = (self.flows[fi].path, self.flows[fi].path_len as usize);
        let mut rate = f64::INFINITY;
        for &l in &path[..path_len] {
            let li = l as usize;
            debug_assert!(self.n_on[li] > 0, "flow on a link with zero population");
            rate = rate.min(self.caps[li] / self.n_on[li] as f64);
        }
        assert!(
            rate.is_finite() && rate > 0.0,
            "fluid rate must be positive (zero-capacity link on a fluid path?)"
        );
        let f = &mut self.flows[fi];
        f.rate = rate;
        f.gen += 1;
        debug_assert_eq!(f.updated_at, now_s, "rerate before advance");
        self.changes.push(RateChange {
            flow,
            gen: f.gen,
            done_at_s: now_s + f.remaining / rate,
        });
    }

    /// Compact `link`'s flow list once most entries are dead, so long runs
    /// with high flow churn keep the scan cost proportional to the live
    /// population.
    fn maybe_compact(&mut self, link: u32) {
        let li = link as usize;
        let dead = self.dead_on[li] as usize;
        if dead > 8 && dead * 2 > self.on_link[li].len() {
            let flows = &self.flows;
            self.on_link[li].retain(|&f| flows[f as usize].active);
            self.dead_on[li] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_change_for(net: &mut FluidNet, flow: u32) -> RateChange {
        let mut ch = Vec::new();
        net.take_changes(&mut ch);
        *ch.iter()
            .rev()
            .find(|c| c.flow == flow)
            .expect("no change for flow")
    }

    #[test]
    fn lone_flow_gets_full_capacity() {
        let mut net = FluidNet::new(3, 4);
        for l in 0..3 {
            net.set_capacity(l, 1000.0);
        }
        net.join(0, &[0, 1, 2], 500.0, 1.0);
        let c = last_change_for(&mut net, 0);
        assert_eq!(c.gen, 1);
        assert!((c.done_at_s - 1.5).abs() < 1e-12, "500 B at 1000 B/s");
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn sharing_halves_the_rate_and_leaving_restores_it() {
        let mut net = FluidNet::new(2, 4);
        net.set_capacity(0, 1000.0);
        net.set_capacity(1, 1000.0);
        net.join(0, &[0], 1000.0, 0.0);
        // Flow 1 shares link 0: both drop to 500 B/s.
        net.join(1, &[0, 1], 1000.0, 0.0);
        let mut ch = Vec::new();
        net.take_changes(&mut ch);
        let c0 = ch.iter().rev().find(|c| c.flow == 0).unwrap();
        assert!((c0.done_at_s - 2.0).abs() < 1e-12, "1000 B at 500 B/s");
        // At t=1, flow 1 leaves with 500 B left; flow 0 also has 500 B
        // left and speeds back up to 1000 B/s -> done at 1.5.
        let rem = net.leave(1, 1.0);
        assert!((rem - 500.0).abs() < 1e-12);
        let c0 = last_change_for(&mut net, 0);
        assert!((c0.done_at_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_the_min_share_across_the_path() {
        let mut net = FluidNet::new(2, 4);
        net.set_capacity(0, 1000.0);
        net.set_capacity(1, 100.0);
        net.join(0, &[0, 1], 200.0, 0.0);
        let c = last_change_for(&mut net, 0);
        assert!((c.done_at_s - 2.0).abs() < 1e-12, "200 B at 100 B/s");
    }

    #[test]
    fn capacity_touch_rerates_only_crossing_flows() {
        let mut net = FluidNet::new(2, 4);
        net.set_capacity(0, 1000.0);
        net.set_capacity(1, 1000.0);
        net.join(0, &[0], 1000.0, 0.0);
        net.join(1, &[1], 1000.0, 0.0);
        let mut ch = Vec::new();
        net.take_changes(&mut ch);
        net.set_capacity(0, 500.0);
        net.touch_link(0, 1.0);
        ch.clear();
        net.take_changes(&mut ch);
        assert_eq!(ch.len(), 1, "only the crossing flow re-rates");
        assert_eq!(ch[0].flow, 0);
        // 1000 B of flow 0: 1 s at 1000 B/s leaves 0... it finished at
        // t=1.0 exactly; remaining clamped to 0 -> done immediately.
        assert!((ch[0].done_at_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generations_increase_monotonically() {
        let mut net = FluidNet::new(1, 4);
        net.set_capacity(0, 1000.0);
        net.join(0, &[0], 1000.0, 0.0);
        net.join(1, &[0], 1000.0, 0.0);
        net.join(2, &[0], 1000.0, 0.0);
        let mut ch = Vec::new();
        net.take_changes(&mut ch);
        let gens: Vec<u32> = ch.iter().filter(|c| c.flow == 0).map(|c| c.gen).collect();
        assert_eq!(gens, vec![1, 2, 3], "one bump per membership change");
        assert_eq!(net.gen(0), 3);
    }

    #[test]
    fn churn_compacts_link_lists() {
        let mut net = FluidNet::new(1, 64);
        net.set_capacity(0, 1000.0);
        for f in 0..40 {
            net.join(f, &[0], 10.0, f as f64);
            if f >= 1 {
                net.leave(f - 1, f as f64);
            }
        }
        assert_eq!(net.active_flows(), 1);
        assert!(net.peak_active() >= 2);
        // The lazy list must have been compacted well below 40 entries.
        assert!(net.on_link[0].len() < 20, "len {}", net.on_link[0].len());
    }
}
