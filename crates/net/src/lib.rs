//! # tlb-net — network primitives for the TLB simulator
//!
//! Identifiers, packet representation, link properties and the leaf-spine
//! topology the paper evaluates on (§2.2, §4.2, §6.2, §7), including the
//! asymmetric variants of Fig. 16/17 built by degrading individual
//! leaf-to-spine links.

pub mod arena;
pub mod fabric;
pub mod fluid;
pub mod ids;
pub mod packet;
pub mod topology;

pub use arena::{PacketArena, PacketSlot};
pub use fabric::{Fabric, FatTree, FatTreeBuilder};
pub use fluid::{FluidNet, RateChange, MAX_FLUID_PATH};
pub use ids::{FlowId, HostId, LeafId, SpineId};
pub use packet::{Packet, PktKind};
pub use topology::{LeafSpine, LeafSpineBuilder, LinkProps};
