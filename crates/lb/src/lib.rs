//! # tlb-lb — baseline data-center load balancers
//!
//! The comparison schemes the paper evaluates TLB against (§6, §7), plus the
//! two related designs discussed in §8:
//!
//! * [`Ecmp`] — flow granularity: static hash onto one uplink.
//! * [`Rps`] — packet granularity: uniform-random uplink per packet.
//! * [`Presto`] — 64 KB flowcell granularity, round-robin across uplinks.
//! * [`LetFlow`] — flowlet granularity: re-pick a random uplink after an
//!   inactivity gap.
//! * [`Drill`] — packet granularity with power-of-two-choices queue sampling
//!   plus memory (extension; paper §8).
//! * [`CongaLite`] — flowlet granularity with least-loaded (not random) path
//!   choice; a switch-local stand-in for CONGA's leaf-to-leaf feedback
//!   (extension; paper §8, simplification documented in DESIGN.md).
//! * [`FlowBender`] — flow granularity with congestion-triggered rehashing
//!   (extension; paper §8).
//! * [`HermesLite`] — cautious size-gated rerouting (extension; paper §8
//!   contrasts TLB with Hermes directly).
//! * [`Wcmp`] — capacity-weighted flow hashing: the static (topology-aware,
//!   traffic-blind) answer to asymmetry (extension).
//! * [`DiffFlow`] — static short/long split: spray the short flows, pin the
//!   long ones once they cross a fixed size threshold (extension).
//!
//! All of them implement [`tlb_switch::LoadBalancer`]; the TLB scheme itself
//! lives in the `tlb-core` crate.

pub mod conga;
pub mod diffflow;
pub mod drill;
pub mod ecmp;
pub mod flowbender;
pub mod hermes;
pub mod letflow;
pub mod presto;
pub mod rps;
pub mod wcmp;

pub use conga::CongaLite;
pub use diffflow::DiffFlow;
pub use drill::Drill;
pub use ecmp::Ecmp;
pub use flowbender::FlowBender;
pub use hermes::HermesLite;
pub use letflow::LetFlow;
pub use presto::Presto;
pub use rps::Rps;
pub use wcmp::Wcmp;
