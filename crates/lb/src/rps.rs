//! RPS: random packet spraying (Dixit et al., INFOCOM 2013).

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{LoadBalancer, PortView};

/// Random Packet Spraying: every packet independently takes a uniformly
/// random uplink. Maximizes instantaneous balance and link utilization but
/// reorders heavily whenever path delays diverge (§2.2, Fig. 3(b)).
#[derive(Clone, Debug, Default)]
pub struct Rps;

impl Rps {
    /// A new sprayer (stateless).
    pub fn new() -> Rps {
        Rps
    }
}

impl LoadBalancer for Rps {
    fn name(&self) -> &'static str {
        "RPS"
    }

    fn choose_uplink(
        &mut self,
        _pkt: &Packet,
        view: PortView<'_>,
        _now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        // Spray over the live uplinks only. With a full mask this draws the
        // identical random index the unmasked code drew.
        view.nth_live(rng.index(view.n_live()))
    }

    fn state_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports(n: usize) -> Vec<OutPort> {
        (0..n)
            .map(|_| {
                OutPort::new(
                    LinkProps::gbps(1.0, SimTime::ZERO),
                    QueueCfg {
                        capacity_pkts: 64,
                        ecn_threshold_pkts: None,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn covers_all_ports_uniformly() {
        let ps = ports(5);
        let mut lb = Rps::new();
        let mut rng = SimRng::new(7);
        let pkt = Packet::data(FlowId(1), HostId(0), HostId(9), 0, 1460, 40, SimTime::ZERO);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[lb.choose_uplink(&pkt, PortView::new(&ps), SimTime::ZERO, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn single_flow_uses_many_ports() {
        // Unlike ECMP, one flow's packets must spread.
        let ps = ports(8);
        let mut lb = Rps::new();
        let mut rng = SimRng::new(3);
        let mut used = [false; 8];
        for seq in 0..64 {
            let pkt = Packet::data(
                FlowId(1),
                HostId(0),
                HostId(9),
                seq,
                1460,
                40,
                SimTime::ZERO,
            );
            used[lb.choose_uplink(&pkt, PortView::new(&ps), SimTime::ZERO, &mut rng)] = true;
        }
        assert!(used.iter().filter(|&&u| u).count() >= 6);
    }
}
