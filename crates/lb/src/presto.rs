//! Presto: fixed-size flowcell switching (He et al., SIGCOMM 2015).

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{FlowMap, LoadBalancer, PortView};

/// Per-flow Presto state: current uplink and payload bytes sent into the
/// current flowcell.
#[derive(Clone, Copy, Debug)]
struct Cell {
    port: usize,
    cell_bytes: u64,
}

/// Presto switches every flow — short or long alike — in fixed 64 KB
/// "flowcells", advancing round-robin over the uplinks at each cell
/// boundary. Congestion-oblivious (§8): the next port does not depend on
/// queue state.
///
/// The original Presto runs at the vSwitch; hosting it at the leaf switch is
/// equivalent for a leaf-spine fabric where the leaf makes the only
/// multipath choice.
#[derive(Debug)]
pub struct Presto {
    cell_limit: u64,
    flows: FlowMap<Cell>,
    /// Round-robin cursor shared across flows, so simultaneous cells from
    /// different flows land on different uplinks.
    rr_next: usize,
    idle_timeout: SimTime,
    /// Cells moved off a dead uplink before their cell boundary.
    forced: u64,
}

impl Presto {
    /// Presto's published default: 64 KB flowcells.
    pub const DEFAULT_CELL_BYTES: u64 = 64 * 1024;

    /// A Presto balancer with the given cell size.
    pub fn new(cell_bytes: u64) -> Presto {
        assert!(cell_bytes > 0);
        Presto {
            cell_limit: cell_bytes,
            flows: FlowMap::new(),
            rr_next: 0,
            idle_timeout: SimTime::from_millis(10),
            forced: 0,
        }
    }

    /// Advance `i` (mod the port count) to the next live uplink. With a full
    /// mask this returns `i` immediately — the historical behaviour.
    #[inline]
    fn next_live(view: &PortView<'_>, mut i: usize) -> usize {
        let n = view.n_ports();
        loop {
            if view.is_live(i) {
                return i;
            }
            i = (i + 1) % n;
        }
    }

    /// Default 64 KB-cell instance.
    pub fn default_cells() -> Presto {
        Presto::new(Self::DEFAULT_CELL_BYTES)
    }
}

impl LoadBalancer for Presto {
    fn name(&self) -> &'static str {
        "Presto"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        _rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        let rr0 = Self::next_live(&view, self.rr_next % n);
        let mut inserted = false;
        let entry = self.flows.touch_or_insert_with(pkt.flow, now, || {
            inserted = true;
            Cell {
                port: rr0,
                cell_bytes: 0,
            }
        });
        if inserted {
            // New flow: it consumed the RR cursor for its first cell.
            self.rr_next = (rr0 + 1) % n;
        } else if entry.cell_bytes >= self.cell_limit || !view.is_live(entry.port % n) {
            // Cell boundary — or the cached uplink died mid-cell, which
            // forces an early boundary. Either way move to the next live
            // uplink in round-robin order.
            if entry.cell_bytes < self.cell_limit {
                self.forced += 1;
            }
            entry.cell_bytes = 0;
            entry.port = Self::next_live(&view, self.rr_next % n);
            self.rr_next = (entry.port + 1) % n;
        }
        entry.cell_bytes += pkt.payload_bytes as u64;
        entry.port % n
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, self.idle_timeout);
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes() + 2 * std::mem::size_of::<usize>()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports(n: usize) -> Vec<OutPort> {
        (0..n)
            .map(|_| {
                OutPort::new(
                    LinkProps::gbps(1.0, SimTime::ZERO),
                    QueueCfg {
                        capacity_pkts: 64,
                        ecn_threshold_pkts: None,
                    },
                )
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    #[test]
    fn stays_within_cell_then_moves() {
        let ps = ports(4);
        let mut lb = Presto::new(10 * 1460); // 10-packet cells for the test
        let mut rng = SimRng::new(0);
        let mut seen = Vec::new();
        for seq in 0..30 {
            seen.push(lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng));
        }
        // First 10 packets on one port, next 10 on another, etc.
        let first = seen[0];
        assert!(seen[..10].iter().all(|&p| p == first));
        let second = seen[10];
        assert_ne!(second, first);
        assert!(seen[10..20].iter().all(|&p| p == second));
        let third = seen[20];
        assert_ne!(third, second);
    }

    #[test]
    fn cells_advance_round_robin() {
        let ps = ports(4);
        let mut lb = Presto::new(1460);
        let mut rng = SimRng::new(0);
        // One flow, 1-packet cells: ports must cycle 0,1,2,3,0...
        let seq_ports: Vec<usize> = (0..8)
            .map(|s| lb.choose_uplink(&data(1, s), PortView::new(&ps), SimTime::ZERO, &mut rng))
            .collect();
        for w in seq_ports.windows(2) {
            assert_ne!(w[0], w[1], "adjacent cells must differ: {seq_ports:?}");
        }
    }

    #[test]
    fn flows_start_on_distinct_ports() {
        let ps = ports(4);
        let mut lb = Presto::default_cells();
        let mut rng = SimRng::new(0);
        let mut firsts = Vec::new();
        for f in 0..4 {
            firsts.push(lb.choose_uplink(&data(f, 0), PortView::new(&ps), SimTime::ZERO, &mut rng));
        }
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "RR start ports collided: {firsts:?}");
    }

    #[test]
    fn acks_do_not_advance_cells() {
        let ps = ports(4);
        let mut lb = Presto::new(1460);
        let mut rng = SimRng::new(0);
        let ack = Packet::control(
            FlowId(2),
            HostId(9),
            HostId(0),
            tlb_net::PktKind::Ack,
            0,
            SimTime::ZERO,
        );
        let p0 = lb.choose_uplink(&ack, PortView::new(&ps), SimTime::ZERO, &mut rng);
        for _ in 0..20 {
            assert_eq!(
                lb.choose_uplink(&ack, PortView::new(&ps), SimTime::ZERO, &mut rng),
                p0,
                "zero-payload packets must stay in the first cell"
            );
        }
    }

    #[test]
    fn idle_flows_get_purged() {
        let ps = ports(2);
        let mut lb = Presto::default_cells();
        let mut rng = SimRng::new(0);
        lb.choose_uplink(&data(1, 0), PortView::new(&ps), SimTime::ZERO, &mut rng);
        assert!(lb.state_bytes() > 0);
        lb.on_tick(PortView::new(&ps), SimTime::from_secs(1));
        assert_eq!(lb.flows.len(), 0);
    }
}
