//! WCMP: weighted ECMP (extension). The static answer to asymmetry —
//! hash flows onto uplinks with probability proportional to each link's
//! capacity, so a half-bandwidth link gets half the flows. No reordering,
//! no adaptivity: the baseline that separates "knowing the topology" from
//! "sensing the traffic" in the Fig. 16/17 comparisons.

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{FlowMap, LoadBalancer, PortView};

/// Capacity-weighted flow-level hashing. The flow→port map is drawn once
/// per flow (weighted by `link_bytes_per_sec`) and pinned, ECMP-style.
#[derive(Debug)]
pub struct Wcmp {
    flows: FlowMap<usize>,
    /// Flows re-drawn because their pinned uplink died.
    forced: u64,
}

impl Wcmp {
    /// A new WCMP balancer.
    pub fn new() -> Wcmp {
        Wcmp {
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    fn weighted_pick(view: &PortView<'_>, rng: &mut SimRng) -> usize {
        let n = view.n_ports();
        let total: u64 = (0..n)
            .filter(|&i| view.is_live(i))
            .map(|i| view.link_bytes_per_sec(i))
            .sum();
        if total == 0 {
            return view.nth_live(rng.index(view.n_live()));
        }
        let mut x = rng.gen_range(total);
        let mut last = 0;
        for i in 0..n {
            if !view.is_live(i) {
                continue;
            }
            let w = view.link_bytes_per_sec(i);
            if x < w {
                return i;
            }
            x -= w;
            last = i;
        }
        last
    }
}

impl Default for Wcmp {
    fn default() -> Self {
        Wcmp::new()
    }
}

impl LoadBalancer for Wcmp {
    fn name(&self) -> &'static str {
        "WCMP"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        if let Some(entry) = self.flows.touch(pkt.flow, now) {
            let pinned = *entry % n;
            if view.is_live(pinned) {
                return pinned;
            }
            // The pinned uplink died: re-draw from the live capacity
            // distribution and re-pin.
            let port = Self::weighted_pick(&view, rng);
            *entry = port;
            self.forced += 1;
            return port;
        }
        let port = Self::weighted_pick(&view, rng);
        self.flows.touch_or_insert_with(pkt.flow, now, || port);
        port
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports_with_bw(gbps: &[f64]) -> Vec<OutPort> {
        let cfg = QueueCfg {
            capacity_pkts: 64,
            ecn_threshold_pkts: None,
        };
        gbps.iter()
            .map(|&g| OutPort::new(LinkProps::gbps(g, SimTime::ZERO), cfg))
            .collect()
    }

    fn data(flow: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            0,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    #[test]
    fn flows_are_pinned() {
        let ps = ports_with_bw(&[1.0, 1.0, 1.0]);
        let mut lb = Wcmp::new();
        let mut rng = SimRng::new(1);
        let p0 = lb.choose_uplink(&data(1), PortView::new(&ps), SimTime::ZERO, &mut rng);
        for _ in 0..50 {
            assert_eq!(
                lb.choose_uplink(&data(1), PortView::new(&ps), SimTime::ZERO, &mut rng),
                p0
            );
        }
    }

    #[test]
    fn weights_follow_capacity() {
        // Port 0 at 1 Gbit/s, port 1 at 0.25 Gbit/s: expect an 80/20 split.
        let ps = ports_with_bw(&[1.0, 0.25]);
        let mut lb = Wcmp::new();
        let mut rng = SimRng::new(2);
        let mut on_fast = 0;
        let n = 5000;
        for f in 0..n {
            if lb.choose_uplink(&data(f), PortView::new(&ps), SimTime::ZERO, &mut rng) == 0 {
                on_fast += 1;
            }
        }
        let frac = on_fast as f64 / n as f64;
        assert!(
            (0.76..0.84).contains(&frac),
            "fast-link share {frac}, expected ~0.8"
        );
    }

    #[test]
    fn symmetric_weights_spread_evenly() {
        let ps = ports_with_bw(&[1.0; 8]);
        let mut lb = Wcmp::new();
        let mut rng = SimRng::new(3);
        let mut counts = [0usize; 8];
        for f in 0..8000 {
            counts[lb.choose_uplink(&data(f), PortView::new(&ps), SimTime::ZERO, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }
}
