//! Hermes-lite: cautious, comprehensively-sensed rerouting (Zhang et al.,
//! SIGCOMM 2017). Extension baseline — the paper's §8 contrasts TLB against
//! Hermes directly ("Hermes reroutes flows only when the size sent exceeds
//! a given threshold and cautiously makes rerouting decisions only when it
//! will be benefit").
//!
//! Real Hermes is end-host based and senses ECN/RTT/retransmissions; this
//! leaf-local variant keeps its two signature rules:
//!
//! 1. **Size gating** — a flow may only be rerouted after it has sent more
//!    than `reroute_size_bytes` (avoids reordering short flows);
//! 2. **Cautious benefit check** — reroute only when the current path is
//!    congested *and* the best alternative is at least
//!    `benefit_factor`× shorter, so marginal moves (which cost reordering
//!    but gain little) are skipped.

use tlb_engine::{SimRng, SimTime};
use tlb_net::{Packet, PktKind};
use tlb_switch::{FlowMap, LoadBalancer, PortView};

#[derive(Clone, Copy, Debug)]
struct HermesState {
    port: usize,
    sent_bytes: u64,
}

/// Cautious flow-level rerouting with size gating and a benefit test.
#[derive(Debug)]
pub struct HermesLite {
    /// Bytes a flow must have sent before it becomes reroutable.
    reroute_size_bytes: u64,
    /// Queue length (packets) above which the current path counts as
    /// congested.
    congested_pkts: usize,
    /// Required improvement: reroute only if
    /// `best_qlen * benefit_factor <= cur_qlen`.
    benefit_factor: f64,
    flows: FlowMap<HermesState>,
    /// Flows moved off a dead uplink, bypassing the size gate and benefit
    /// check (the old path no longer exists, caution does not apply).
    forced: u64,
}

impl HermesLite {
    /// A Hermes-lite instance with explicit parameters.
    pub fn new(reroute_size_bytes: u64, congested_pkts: usize, benefit_factor: f64) -> HermesLite {
        assert!(benefit_factor >= 1.0, "benefit factor must be >= 1");
        HermesLite {
            reroute_size_bytes,
            congested_pkts,
            benefit_factor,
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    /// Defaults in the spirit of the Hermes paper: 100 KB size gate,
    /// DCTCP-threshold congestion sensing, 2× benefit requirement.
    pub fn paper_default() -> HermesLite {
        HermesLite::new(100_000, 20, 2.0)
    }
}

impl LoadBalancer for HermesLite {
    fn name(&self) -> &'static str {
        "Hermes-lite"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        // New flows start ECMP-like: uniform over the live uplinks.
        let initial = view.nth_live(rng.index(view.n_live()));
        let st = self
            .flows
            .touch_or_insert_with(pkt.flow, now, || HermesState {
                port: initial,
                sent_bytes: 0,
            });
        let mut cur = st.port % n;
        if pkt.kind == PktKind::Data {
            st.sent_bytes += pkt.payload_bytes as u64;
        }
        if !view.is_live(cur) {
            // Dead uplink: move to the (live) shortest queue regardless of
            // size gate or benefit — there is nothing to stay cautious about.
            cur = view.shortest_bytes_rand(rng);
            st.port = cur;
            self.forced += 1;
            return cur;
        }
        // Size gate: young flows never move.
        if st.sent_bytes <= self.reroute_size_bytes {
            return cur;
        }
        // Cautious reroute: current path congested AND clear benefit.
        let cur_len = view.qlen_pkts(cur);
        if cur_len < self.congested_pkts {
            return cur;
        }
        let best = view.shortest_bytes_rand(rng);
        let best_len = view.qlen_pkts(best);
        if (best_len as f64) * self.benefit_factor <= cur_len as f64 {
            st.port = best;
            best
        } else {
            cur
        }
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 4096,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&l| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..l {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    /// Pump enough data through flow 1 to pass the 100 kB size gate.
    fn warm_up(lb: &mut HermesLite, ps: &[OutPort], rng: &mut SimRng) -> usize {
        let mut port = 0;
        for seq in 0..70 {
            port = lb.choose_uplink(&data(1, seq), PortView::new(ps), us(seq as u64), rng);
        }
        port
    }

    #[test]
    fn young_flows_never_move() {
        // Flow under 100 kB stays put even on a congested path.
        let mut lb = HermesLite::paper_default();
        let mut rng = SimRng::new(1);
        let ps = ports_with_lens(&[0, 0, 0]);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        let mut lens = [0usize; 3];
        lens[p0] = 100; // heavily congested
        let congested = ports_with_lens(&lens);
        for seq in 1..30 {
            // 30 * 1460 B < 100 kB: still gated.
            assert_eq!(
                lb.choose_uplink(
                    &data(1, seq),
                    PortView::new(&congested),
                    us(seq as u64),
                    &mut rng
                ),
                p0
            );
        }
    }

    #[test]
    fn mature_flow_moves_only_with_clear_benefit() {
        let mut lb = HermesLite::paper_default();
        let mut rng = SimRng::new(2);
        let ps = ports_with_lens(&[0, 0, 0]);
        let p0 = warm_up(&mut lb, &ps, &mut rng);

        // Congested, but the alternative is barely better: stay (cautious).
        let mut lens = [0usize; 3];
        lens.iter_mut().for_each(|l| *l = 22);
        lens[p0] = 25;
        let marginal = ports_with_lens(&lens);
        assert_eq!(
            lb.choose_uplink(&data(1, 100), PortView::new(&marginal), us(1000), &mut rng),
            p0,
            "marginal improvement must not trigger a move"
        );

        // Congested with a clearly better path: move.
        let mut lens = [0usize; 3];
        lens[p0] = 30;
        let clear = ports_with_lens(&lens);
        let new_port = lb.choose_uplink(&data(1, 101), PortView::new(&clear), us(2000), &mut rng);
        assert_ne!(new_port, p0, "2x-better path must attract the flow");
    }

    #[test]
    fn uncongested_mature_flow_stays() {
        let mut lb = HermesLite::paper_default();
        let mut rng = SimRng::new(3);
        let ps = ports_with_lens(&[0, 0, 0]);
        let p0 = warm_up(&mut lb, &ps, &mut rng);
        // Below the congestion threshold: no reroute even though others are
        // empty.
        let mut lens = [0usize; 3];
        lens[p0] = 10;
        let mild = ports_with_lens(&lens);
        assert_eq!(
            lb.choose_uplink(&data(1, 100), PortView::new(&mild), us(1000), &mut rng),
            p0
        );
    }

    #[test]
    fn control_packets_do_not_advance_the_gate() {
        let mut lb = HermesLite::paper_default();
        let mut rng = SimRng::new(4);
        let ps = ports_with_lens(&[0, 0]);
        let ack = Packet::control(
            FlowId(2),
            HostId(9),
            HostId(0),
            PktKind::Ack,
            0,
            SimTime::ZERO,
        );
        let p0 = lb.choose_uplink(&ack, PortView::new(&ps), us(0), &mut rng);
        for i in 1..200 {
            assert_eq!(
                lb.choose_uplink(&ack, PortView::new(&ps), us(i), &mut rng),
                p0,
                "pure-ACK flows never accumulate bytes, never move"
            );
        }
    }
}
