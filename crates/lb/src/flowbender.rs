//! FlowBender-lite: flow-level congestion-triggered rerouting (Kabbani et
//! al., CoNEXT 2014). Extension baseline discussed in the paper's §8.
//!
//! Real FlowBender runs at the end host: the sender watches the fraction of
//! ECN-echoed ACKs per window and, when it exceeds a threshold, perturbs a
//! header field so ECMP rehashes the flow. This leaf-local variant keeps
//! the same control law but senses congestion directly at the decision
//! point — the flow's current uplink queue — which is the very state that
//! would have produced those ECN marks one hop later.

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{FlowMap, LoadBalancer, PortView};

#[derive(Clone, Copy, Debug)]
struct BenderState {
    port: usize,
    /// Congested observations in the current window.
    marked: u32,
    /// Packets observed in the current window.
    total: u32,
}

/// Flow-level rerouting driven by a per-window congestion fraction: a flow
/// stays on its path until more than `frac_threshold` of its last
/// `window_pkts` packets found the path congested, then rehashes onto a
/// random other uplink.
#[derive(Debug)]
pub struct FlowBender {
    /// Queue length (packets) above which a path counts as congested —
    /// FlowBender inherits DCTCP's marking threshold.
    mark_threshold_pkts: usize,
    /// Fraction of congested observations that triggers a reroute
    /// (published default: 5%).
    frac_threshold: f64,
    /// Observation window in packets (≈ one congestion window).
    window_pkts: u32,
    flows: FlowMap<BenderState>,
    /// Flows rehashed off a dead uplink without a congestion trigger.
    forced: u64,
}

impl FlowBender {
    /// A FlowBender instance with explicit parameters.
    pub fn new(mark_threshold_pkts: usize, frac_threshold: f64, window_pkts: u32) -> FlowBender {
        assert!(window_pkts > 0);
        assert!((0.0..=1.0).contains(&frac_threshold));
        FlowBender {
            mark_threshold_pkts,
            frac_threshold,
            window_pkts,
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    /// The published configuration: DCTCP K=20 sensing, 5% trigger,
    /// one-window (32-packet) epochs.
    pub fn paper_default() -> FlowBender {
        FlowBender::new(20, 0.05, 32)
    }
}

impl LoadBalancer for FlowBender {
    fn name(&self) -> &'static str {
        "FlowBender"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        let initial = view.nth_live(rng.index(view.n_live()));
        let st = self
            .flows
            .touch_or_insert_with(pkt.flow, now, || BenderState {
                port: initial,
                marked: 0,
                total: 0,
            });
        let mut port = st.port % n;
        if !view.is_live(port) {
            // The cached uplink died: rehash immediately onto a live one and
            // restart the observation window.
            port = view.nth_live(rng.index(view.n_live()));
            st.port = port;
            st.marked = 0;
            st.total = 0;
            self.forced += 1;
        }
        st.total += 1;
        if view.qlen_pkts(port) >= self.mark_threshold_pkts {
            st.marked += 1;
        }
        if st.total >= self.window_pkts {
            let live = view.n_live();
            if st.marked as f64 / st.total as f64 > self.frac_threshold && live > 1 {
                // Rehash: any live uplink but the current one, expressed in
                // live-rank space so dead ports are never candidates.
                let jump = 1 + rng.index(live - 1);
                st.port = view.nth_live((view.live_rank(port) + jump) % live);
            }
            st.marked = 0;
            st.total = 0;
        }
        port
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 4096,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&l| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..l {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn stays_put_when_uncongested() {
        let ps = ports_with_lens(&[0, 0, 0, 0]);
        let mut lb = FlowBender::paper_default();
        let mut rng = SimRng::new(1);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        for i in 1..200 {
            assert_eq!(
                lb.choose_uplink(&data(1, i), PortView::new(&ps), us(i as u64), &mut rng),
                p0,
                "no congestion -> no reroute"
            );
        }
    }

    #[test]
    fn reroutes_when_congested() {
        // Find the initial port, then congest it.
        let ps = ports_with_lens(&[0, 0, 0, 0]);
        let mut lb = FlowBender::paper_default();
        let mut rng = SimRng::new(2);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        let mut lens = [0usize; 4];
        lens[p0] = 50; // far above the K=20 sensing threshold
        let congested = ports_with_lens(&lens);
        let mut moved = false;
        for i in 1..100 {
            let p = lb.choose_uplink(
                &data(1, i),
                PortView::new(&congested),
                us(i as u64),
                &mut rng,
            );
            if p != p0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "persistent congestion must trigger a reroute");
    }

    #[test]
    fn below_fraction_threshold_does_not_trigger() {
        // One congested observation out of 32 (3%) stays under the 5% bar.
        let ps = ports_with_lens(&[0, 0]);
        let mut lb = FlowBender::paper_default();
        let mut rng = SimRng::new(3);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        let mut lens = [0usize; 2];
        lens[p0] = 50;
        let congested = ports_with_lens(&lens);
        // 1 congested observation...
        lb.choose_uplink(&data(1, 1), PortView::new(&congested), us(1), &mut rng);
        // ...then 31 clean ones to finish the window.
        for i in 2..=32 {
            let p = lb.choose_uplink(&data(1, i), PortView::new(&ps), us(i as u64), &mut rng);
            assert_eq!(p, p0);
        }
        // Next window still on the same port.
        assert_eq!(
            lb.choose_uplink(&data(1, 40), PortView::new(&ps), us(40), &mut rng),
            p0
        );
    }

    #[test]
    fn reroute_picks_a_different_port() {
        let mut lb = FlowBender::new(1, 0.0, 1); // hair-trigger
        let mut rng = SimRng::new(4);
        let ps = ports_with_lens(&[30, 30, 30, 30]);
        let mut prev = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        for i in 1..50 {
            let p = lb.choose_uplink(&data(1, i), PortView::new(&ps), us(i as u64), &mut rng);
            assert_ne!(p, prev, "hair-trigger config must hop every packet");
            prev = p;
        }
    }
}
