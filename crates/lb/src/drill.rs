//! DRILL: micro load balancing via power-of-two-choices (Ghorbani et al.,
//! SIGCOMM 2017). Extension baseline discussed in the paper's §8.

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{LoadBalancer, PortView};

/// DRILL(d, m): for each packet, sample `d` random uplinks, compare them with
/// the `m` remembered best ports from the previous decision, and send the
/// packet to the least-loaded of the candidates. The classic configuration is
/// DRILL(2, 1) — "two choices plus memory" (Mitzenmacher's power of two
/// choices applied per packet).
#[derive(Debug)]
pub struct Drill {
    d: usize,
    memory: Vec<usize>,
    m: usize,
}

impl Drill {
    /// A DRILL instance sampling `d` random ports with `m` remembered ports.
    pub fn new(d: usize, m: usize) -> Drill {
        assert!(d >= 1, "DRILL needs at least one random sample");
        Drill {
            d,
            memory: Vec::with_capacity(m),
            m,
        }
    }

    /// The published default: DRILL(2, 1).
    pub fn default_config() -> Drill {
        Drill::new(2, 1)
    }
}

impl LoadBalancer for Drill {
    fn name(&self) -> &'static str {
        "DRILL"
    }

    fn choose_uplink(
        &mut self,
        _pkt: &Packet,
        view: PortView<'_>,
        _now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        // Sample uniformly over the live uplinks only; a remembered port is
        // considered only while it stays live.
        let mut best = view.nth_live(rng.index(view.n_live()));
        let mut best_len = view.qlen_bytes(best);
        let consider = |cand: usize, best: &mut usize, best_len: &mut u64| {
            let l = view.qlen_bytes(cand);
            if l < *best_len {
                *best = cand;
                *best_len = l;
            }
        };
        for _ in 1..self.d {
            consider(
                view.nth_live(rng.index(view.n_live())),
                &mut best,
                &mut best_len,
            );
        }
        for &cand in &self.memory {
            if cand < n && view.is_live(cand) {
                consider(cand, &mut best, &mut best_len);
            }
        }
        // Remember the winner for the next decision.
        self.memory.clear();
        if self.m > 0 {
            self.memory.push(best);
        }
        best
    }

    fn state_bytes(&self) -> usize {
        (self.m + 1) * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 4096,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&l| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..l {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    fn pkt() -> Packet {
        Packet::data(FlowId(1), HostId(0), HostId(9), 0, 1460, 40, SimTime::ZERO)
    }

    #[test]
    fn prefers_empty_queue_strongly() {
        // One empty port among 4 loaded ones: DRILL(2,1) converges onto it
        // and keeps choosing it thanks to memory.
        let ps = ports_with_lens(&[50, 50, 0, 50]);
        let mut lb = Drill::default_config();
        let mut rng = SimRng::new(1);
        let mut hits = 0;
        for _ in 0..200 {
            if lb.choose_uplink(&pkt(), PortView::new(&ps), SimTime::ZERO, &mut rng) == 2 {
                hits += 1;
            }
        }
        // Once found (p >= 1-(3/4)^2 per trial), memory locks on.
        assert!(
            hits > 150,
            "DRILL failed to lock onto the empty port: {hits}/200"
        );
    }

    #[test]
    fn never_picks_worse_than_sampled() {
        let ps = ports_with_lens(&[10, 0]);
        let mut lb = Drill::new(2, 0); // d=2 over 2 ports: sees both often
        let mut rng = SimRng::new(2);
        let mut worst_picks = 0;
        for _ in 0..500 {
            if lb.choose_uplink(&pkt(), PortView::new(&ps), SimTime::ZERO, &mut rng) == 0 {
                worst_picks += 1;
            }
        }
        // Picking port 0 requires both samples to be port 0: p = 1/4.
        assert!(
            (50..=200).contains(&worst_picks),
            "unexpected loaded-port rate: {worst_picks}/500"
        );
    }

    #[test]
    fn memory_capacity_respected() {
        let ps = ports_with_lens(&[1, 1, 1]);
        let mut lb = Drill::new(2, 1);
        let mut rng = SimRng::new(3);
        for _ in 0..10 {
            lb.choose_uplink(&pkt(), PortView::new(&ps), SimTime::ZERO, &mut rng);
            assert!(lb.memory.len() <= 1);
        }
        let mut no_mem = Drill::new(1, 0);
        for _ in 0..10 {
            no_mem.choose_uplink(&pkt(), PortView::new(&ps), SimTime::ZERO, &mut rng);
            assert!(no_mem.memory.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one random sample")]
    fn rejects_zero_samples() {
        let _ = Drill::new(0, 1);
    }
}
