//! ECMP: flow-level hashing (RFC 2992), the paper's weakest baseline.

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{LoadBalancer, PortView};

/// Equal-Cost Multi-Path: every packet of a flow takes the uplink selected
/// by a static hash of the flow id. No state, no adaptivity — flows that
/// collide on a port stay collided (§1: "hash collisions and the inability
/// to reroute flow adaptively").
#[derive(Clone, Debug, Default)]
pub struct Ecmp {
    /// Per-switch hash salt so different leaves hash differently, like
    /// per-switch ECMP seeds in real fabrics.
    salt: u64,
}

impl Ecmp {
    /// An ECMP instance with the given per-switch salt.
    pub fn new(salt: u64) -> Ecmp {
        Ecmp { salt }
    }

    #[inline]
    fn hash(&self, flow: u32) -> u64 {
        // SplitMix64-style avalanche over (flow, salt).
        let mut z = (flow as u64) ^ self.salt.rotate_left(17);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl LoadBalancer for Ecmp {
    fn name(&self) -> &'static str {
        "ECMP"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> usize {
        // Hash over the *live* uplinks: with every port up this is the
        // historical `hash % n_ports`; after a failure the same hash space
        // redistributes over the survivors (next-hop group shrink).
        view.nth_live((self.hash(pkt.flow.0) % view.n_live() as u64) as usize)
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps, PktKind};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports(n: usize) -> Vec<OutPort> {
        (0..n)
            .map(|_| {
                OutPort::new(
                    LinkProps::gbps(1.0, SimTime::ZERO),
                    QueueCfg {
                        capacity_pkts: 64,
                        ecn_threshold_pkts: None,
                    },
                )
            })
            .collect()
    }

    fn pkt(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    #[test]
    fn same_flow_same_port() {
        let ps = ports(8);
        let mut lb = Ecmp::new(1);
        let mut rng = SimRng::new(0);
        let first = lb.choose_uplink(&pkt(7, 0), PortView::new(&ps), SimTime::ZERO, &mut rng);
        for seq in 1..100 {
            let p = lb.choose_uplink(&pkt(7, seq), PortView::new(&ps), SimTime::ZERO, &mut rng);
            assert_eq!(p, first, "ECMP must never reroute a flow");
        }
    }

    #[test]
    fn spreads_many_flows() {
        let ps = ports(8);
        let mut lb = Ecmp::new(42);
        let mut rng = SimRng::new(0);
        let mut counts = [0usize; 8];
        for f in 0..4000 {
            counts[lb.choose_uplink(&pkt(f, 0), PortView::new(&ps), SimTime::ZERO, &mut rng)] += 1;
        }
        // Roughly uniform: each port within 40% of the mean.
        for &c in &counts {
            assert!((300..=700).contains(&c), "skewed hash: {counts:?}");
        }
    }

    #[test]
    fn control_packets_follow_the_flow() {
        let ps = ports(4);
        let mut lb = Ecmp::new(3);
        let mut rng = SimRng::new(0);
        let d = lb.choose_uplink(&pkt(11, 0), PortView::new(&ps), SimTime::ZERO, &mut rng);
        let syn = Packet::control(
            FlowId(11),
            HostId(0),
            HostId(9),
            PktKind::Syn,
            0,
            SimTime::ZERO,
        );
        assert_eq!(
            lb.choose_uplink(&syn, PortView::new(&ps), SimTime::ZERO, &mut rng),
            d
        );
    }

    #[test]
    fn salts_decorrelate_switches() {
        let ps = ports(16);
        let mut rng = SimRng::new(0);
        let mut a = Ecmp::new(1);
        let mut b = Ecmp::new(2);
        let same = (0..256u32)
            .filter(|&f| {
                a.choose_uplink(&pkt(f, 0), PortView::new(&ps), SimTime::ZERO, &mut rng)
                    == b.choose_uplink(&pkt(f, 0), PortView::new(&ps), SimTime::ZERO, &mut rng)
            })
            .count();
        // Expect ~1/16 collisions, certainly not all.
        assert!(same < 64, "salts do not decorrelate: {same}/256");
    }
}
