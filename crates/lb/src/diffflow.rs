//! DiffFlow: differentiated short/long flow splitting (extension).
//!
//! DiffFlow (Liu et al.) routes the many small flows with packet spraying —
//! they finish inside an RTT or two, so reordering is harmless — while the
//! few large flows that would suffer from reordering are pinned to a single
//! path once they cross a size threshold (the "few large rules" the SDN
//! formulation installs). It is the static-granularity cousin of TLB's
//! adaptive split: the short/long boundary is fixed up front instead of
//! being recomputed from the measured traffic.

use tlb_engine::{SimRng, SimTime};
use tlb_net::{Packet, PktKind};
use tlb_switch::{FlowMap, LoadBalancer, PortView};

#[derive(Clone, Copy, Debug)]
struct DiffState {
    /// Payload bytes seen from this flow so far.
    sent_bytes: u64,
    /// The pinned uplink; meaningful only once `pinned` is set.
    port: usize,
    /// Whether the flow crossed the threshold and got a dedicated rule.
    pinned: bool,
}

/// Short flows are sprayed per packet over the live uplinks; once a flow's
/// byte count exceeds `threshold_bytes` it is pinned to the then-shortest
/// queue and stays there (barring link failure) until its FIN removes the
/// rule.
#[derive(Debug)]
pub struct DiffFlow {
    threshold_bytes: u64,
    flows: FlowMap<DiffState>,
    /// Pinned flows moved because their uplink went down.
    forced: u64,
}

impl DiffFlow {
    /// The conventional short/long boundary: 100 KB.
    pub const DEFAULT_THRESHOLD_BYTES: u64 = 100 * 1000;

    /// A DiffFlow balancer with the given pin threshold.
    pub fn new(threshold_bytes: u64) -> DiffFlow {
        assert!(threshold_bytes > 0);
        DiffFlow {
            threshold_bytes,
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    /// Default 100 KB-threshold instance.
    pub fn paper_default() -> DiffFlow {
        DiffFlow::new(Self::DEFAULT_THRESHOLD_BYTES)
    }

    #[inline]
    fn spray(view: &PortView<'_>, rng: &mut SimRng) -> usize {
        view.nth_live(rng.index(view.n_live()))
    }
}

impl LoadBalancer for DiffFlow {
    fn name(&self) -> &'static str {
        "DiffFlow"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        match pkt.kind {
            PktKind::Fin => {
                // Rule uninstall: the flow is over.
                self.flows.remove(pkt.flow);
                Self::spray(&view, rng)
            }
            PktKind::Data => {
                let st = self
                    .flows
                    .touch_or_insert_with(pkt.flow, now, || DiffState {
                        sent_bytes: 0,
                        port: 0,
                        pinned: false,
                    });
                st.sent_bytes += pkt.payload_bytes as u64;
                if !st.pinned {
                    if st.sent_bytes <= self.threshold_bytes {
                        // Still short: spray.
                        return Self::spray(&view, rng);
                    }
                    // Crossed the boundary: install the rule on the
                    // currently-shortest queue.
                    st.pinned = true;
                    st.port = view.shortest_bytes_rand(rng);
                    return st.port;
                }
                let cur = st.port % n;
                if view.is_live(cur) {
                    cur
                } else {
                    // Rule points at a dead uplink: re-install on a live one.
                    st.port = view.shortest_bytes_rand(rng);
                    self.forced += 1;
                    st.port
                }
            }
            // Control traffic never accumulates bytes and is sprayed.
            PktKind::Syn | PktKind::SynAck | PktKind::Ack => Self::spray(&view, rng),
        }
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports(n: usize) -> Vec<OutPort> {
        (0..n)
            .map(|_| {
                OutPort::new(
                    LinkProps::gbps(1.0, SimTime::ZERO),
                    QueueCfg {
                        capacity_pkts: 4096,
                        ecn_threshold_pkts: None,
                    },
                )
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    #[test]
    fn short_flows_spray_across_ports() {
        let ps = ports(8);
        let mut lb = DiffFlow::paper_default();
        let mut rng = SimRng::new(1);
        let mut used = [false; 8];
        for seq in 0..60 {
            // 60 * 1460 B < 100 kB: stays short the whole way.
            used[lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng)] =
                true;
        }
        assert!(used.iter().filter(|&&u| u).count() >= 6, "no spraying");
    }

    #[test]
    fn long_flows_pin_after_threshold() {
        let ps = ports(8);
        let mut lb = DiffFlow::paper_default();
        let mut rng = SimRng::new(2);
        // 70 packets push the flow over 100 kB.
        let mut last = 0;
        for seq in 0..70 {
            last = lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng);
        }
        for seq in 70..140 {
            assert_eq!(
                lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng),
                last,
                "pinned flow must not move"
            );
        }
        assert_eq!(lb.forced_reroutes(), Some(0));
    }

    #[test]
    fn fin_uninstalls_the_rule() {
        let ps = ports(4);
        let mut lb = DiffFlow::paper_default();
        let mut rng = SimRng::new(3);
        for seq in 0..80 {
            lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng);
        }
        assert_eq!(lb.flows.len(), 1);
        let fin = Packet::control(
            FlowId(1),
            HostId(0),
            HostId(9),
            PktKind::Fin,
            0,
            SimTime::ZERO,
        );
        lb.choose_uplink(&fin, PortView::new(&ps), SimTime::ZERO, &mut rng);
        assert_eq!(lb.flows.len(), 0);
    }

    #[test]
    fn dead_uplink_forces_a_reinstall() {
        let ps = ports(4);
        let mut lb = DiffFlow::paper_default();
        let mut rng = SimRng::new(4);
        let mut pinned = 0;
        for seq in 0..80 {
            pinned = lb.choose_uplink(&data(1, seq), PortView::new(&ps), SimTime::ZERO, &mut rng);
        }
        // Mask out the pinned port: next packet must move and count it.
        let mask = PortView::full_mask(4) & !(1u64 << pinned);
        let p = lb.choose_uplink(
            &data(1, 80),
            PortView::with_mask(&ps, mask),
            SimTime::ZERO,
            &mut rng,
        );
        assert_ne!(p, pinned);
        assert_eq!(lb.forced_reroutes(), Some(1));
        // Back on a full view the flow stays on its new rule.
        assert_eq!(
            lb.choose_uplink(&data(1, 81), PortView::new(&ps), SimTime::ZERO, &mut rng),
            p
        );
    }
}
