//! LetFlow: flowlet switching with random path choice (Vanini et al.,
//! NSDI 2017).

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{FlowMap, LoadBalancer, PortView};

/// Per-flow flowlet state: current uplink + time of the flow's last packet.
#[derive(Clone, Copy, Debug)]
struct Flowlet {
    port: usize,
    last_pkt: SimTime,
}

/// LetFlow reroutes a flow only when a *flowlet gap* appears: if the time
/// since the flow's previous packet exceeds the flowlet timeout, the flow
/// (all flows — short and long alike, per the paper's critique) picks a new
/// uniformly random uplink; otherwise it sticks to its current one.
///
/// The elegance of LetFlow is that flowlet sizes adapt to congestion
/// automatically; its weakness (§6.2) is that under low load there are few
/// gaps, so rerouting opportunities are rare.
#[derive(Debug)]
pub struct LetFlow {
    timeout: SimTime,
    flows: FlowMap<Flowlet>,
    /// Flowlets moved off a dead uplink before any flowlet gap appeared.
    forced: u64,
}

impl LetFlow {
    /// The paper's NS2 flowlet timeout: 150 µs (§2.2, citing Hermes).
    pub const DEFAULT_TIMEOUT: SimTime = SimTime::from_micros(150);

    /// A LetFlow balancer with the given flowlet timeout.
    pub fn new(timeout: SimTime) -> LetFlow {
        LetFlow {
            timeout,
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    /// Default 150 µs-timeout instance.
    pub fn paper_default() -> LetFlow {
        LetFlow::new(Self::DEFAULT_TIMEOUT)
    }

    /// The configured flowlet timeout.
    pub fn timeout(&self) -> SimTime {
        self.timeout
    }
}

impl LoadBalancer for LetFlow {
    fn name(&self) -> &'static str {
        "LetFlow"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        let timeout = self.timeout;
        match self.flows.touch(pkt.flow, now) {
            Some(entry) => {
                let gap = now.saturating_sub(entry.last_pkt);
                let dead = !view.is_live(entry.port % n);
                if gap > timeout || dead {
                    // A flowlet boundary — natural gap or a dead uplink
                    // forcing an early one: pick any live path at random.
                    if dead && gap <= timeout {
                        self.forced += 1;
                    }
                    entry.port = view.nth_live(rng.index(view.n_live()));
                }
                entry.last_pkt = now;
                entry.port % n
            }
            None => {
                let port = view.nth_live(rng.index(view.n_live()));
                self.flows.touch_or_insert_with(pkt.flow, now, || Flowlet {
                    port,
                    last_pkt: now,
                });
                port
            }
        }
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        // Flow records older than a large multiple of the timeout are dead.
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports(n: usize) -> Vec<OutPort> {
        (0..n)
            .map(|_| {
                OutPort::new(
                    LinkProps::gbps(1.0, SimTime::ZERO),
                    QueueCfg {
                        capacity_pkts: 64,
                        ecn_threshold_pkts: None,
                    },
                )
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn back_to_back_packets_stick() {
        let ps = ports(8);
        let mut lb = LetFlow::paper_default();
        let mut rng = SimRng::new(1);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        for i in 1..100 {
            // 10 us spacing: well inside the 150 us timeout.
            let p = lb.choose_uplink(&data(1, i), PortView::new(&ps), us(10 * i as u64), &mut rng);
            assert_eq!(p, p0, "no flowlet gap -> no reroute");
        }
    }

    #[test]
    fn gap_allows_reroute() {
        let ps = ports(16);
        let mut lb = LetFlow::new(us(150));
        let mut rng = SimRng::new(2);
        let mut t = SimTime::ZERO;
        let mut changed = 0;
        let mut prev = lb.choose_uplink(&data(1, 0), PortView::new(&ps), t, &mut rng);
        for i in 1..200 {
            t += us(1000); // every gap exceeds the timeout
            let p = lb.choose_uplink(&data(1, i), PortView::new(&ps), t, &mut rng);
            if p != prev {
                changed += 1;
            }
            prev = p;
        }
        // Each boundary picks uniformly among 16 ports: expect ~15/16 changes.
        assert!(changed > 150, "only {changed} reroutes across 199 gaps");
    }

    #[test]
    fn gap_exactly_at_timeout_does_not_reroute() {
        let ps = ports(4);
        let mut lb = LetFlow::new(us(150));
        let mut rng = SimRng::new(3);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        // Gap == timeout: strictly-greater semantics keep the flowlet alive.
        let p1 = lb.choose_uplink(&data(1, 1), PortView::new(&ps), us(150), &mut rng);
        assert_eq!(p0, p1);
    }

    #[test]
    fn flows_are_independent() {
        let ps = ports(8);
        let mut lb = LetFlow::paper_default();
        let mut rng = SimRng::new(4);
        let mut used = std::collections::HashSet::new();
        for f in 0..64 {
            used.insert(lb.choose_uplink(&data(f, 0), PortView::new(&ps), us(0), &mut rng));
        }
        assert!(used.len() >= 6, "initial picks should spread: {used:?}");
    }

    #[test]
    fn purge_drops_dead_flows() {
        let ps = ports(2);
        let mut lb = LetFlow::paper_default();
        let mut rng = SimRng::new(5);
        lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        let resident = lb.state_bytes();
        assert!(resident > 0);
        lb.on_tick(PortView::new(&ps), SimTime::from_secs(1));
        // state_bytes is capacity-accounted, so the purge frees the records
        // without shrinking resident memory — it must not grow, and new
        // flows must reuse the retained buckets rather than allocate more.
        assert_eq!(lb.state_bytes(), resident);
        lb.choose_uplink(
            &data(2, 0),
            PortView::new(&ps),
            SimTime::from_secs(1),
            &mut rng,
        );
        assert_eq!(lb.state_bytes(), resident);
    }
}
