//! CONGA-lite: congestion-aware flowlet switching (extension).
//!
//! CONGA (Alizadeh et al., SIGCOMM 2014) routes flowlets onto the globally
//! least-congested path using leaf-to-leaf feedback carried in packet
//! headers. Reproducing the feedback plane is out of scope for a leaf-local
//! simulator interface, so this "lite" variant substitutes the switch-local
//! uplink queue lengths for the path-wise congestion metric. On a two-tier
//! leaf-spine fabric where the leaf uplink is the dominant bottleneck, the
//! local queue is a good proxy for path congestion; the substitution is
//! recorded in DESIGN.md.

use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;
use tlb_switch::{FlowMap, LoadBalancer, PortView};

#[derive(Clone, Copy, Debug)]
struct Flowlet {
    port: usize,
    last_pkt: SimTime,
}

/// Flowlet switching onto the shortest local uplink queue. Where LetFlow
/// picks a *random* port at each flowlet boundary, CONGA-lite picks the
/// *least loaded* one.
#[derive(Debug)]
pub struct CongaLite {
    timeout: SimTime,
    flows: FlowMap<Flowlet>,
    /// Flowlets moved off a dead uplink before any flowlet gap appeared.
    forced: u64,
}

impl CongaLite {
    /// CONGA's published flowlet timeout: 500 µs.
    pub const DEFAULT_TIMEOUT: SimTime = SimTime::from_micros(500);

    /// A CONGA-lite balancer with the given flowlet timeout.
    pub fn new(timeout: SimTime) -> CongaLite {
        CongaLite {
            timeout,
            flows: FlowMap::new(),
            forced: 0,
        }
    }

    /// Default 500 µs-timeout instance.
    pub fn paper_default() -> CongaLite {
        CongaLite::new(Self::DEFAULT_TIMEOUT)
    }
}

impl LoadBalancer for CongaLite {
    fn name(&self) -> &'static str {
        "CONGA-lite"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        let timeout = self.timeout;
        // Compute the candidate first to keep the borrow local.
        let shortest = view.shortest_bytes_rand(rng);
        match self.flows.touch(pkt.flow, now) {
            Some(entry) => {
                let gap = now.saturating_sub(entry.last_pkt);
                let dead = !view.is_live(entry.port % n);
                if gap > timeout || dead {
                    // `shortest` is already restricted to live uplinks.
                    if dead && gap <= timeout {
                        self.forced += 1;
                    }
                    entry.port = shortest;
                }
                entry.last_pkt = now;
                entry.port % n
            }
            None => {
                self.flows.touch_or_insert_with(pkt.flow, now, || Flowlet {
                    port: shortest,
                    last_pkt: now,
                });
                shortest
            }
        }
    }

    fn on_tick(&mut self, _view: PortView<'_>, now: SimTime) {
        self.flows.purge_idle(now, SimTime::from_millis(50));
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(SimTime::from_millis(10))
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes()
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_net::{FlowId, HostId, LinkProps};
    use tlb_switch::{OutPort, QueueCfg};

    fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 4096,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&l| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..l {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    fn data(flow: u32, seq: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            HostId(0),
            HostId(9),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn new_flow_takes_shortest() {
        let ps = ports_with_lens(&[5, 2, 9]);
        let mut lb = CongaLite::paper_default();
        let mut rng = SimRng::new(1);
        assert_eq!(
            lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng),
            1
        );
    }

    #[test]
    fn sticks_within_flowlet() {
        let ps = ports_with_lens(&[5, 2, 9]);
        let mut lb = CongaLite::paper_default();
        let mut rng = SimRng::new(1);
        let p0 = lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        // Even though port 0 may become shorter, within the gap we stick.
        let ps2 = ports_with_lens(&[0, 2, 9]);
        let p1 = lb.choose_uplink(&data(1, 1), PortView::new(&ps2), us(100), &mut rng);
        assert_eq!(p0, p1);
    }

    #[test]
    fn reroutes_to_shortest_after_gap() {
        let ps = ports_with_lens(&[5, 2, 9]);
        let mut lb = CongaLite::paper_default();
        let mut rng = SimRng::new(1);
        lb.choose_uplink(&data(1, 0), PortView::new(&ps), us(0), &mut rng);
        let ps2 = ports_with_lens(&[0, 2, 9]);
        let p = lb.choose_uplink(&data(1, 1), PortView::new(&ps2), us(10_000), &mut rng);
        assert_eq!(
            p, 0,
            "after a flowlet gap CONGA-lite picks the new shortest"
        );
    }
}
