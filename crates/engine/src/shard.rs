//! Engine-level support for sharded (multi-core) execution of one
//! simulation: the engine-selection knob and the spin barrier the
//! conservative window protocol synchronizes on.
//!
//! The actual fabric partitioning, window protocol and report merge live in
//! `tlb-simnet` (they need the network state); this module owns the pieces
//! that are simulator-agnostic.

use crate::env_knob;

/// Which execution engine drives a run: the serial reference event loop, or
/// the conservatively synchronized multi-core sharded engine. Mirrors the
/// [`crate::FelKind`] / `LbDispatch` / `DeliveryKind` pattern: the serial
/// engine stays alive as the differential reference, and both engines must
/// produce bit-identical event/FCT/audit digests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded reference event loop.
    Serial,
    /// Per-shard event loops over OS threads, synchronized conservatively
    /// with link propagation delay as lookahead. `workers` pins the OS
    /// thread count; `None` uses the available parallelism. The *digests*
    /// are worker-count independent by construction (shard count and shard
    /// execution depend only on the topology), so `workers` is purely a
    /// performance knob.
    Sharded {
        /// OS worker threads (`None`: available parallelism).
        workers: Option<u32>,
    },
}

impl EngineKind {
    /// Engine selection for runs that don't pin one explicitly:
    /// `TLB_ENGINE=serial` / `sharded` / `sharded:<workers>`; unset, empty
    /// or invalid values fall back to [`EngineKind::Serial`].
    pub fn from_env() -> EngineKind {
        env_knob::parse_with("TLB_ENGINE", EngineKind::Serial, |s| {
            let expect = || "want `serial`, `sharded`, or `sharded:<workers>`".to_string();
            match s {
                "serial" => Ok(EngineKind::Serial),
                "sharded" => Ok(EngineKind::Sharded { workers: None }),
                _ => match s.strip_prefix("sharded:") {
                    Some(n) => n
                        .parse::<u32>()
                        .ok()
                        .filter(|&n| n > 0)
                        .map(|n| EngineKind::Sharded { workers: Some(n) })
                        .ok_or_else(expect),
                    None => Err(expect()),
                },
            }
        })
    }
}

/// A reusable generation-counted spin barrier.
///
/// The sharded engine's windows are short (one propagation delay of
/// simulated time, often only a handful of events per shard), so the
/// per-window synchronization cost must stay well under a microsecond —
/// a mutex/condvar barrier's wake-up latency would dominate the window
/// body. Parties spin with [`std::hint::spin_loop`], degrading to
/// [`std::thread::yield_now`] once a wait runs long (oversubscribed host).
pub struct SpinBarrier {
    n: usize,
    arrived: std::sync::atomic::AtomicUsize,
    generation: std::sync::atomic::AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `n` parties.
    pub fn new(n: usize) -> SpinBarrier {
        assert!(n > 0, "barrier needs at least one party");
        SpinBarrier {
            n,
            arrived: std::sync::atomic::AtomicUsize::new(0),
            generation: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Block (spinning) until all `n` parties have called `wait` for the
    /// current generation. Returns `true` on exactly one party per
    /// generation (the last arriver), mirroring
    /// `std::sync::Barrier::wait().is_leader()`.
    pub fn wait(&self) -> bool {
        use std::sync::atomic::Ordering;
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 1 << 14 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn engine_kind_parses_worker_suffix() {
        let var = "TLB_ENGINE";
        // Serialize against other tests via a single test body (process
        // env is global); restore the variable afterwards.
        let saved = std::env::var(var).ok();
        std::env::set_var(var, "sharded:4");
        assert_eq!(
            EngineKind::from_env(),
            EngineKind::Sharded { workers: Some(4) }
        );
        std::env::set_var(var, "SHARDED");
        assert_eq!(
            EngineKind::from_env(),
            EngineKind::Sharded { workers: None }
        );
        std::env::set_var(var, "serial");
        assert_eq!(EngineKind::from_env(), EngineKind::Serial);
        for bad in ["sharded:0", "sharded:lots", "parallel", "sharded:"] {
            std::env::set_var(var, bad);
            assert_eq!(
                EngineKind::from_env(),
                EngineKind::Serial,
                "{bad:?} must fall back to serial"
            );
        }
        match saved {
            Some(v) => std::env::set_var(var, v),
            None => std::env::remove_var(var),
        }
    }

    #[test]
    fn spin_barrier_synchronizes_phases() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(PARTIES);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Everyone must observe the full round's increments
                        // before anyone proceeds.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (round + 1) * PARTIES);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PARTIES * ROUNDS);
    }

    #[test]
    fn spin_barrier_elects_one_leader_per_generation() {
        const PARTIES: usize = 3;
        let barrier = SpinBarrier::new(PARTIES);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }
}
