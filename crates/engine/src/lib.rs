//! # tlb-engine — discrete-event simulation core
//!
//! The foundation of the TLB reproduction: a deterministic, single-threaded
//! discrete-event engine. Everything above it (links, switches, TCP endpoints,
//! load balancers) is expressed as events on this engine.
//!
//! Design points, per the reproduction's determinism requirements:
//!
//! * Time is an integer number of **nanoseconds** ([`SimTime`]). There is no
//!   floating-point clock, so runs are bit-reproducible across platforms.
//! * The [`EventQueue`] breaks timestamp ties by insertion order (FIFO), so
//!   event execution order is a pure function of the schedule, never of
//!   storage internals. It runs on a swappable FEL backend ([`fel`]): a
//!   two-tier calendar queue by default, with the original binary heap kept
//!   behind `TLB_FEL=heap` / the `heap-fel` feature as a differential
//!   reference — both produce bit-identical schedules.
//! * Randomness comes from [`SimRng`], a self-contained xoshiro256++ generator
//!   seeded via SplitMix64. No external RNG crate is used at runtime, which
//!   pins the random stream independent of dependency versions.

pub mod alloc_audit;
pub mod env_knob;
pub mod fel;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use alloc_audit::{AllocCounters, CountingAlloc};
pub use fel::FelKind;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use shard::{EngineKind, SpinBarrier};
pub use time::SimTime;
