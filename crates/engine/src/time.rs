//! Integer simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a span of simulated time, in nanoseconds.
///
/// `SimTime` doubles as both an instant and a duration: the simulator's clock
/// starts at [`SimTime::ZERO`] so the two are interchangeable, and keeping a
/// single type avoids a proliferation of conversions in hot paths.
///
/// Arithmetic is checked in debug builds (Rust's native overflow checks); the
/// nanosecond range covers ~584 years of simulated time, far beyond any run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time / the zero-length span.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    ///
    /// Panics in debug builds if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// `self * num / den`, useful for proportional scaling without floats.
    #[inline]
    pub fn mul_ratio(self, num: u64, den: u64) -> SimTime {
        debug_assert!(den > 0);
        SimTime((self.0 as u128 * num as u128 / den as u128) as u64)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// True for the zero time/span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Human-friendly rendering with an adaptive unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Compute the serialization (transmission) time of `bytes` on a link of
/// `bytes_per_sec` capacity, rounding up to the next nanosecond so that a
/// busy link is never modelled as infinitely fast.
#[inline]
pub fn tx_time(bytes: u64, bytes_per_sec: u64) -> SimTime {
    debug_assert!(bytes_per_sec > 0, "zero-capacity link");
    let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
    SimTime::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(40);
        assert_eq!((a + b).as_nanos(), 140_000);
        assert_eq!((a - b).as_nanos(), 60_000);
        assert_eq!((a * 3).as_nanos(), 300_000);
        assert_eq!((a / 4).as_nanos(), 25_000);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_nanos(4));
    }

    #[test]
    fn mul_ratio_avoids_overflow() {
        let big = SimTime::from_secs(1_000_000);
        assert_eq!(big.mul_ratio(3, 2), SimTime::from_secs(1_500_000));
    }

    #[test]
    fn tx_time_1500b_at_1gbps() {
        // 1 Gbit/s = 125_000_000 bytes/s; 1500 B should take 12 us.
        let t = tx_time(1500, 125_000_000);
        assert_eq!(t, SimTime::from_micros(12));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bytes/s = 333_333_333.3 ns -> rounds up.
        assert_eq!(tx_time(1, 3).as_nanos(), 333_333_334);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
