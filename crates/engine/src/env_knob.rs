//! One parser for every `TLB_*` runtime knob.
//!
//! Each subsystem keeps its own enum (`FelKind`, `LbDispatch`,
//! `DeliveryKind`, `FidelityKind`, `EngineKind`) and default policy; this
//! module only owns the *mechanics* every knob used to hand-roll:
//! normalization (trim + ASCII-lowercase), the empty-value → default rule,
//! and the one warning format, so every knob rejects garbage with the same
//! message shape:
//!
//! ```text
//! warning: ignoring invalid TLB_FEL="fancy" (want `calendar` or `heap`)
//! ```
//!
//! The helper lives in `tlb-engine` (the workspace's root crate, no
//! dependencies) rather than `tlb-core` because `tlb-core` itself depends
//! on `tlb-engine` — `tlb-core` re-exports this module as
//! [`env_knob`](crate::env_knob) for callers that think of knobs as
//! TLB-algorithm configuration.

/// Look up a normalized value among `options`. `Ok(None)` means the value
/// was empty (callers fall back to their default without a warning);
/// `Err(expectation)` carries the `want …` clause for [`warn_invalid`].
pub fn lookup<T: Copy>(normalized: &str, options: &[(&str, T)]) -> Result<Option<T>, String> {
    if normalized.is_empty() {
        return Ok(None);
    }
    for &(name, v) in options {
        if normalized == name {
            return Ok(Some(v));
        }
    }
    Err(expectation(options))
}

/// The `want …` clause listing every accepted spelling.
pub fn expectation<T>(options: &[(&str, T)]) -> String {
    let names: Vec<String> = options.iter().map(|(n, _)| format!("`{n}`")).collect();
    match names.len() {
        0 => unreachable!("knob with no accepted values"),
        1 => format!("want {}", names[0]),
        2 => format!("want {} or {}", names[0], names[1]),
        _ => format!(
            "want {}, or {}",
            names[..names.len() - 1].join(", "),
            names[names.len() - 1]
        ),
    }
}

/// The one warning format every knob uses for a value it cannot parse.
pub fn warn_invalid(var: &str, raw: &str, expect: &str) {
    eprintln!("warning: ignoring invalid {var}={raw:?} ({expect})");
}

/// Read env var `var` and match it (trimmed, ASCII-lowercased) against
/// `options`. Unset or empty values yield `default` silently; anything
/// unrecognized warns once via [`warn_invalid`] and yields `default`.
pub fn choice<T: Copy>(var: &str, default: T, options: &[(&str, T)]) -> T {
    match std::env::var(var) {
        Ok(raw) => {
            let norm = raw.trim().to_ascii_lowercase();
            match lookup(&norm, options) {
                Ok(Some(v)) => v,
                Ok(None) => default,
                Err(expect) => {
                    warn_invalid(var, &norm, &expect);
                    default
                }
            }
        }
        Err(_) => default,
    }
}

/// Read env var `var` through a custom parser, for knobs whose grammar is
/// richer than a fixed word list (`TLB_THREADS=<n>`,
/// `TLB_ENGINE=sharded:<n>`). The parser receives the trimmed,
/// ASCII-lowercased value (never empty) and returns either the parsed
/// value or the `want …` expectation clause.
pub fn parse_with<T>(var: &str, default: T, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
    match std::env::var(var) {
        Ok(raw) => {
            let norm = raw.trim().to_ascii_lowercase();
            if norm.is_empty() {
                return default;
            }
            match parse(&norm) {
                Ok(v) => v,
                Err(expect) => {
                    warn_invalid(var, &norm, &expect);
                    default
                }
            }
        }
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLORS: &[(&str, u8)] = &[("red", 1), ("green", 2), ("blue", 3)];

    #[test]
    fn lookup_normalized_values() {
        assert_eq!(lookup("red", COLORS), Ok(Some(1)));
        assert_eq!(lookup("blue", COLORS), Ok(Some(3)));
        assert_eq!(lookup("", COLORS), Ok(None));
        assert_eq!(
            lookup("mauve", COLORS),
            Err("want `red`, `green`, or `blue`".to_string())
        );
    }

    #[test]
    fn expectation_grammar() {
        assert_eq!(expectation(&[("a", 0)]), "want `a`");
        assert_eq!(expectation(&[("a", 0), ("b", 1)]), "want `a` or `b`");
        assert_eq!(
            expectation(&[("a", 0), ("b", 1), ("c", 2)]),
            "want `a`, `b`, or `c`"
        );
    }

    #[test]
    fn choice_reads_env_with_normalization_and_fallback() {
        // Process-global env: exercise set/invalid/empty/unset in one test
        // so parallel test binaries never race on the same variable.
        let var = "TLB_ENV_KNOB_UNIT_TEST";
        std::env::set_var(var, "  GrEeN ");
        assert_eq!(choice(var, 0u8, COLORS), 2);
        std::env::set_var(var, "mauve");
        assert_eq!(choice(var, 0u8, COLORS), 0, "invalid value must fall back");
        std::env::set_var(var, "");
        assert_eq!(choice(var, 0u8, COLORS), 0, "empty value must fall back");
        std::env::remove_var(var);
        assert_eq!(choice(var, 0u8, COLORS), 0);
    }

    #[test]
    fn parse_with_reads_env_through_custom_grammar() {
        let var = "TLB_ENV_KNOB_PARSE_UNIT_TEST";
        let parse = |s: &str| {
            s.parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| "want a positive integer".to_string())
        };
        std::env::set_var(var, " 12 ");
        assert_eq!(parse_with(var, 7, parse), 12);
        std::env::set_var(var, "0");
        assert_eq!(
            parse_with(var, 7, parse),
            7,
            "rejected value must fall back"
        );
        std::env::set_var(var, "twelve");
        assert_eq!(parse_with(var, 7, parse), 7);
        std::env::remove_var(var);
        assert_eq!(parse_with(var, 7, parse), 7);
    }
}
