//! Self-contained deterministic pseudo-random number generator.
//!
//! The simulator pins its random stream to the seed alone — not to the
//! version of an external RNG crate — by implementing xoshiro256++
//! (Blackman & Vigna, 2019) directly. The state is seeded from a single
//! `u64` via SplitMix64, the initialization recommended by the authors.

/// Deterministic xoshiro256++ generator with distribution helpers used by
/// the workload generators and randomized load balancers (RPS, LetFlow...).
///
/// ```
/// use tlb_engine::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.gen_range(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream, e.g. one per simulated component,
    /// so that adding randomness in one place does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased multiply-shift
    /// rejection method. Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`; convenience for indexing.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean (for Poisson
    /// inter-arrival times). Uses inverse-transform sampling; the uniform is
    /// nudged away from zero to keep `ln` finite.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_distinct: k > n");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_stream_is_stable() {
        // Regression pin: if this changes, every experiment's random stream
        // changes and EXPERIMENTS.md numbers must be regenerated.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.gen_range(13);
            assert!(x < 13);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_mean_matches() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(6);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut r = SimRng::new(8);
        for _ in 0..100 {
            let mut s = r.sample_distinct(20, 7);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 7);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(10);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn index_zero_of_one() {
        let mut r = SimRng::new(12);
        assert_eq!(r.index(1), 0);
    }
}
