//! Future-event-list (FEL) backends.
//!
//! The simulator's hot loop is push/pop on the FEL, so the backend is
//! swappable: the default [`CalendarFel`] is a two-tier calendar queue
//! (timing-wheel buckets over the near future, a sorted overflow tier for
//! far-future timers), and [`HeapFel`] keeps the original binary heap alive
//! as a differential reference. Both implement [`FelBackend`] and both must
//! yield the exact same pop order — a total order over `(time, seq)` — so
//! every simulation digest is bit-identical regardless of backend. The
//! backend is selected per-queue via [`FelKind`]; see
//! [`crate::EventQueue::with_kind`].
//!
//! Determinism argument: [`Entry`]'s ordering key is `(time, seq)` where
//! `seq` is the queue's monotone insertion counter. That key is unique per
//! entry (no two entries share a `seq`), so "pop the minimum" has exactly
//! one correct answer at every step and any correct backend produces the
//! same event schedule — FIFO within a timestamp, non-decreasing across
//! timestamps. Backends therefore never need to agree on internal layout,
//! only on the key.

pub mod calendar;
pub mod heap;

pub use calendar::CalendarFel;
pub use heap::HeapFel;

use crate::time::SimTime;
use std::cmp::Ordering;

/// One scheduled entry: timestamp + monotone sequence number + payload.
#[derive(Debug)]
pub struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed ordering so a `BinaryHeap` (a max-heap) pops the earliest
    /// timestamp first; ties broken by insertion sequence (FIFO).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which FEL backend an [`crate::EventQueue`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FelKind {
    /// Two-tier calendar queue (timing wheel + overflow) — the default.
    Calendar,
    /// The original binary heap, kept as a differential reference.
    Heap,
}

impl FelKind {
    /// Backend selection for queues that don't get an explicit kind:
    /// `TLB_FEL=heap` / `TLB_FEL=calendar` wins, then the `heap-fel` cargo
    /// feature flips the default, else [`FelKind::Calendar`].
    ///
    /// Tests that compare backends should pin kinds explicitly (via
    /// [`crate::EventQueue::with_kind`] or the simulator config) rather
    /// than mutate the environment, which is process-global.
    pub fn from_env() -> FelKind {
        match std::env::var("TLB_FEL") {
            Ok(s) => match s.trim().to_ascii_lowercase().as_str() {
                "heap" => FelKind::Heap,
                "calendar" => FelKind::Calendar,
                "" => Self::default_kind(),
                other => {
                    eprintln!(
                        "warning: ignoring unknown TLB_FEL={other:?} (want `calendar` or `heap`)"
                    );
                    Self::default_kind()
                }
            },
            Err(_) => Self::default_kind(),
        }
    }

    fn default_kind() -> FelKind {
        if cfg!(feature = "heap-fel") {
            FelKind::Heap
        } else {
            FelKind::Calendar
        }
    }
}

/// The operations a FEL backend provides. [`crate::EventQueue`] owns the
/// clock, the sequence counter and the monotonicity accounting; backends
/// only order entries by `(time, seq)`.
pub trait FelBackend<E> {
    /// Insert `entry`. `now` is the caller's clock: the calendar backend
    /// windows its wheel on it. An entry with `entry.time < now` (already
    /// counted as a violation by the caller, panicking in debug builds)
    /// must still come back in plain `(time, seq)` order.
    fn insert(&mut self, entry: Entry<E>, now: SimTime);

    /// Remove and return the `(time, seq)`-minimum entry.
    fn remove_min(&mut self) -> Option<Entry<E>>;

    /// Timestamp of the minimum entry, without removing it. Must be O(1).
    fn min_time(&self) -> Option<SimTime>;

    /// Number of pending entries.
    fn len(&self) -> usize;

    /// True when no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Move every pending entry into `out`, in arbitrary order, leaving
    /// the backend empty.
    fn drain_into(&mut self, out: &mut Vec<Entry<E>>);
}
