//! Future-event-list (FEL) backends.
//!
//! The simulator's hot loop is push/pop on the FEL, so the backend is
//! swappable: the default [`CalendarFel`] is a two-tier calendar queue
//! (timing-wheel buckets over the near future, a sorted overflow tier for
//! far-future timers), and [`HeapFel`] keeps the original binary heap alive
//! as a differential reference. Both implement [`FelBackend`] and both must
//! yield the exact same pop order — a total order over `(time, key, seq)` —
//! so every simulation digest is bit-identical regardless of backend. The
//! backend is selected per-queue via [`FelKind`]; see
//! [`crate::EventQueue::with_kind`].
//!
//! Determinism argument: [`Entry`]'s ordering key is `(time, key, seq)`
//! where `key` is a caller-chosen u32 rank (0 for every plain
//! [`crate::EventQueue::push`], so key-oblivious callers keep pure FIFO tie
//! order) and `seq` is the queue's monotone insertion counter. That triple
//! is unique per entry (no two entries share a `seq`), so "pop the minimum"
//! has exactly one correct answer at every step and any correct backend
//! produces the same event schedule — key-ranked then FIFO within a
//! timestamp, non-decreasing across timestamps. Backends therefore never
//! need to agree on internal layout, only on the key.
//!
//! The `key` dimension exists for the sharded engine: when one simulation
//! is split across per-shard queues, same-timestamp events in *different*
//! shards have no shared `seq` counter to order them. A key that encodes
//! (event class, entity) — with each (class, entity) pushed by exactly one
//! shard — makes the cross-shard merge order `(time, key)` well defined
//! while leaving same-shard ties on the local FIFO `seq`, which is exactly
//! the order the serial engine realizes when it uses the same keys.

pub mod calendar;
pub mod heap;

pub use calendar::CalendarFel;
pub use heap::HeapFel;

use crate::time::SimTime;
use std::cmp::Ordering;

/// One scheduled entry: timestamp + ordering key + monotone sequence
/// number + payload.
#[derive(Debug)]
pub struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) key: u32,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed ordering so a `BinaryHeap` (a max-heap) pops the earliest
    /// timestamp first; ties broken by key rank, then insertion sequence
    /// (FIFO).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which FEL backend an [`crate::EventQueue`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FelKind {
    /// Two-tier calendar queue (timing wheel + overflow) — the default.
    Calendar,
    /// The original binary heap, kept as a differential reference.
    Heap,
}

impl FelKind {
    /// Backend selection for queues that don't get an explicit kind:
    /// `TLB_FEL=heap` / `TLB_FEL=calendar` wins, then the `heap-fel` cargo
    /// feature flips the default, else [`FelKind::Calendar`].
    ///
    /// Tests that compare backends should pin kinds explicitly (via
    /// [`crate::EventQueue::with_kind`] or the simulator config) rather
    /// than mutate the environment, which is process-global.
    pub fn from_env() -> FelKind {
        crate::env_knob::choice(
            "TLB_FEL",
            Self::default_kind(),
            &[("calendar", FelKind::Calendar), ("heap", FelKind::Heap)],
        )
    }

    fn default_kind() -> FelKind {
        if cfg!(feature = "heap-fel") {
            FelKind::Heap
        } else {
            FelKind::Calendar
        }
    }
}

/// The operations a FEL backend provides. [`crate::EventQueue`] owns the
/// clock, the sequence counter and the monotonicity accounting; backends
/// only order entries by `(time, key, seq)`.
pub trait FelBackend<E> {
    /// Insert `entry`. `now` is the caller's clock: the calendar backend
    /// windows its wheel on it. An entry with `entry.time < now` (already
    /// counted as a violation by the caller, panicking in debug builds)
    /// must still come back in plain `(time, key, seq)` order.
    fn insert(&mut self, entry: Entry<E>, now: SimTime);

    /// Remove and return the `(time, key, seq)`-minimum entry.
    fn remove_min(&mut self) -> Option<Entry<E>>;

    /// Timestamp of the minimum entry, without removing it. Must be O(1).
    fn min_time(&self) -> Option<SimTime>;

    /// `(time, key)` of the minimum entry, without removing it. Must be
    /// O(1) — the sharded engine's merge loop peeks every shard per step.
    fn min_time_key(&self) -> Option<(SimTime, u32)>;

    /// Number of pending entries.
    fn len(&self) -> usize;

    /// True when no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Move every pending entry into `out`, in arbitrary order, leaving
    /// the backend empty.
    fn drain_into(&mut self, out: &mut Vec<Entry<E>>);
}
