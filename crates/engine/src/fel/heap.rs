//! The original binary-heap FEL, kept as the differential reference for
//! [`super::CalendarFel`] (`TLB_FEL=heap`, or the `heap-fel` feature).

use super::{Entry, FelBackend};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// A `BinaryHeap`-backed FEL. [`Entry`]'s reversed `Ord` turns the std
/// max-heap into a `(time, key, seq)` min-queue.
pub struct HeapFel<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> HeapFel<E> {
    /// An empty heap.
    pub fn new() -> HeapFel<E> {
        HeapFel {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty heap with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> HeapFel<E> {
        HeapFel {
            heap: BinaryHeap::with_capacity(cap),
        }
    }
}

impl<E> Default for HeapFel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FelBackend<E> for HeapFel<E> {
    #[inline]
    fn insert(&mut self, entry: Entry<E>, _now: SimTime) {
        self.heap.push(entry);
    }

    #[inline]
    fn remove_min(&mut self) -> Option<Entry<E>> {
        self.heap.pop()
    }

    #[inline]
    fn min_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[inline]
    fn min_time_key(&self) -> Option<(SimTime, u32)> {
        self.heap.peek().map(|e| (e.time, e.key))
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn drain_into(&mut self, out: &mut Vec<Entry<E>>) {
        out.extend(self.heap.drain());
    }
}
