//! Two-tier calendar-queue FEL: a timing wheel over the near future plus a
//! binary-heap overflow tier for far-future entries.
//!
//! # Layout
//!
//! Time is divided into fixed-width buckets of `2^shift` nanoseconds; an
//! entry's *slot* is `time_ns >> shift` (violating entries are clamped to
//! `now` for bucketing only — their sort key is untouched). The wheel holds
//! the next `nb` slots as `nb` physical buckets (`slot & (nb-1)`); anything
//! at or past `slot(now) + nb` waits in the overflow heap and is promoted
//! into the wheel as the clock advances. With the default geometry
//! (512 ns × 4096 ≈ 2.1 ms) the wheel window comfortably covers
//! link-serialization, propagation and LB-tick horizons, while RTO timers
//! (≥ 10 ms) and not-yet-started flows ride the overflow tier — senders
//! keep at most one pending timer each, so overflow traffic is rare and its
//! `O(log n)` cost immaterial.
//!
//! The minimum bucket is held *activated*: its entries live in `active`,
//! sorted **descending** by `(time, key, seq)` so `Vec::pop` yields the minimum
//! without shifting. Non-active buckets are plain unsorted append vectors —
//! a push into them is O(1) — and get one `sort_unstable` when activated.
//! An occupancy bitmap (one bit per physical bucket) makes
//! next-non-empty-bucket a word scan.
//!
//! # Invariants
//!
//! 1. **Window purity.** Every wheel entry's slot lies in
//!    `[slot(now), slot(now) + nb)`: pushes outside go to overflow, and
//!    promotion (which only runs while popping, i.e. right after `now`
//!    advances) admits only slots below `slot(now) + nb`. Hence no physical
//!    bucket ever mixes two wheel rotations, and a bucket can be sorted
//!    without comparing rotation counts.
//! 2. **Tier order.** After every promotion pass, each overflow entry's
//!    slot is `>= slot(now) + nb`, strictly above every wheel entry's slot
//!    (by 1). So the wheel holds a *prefix* of the schedule and
//!    [`FelBackend::min_time`] is `active.last()` when the wheel is
//!    non-empty, else the overflow top — O(1).
//! 3. **Active minimality.** `active` is the occupied bucket with the
//!    lowest slot; a push below `active_slot` lands in a provably empty
//!    bucket (all entries at slots `< active_slot` would contradict 3, all
//!    entries at `active_slot` live in `active`) which becomes the new
//!    active bucket; the old remainder retires to its—also empty—home
//!    bucket. `wheel_len > 0` implies `active` is non-empty.
//!
//! Together with the unique `(time, key, seq)` key these give the same pop
//! sequence as any correct min-queue; see the module docs of [`super`].

use super::{Entry, FelBackend};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Default bucket width: `2^9` = 512 ns.
pub const DEFAULT_SHIFT: u32 = 9;
/// Default wheel size (buckets); with [`DEFAULT_SHIFT`] the wheel spans
/// ~2.1 ms.
pub const DEFAULT_BUCKETS: usize = 4096;

/// A two-tier calendar-queue FEL. See the module docs for the design.
pub struct CalendarFel<E> {
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Physical bucket count (power of two).
    nb: usize,
    /// `nb - 1`, as a slot mask.
    mask: u64,
    /// Unsorted append buckets, indexed by `slot & mask`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `buckets` (the active bucket's bit is clear).
    occ: Vec<u64>,
    /// The activated minimum bucket, sorted descending by `(time, key, seq)`.
    active: Vec<Entry<E>>,
    /// Absolute slot of the active bucket (meaningful iff `wheel_len > 0`).
    active_slot: u64,
    /// Entries in the wheel, including the active bucket.
    wheel_len: usize,
    /// Far-future tier (`Entry`'s reversed `Ord` makes this a min-queue).
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> CalendarFel<E> {
    /// An empty queue with the default geometry.
    pub fn new() -> CalendarFel<E> {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_BUCKETS)
    }

    /// Per-bucket capacity pre-warmed by [`CalendarFel::with_capacity`].
    /// Steady-state bucket depth in simulation runs stays in the single
    /// digits (events inside one 512 ns slot); without the pre-warm, the
    /// long tail of buckets hitting their all-time depth peak keeps
    /// doubling 4→8→16-entry vectors for the whole run, which the
    /// zero-allocation steady-state gate rejects. 32 entries × 32 bytes ×
    /// 4096 buckets ≈ 4 MB per queue — noise next to the run's metrics.
    const BUCKET_RESERVE: usize = 32;

    /// An empty queue with room reserved in the overflow tier — build-time
    /// bulk pushes (all flow-start events of a run) land there — and every
    /// wheel bucket pre-warmed to [`Self::BUCKET_RESERVE`] entries.
    pub fn with_capacity(cap: usize) -> CalendarFel<E> {
        let mut q = Self::new();
        q.overflow.reserve(cap);
        q.active.reserve(Self::BUCKET_RESERVE);
        for b in &mut q.buckets {
            b.reserve(Self::BUCKET_RESERVE);
        }
        q
    }

    /// An empty queue with `2^shift`-ns buckets and an `nb`-bucket wheel
    /// (`nb` a power of two, ≥ 64). Small wheels force heavy
    /// overflow/promotion churn and exist for stress tests; prefer
    /// [`CalendarFel::new`].
    pub fn with_geometry(shift: u32, nb: usize) -> CalendarFel<E> {
        assert!(
            nb.is_power_of_two() && nb >= 64,
            "wheel size {nb}: want a power of two >= 64"
        );
        assert!(shift < 32, "bucket shift {shift} unreasonably large");
        CalendarFel {
            shift,
            nb,
            mask: (nb - 1) as u64,
            buckets: (0..nb).map(|_| Vec::new()).collect(),
            occ: vec![0u64; nb / 64],
            active: Vec::new(),
            active_slot: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn slot_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    #[inline]
    fn set_bit(&mut self, p: usize) {
        self.occ[p / 64] |= 1u64 << (p % 64);
    }

    #[inline]
    fn clear_bit(&mut self, p: usize) {
        self.occ[p / 64] &= !(1u64 << (p % 64));
    }

    /// First occupied physical bucket at or (cyclically) after `start`.
    fn next_occupied_from(&self, start: usize) -> Option<usize> {
        let words = self.occ.len();
        let (w0, b0) = (start / 64, start % 64);
        let masked = self.occ[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        // On full wrap (`k == words`) the low bits of word `w0` are the
        // farthest-future slots; its high bits were proven clear above.
        for k in 1..=words {
            let w = (w0 + k) % words;
            if self.occ[w] != 0 {
                return Some(w * 64 + self.occ[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Move the active remainder back to its (empty) home bucket.
    fn retire_active(&mut self) {
        debug_assert!(!self.active.is_empty());
        let p = (self.active_slot & self.mask) as usize;
        debug_assert!(self.buckets[p].is_empty(), "active home bucket not empty");
        std::mem::swap(&mut self.buckets[p], &mut self.active);
        self.set_bit(p);
    }

    /// Activate the occupied bucket with the lowest slot (≥ `slot(now)`).
    fn activate_next(&mut self, now: SimTime) {
        debug_assert!(self.wheel_len > 0 && self.active.is_empty());
        let now_slot = self.slot_of(now);
        let start = (now_slot & self.mask) as usize;
        let p = self
            .next_occupied_from(start)
            .expect("wheel_len > 0 but no occupied bucket");
        self.clear_bit(p);
        // Physical → absolute slot: window purity guarantees exactly one
        // in-window rotation per physical bucket.
        let delta = (p + self.nb - start) & (self.nb - 1);
        self.active_slot = now_slot + delta as u64;
        std::mem::swap(&mut self.active, &mut self.buckets[p]);
        self.active
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.key, e.seq)));
    }

    /// Pull overflow entries whose slot fell inside the wheel window at
    /// `now` into their buckets. Runs only while popping (right after the
    /// clock advanced), which is what keeps tier order an invariant.
    fn promote(&mut self, now: SimTime) {
        let limit = self.slot_of(now) + self.nb as u64;
        while let Some(top) = self.overflow.peek() {
            let slot = self.slot_of(top.time);
            if slot >= limit {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry vanished");
            // Promoted slots exceed every pre-existing wheel slot (tier
            // order), in particular `active_slot`: always a plain bucket.
            let p = (slot & self.mask) as usize;
            self.buckets[p].push(entry);
            self.set_bit(p);
            self.wheel_len += 1;
        }
    }
}

impl<E> Default for CalendarFel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FelBackend<E> for CalendarFel<E> {
    fn insert(&mut self, entry: Entry<E>, now: SimTime) {
        // Clamp below-`now` times (a caller-counted monotonicity violation
        // that only release builds survive) for bucketing only; the entry
        // keeps its original `(time, key, seq)` sort key.
        let slot = self.slot_of(entry.time.max(now));
        if slot >= self.slot_of(now) + self.nb as u64 {
            self.overflow.push(entry);
            return;
        }
        if self.wheel_len > 0 {
            if slot == self.active_slot {
                // Sorted insert, descending. Same-instant pushes (the
                // common case: an event scheduling its immediate successor)
                // usually carry the largest `(time, key, seq)` of the bucket
                // so far and land at/near the tail — little shifting.
                let key = (entry.time, entry.key, entry.seq);
                let pos = self
                    .active
                    .partition_point(|e| (e.time, e.key, e.seq) > key);
                self.active.insert(pos, entry);
                self.wheel_len += 1;
                return;
            }
            if slot > self.active_slot {
                let p = (slot & self.mask) as usize;
                self.buckets[p].push(entry);
                self.set_bit(p);
                self.wheel_len += 1;
                return;
            }
            // New wheel minimum below the active bucket: its bucket is
            // provably empty (invariant 3), so it becomes the new active
            // bucket and the old one retires whole.
            self.retire_active();
        }
        self.active_slot = slot;
        self.active.push(entry);
        self.wheel_len += 1;
    }

    fn remove_min(&mut self) -> Option<Entry<E>> {
        if self.wheel_len == 0 {
            // Tier order: with an empty wheel the overflow top is the
            // global minimum. Promote its same-window successors so the
            // wheel resumes service.
            let entry = self.overflow.pop()?;
            self.promote(entry.time);
            if self.wheel_len > 0 {
                self.activate_next(entry.time);
            }
            return Some(entry);
        }
        let entry = self
            .active
            .pop()
            .expect("wheel_len > 0 implies a non-empty active bucket");
        self.wheel_len -= 1;
        self.promote(entry.time);
        if self.active.is_empty() && self.wheel_len > 0 {
            self.activate_next(entry.time);
        }
        Some(entry)
    }

    #[inline]
    fn min_time(&self) -> Option<SimTime> {
        if self.wheel_len > 0 {
            self.active.last().map(|e| e.time)
        } else {
            self.overflow.peek().map(|e| e.time)
        }
    }

    #[inline]
    fn min_time_key(&self) -> Option<(SimTime, u32)> {
        if self.wheel_len > 0 {
            self.active.last().map(|e| (e.time, e.key))
        } else {
            self.overflow.peek().map(|e| (e.time, e.key))
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn drain_into(&mut self, out: &mut Vec<Entry<E>>) {
        out.reserve(self.len());
        out.append(&mut self.active);
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.append(&mut self.buckets[w * 64 + b]);
            }
            self.occ[w] = 0;
        }
        out.extend(self.overflow.drain());
        self.wheel_len = 0;
        self.active_slot = 0;
    }
}
