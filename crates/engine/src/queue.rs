//! Deterministic future-event list.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: timestamp + monotone sequence number + payload.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed ordering so the `BinaryHeap` (a max-heap) pops the earliest
    /// timestamp first; ties broken by insertion sequence (FIFO).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic tie-breaking.
///
/// Events scheduled for the same timestamp are executed in the order they
/// were pushed, making simulation traces reproducible regardless of heap
/// implementation details.
///
/// ```
/// use tlb_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "second");
/// q.push(SimTime::from_micros(10), "first");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "first")));
/// assert_eq!(q.now(), SimTime::from_micros(10));
/// ```
///
/// The queue tracks the simulation clock: [`EventQueue::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling strictly in the past
/// is a logic error and panics in debug builds.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    monotonicity_violations: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            monotonicity_violations: 0,
        }
    }

    /// An empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            monotonicity_violations: 0,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// `time` may equal `now()` (the event runs later in the same instant)
    /// but must not precede it.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        if time < self.now {
            // Counted before the debug assert so release-mode audits (see
            // `monotonicity_violations`) still observe the violation.
            self.monotonicity_violations += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedule `event` `delay` after the current time.
    #[inline]
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        if entry.time < self.now {
            self.monotonicity_violations += 1;
        }
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// How many times the clock invariant was broken: an event scheduled
    /// or popped at a timestamp earlier than `now()`. Debug builds also
    /// assert on the spot; this counter is what release-mode audits check
    /// (`tlb-simnet`'s conservation audit requires it to be zero).
    #[inline]
    pub fn monotonicity_violations(&self) -> u64 {
        self.monotonicity_violations
    }

    /// Drain every still-pending event in arbitrary order, without
    /// advancing the clock. End-of-run accounting (e.g. counting packets
    /// still in flight at the horizon) wants the set, not the order.
    pub fn drain_unordered(&mut self) -> impl Iterator<Item = (SimTime, E)> + '_ {
        self.heap.drain().map(|e| (e.time, e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), 0u8);
        q.pop();
        q.push_after(SimTime::from_nanos(50), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(150), 1u8)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(99), ());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_nanos(20), 2);
        q.push(SimTime::from_nanos(30), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn counts_are_consistent() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(1), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clean_run_has_no_monotonicity_violations() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        q.pop();
        q.push(SimTime::from_nanos(15), 3);
        while q.pop().is_some() {}
        assert_eq!(q.monotonicity_violations(), 0);
    }

    #[test]
    fn past_scheduling_is_counted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        let counted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(SimTime::from_nanos(99), ());
        }));
        if cfg!(debug_assertions) {
            assert!(counted.is_err(), "debug builds must assert on the spot");
        }
        assert_eq!(q.monotonicity_violations(), 1);
    }

    #[test]
    fn drain_unordered_empties_without_advancing_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.pop();
        q.push(SimTime::from_nanos(30), 2);
        q.push(SimTime::from_nanos(20), 3);
        let mut drained: Vec<i32> = q.drain_unordered().map(|(_, e)| e).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![2, 3]);
        assert!(q.is_empty());
        assert_eq!(
            q.now(),
            SimTime::from_nanos(10),
            "drain must not move the clock"
        );
    }

    proptest! {
        /// Popping must yield non-decreasing timestamps and, within a
        /// timestamp, ascending insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li);
                    }
                }
                last = Some((t, i));
            }
        }

        /// All pushed events come back out exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, i)) = q.pop() {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
