//! Deterministic future-event list.

use crate::fel::{CalendarFel, Entry, FelBackend, FelKind, HeapFel};
use crate::time::SimTime;

/// The selected backend, dispatched statically (an enum, not a trait
/// object: push/pop are the simulator's hottest calls).
enum Backend<E> {
    Calendar(CalendarFel<E>),
    Heap(HeapFel<E>),
}

impl<E> FelBackend<E> for Backend<E> {
    #[inline]
    fn insert(&mut self, entry: Entry<E>, now: SimTime) {
        match self {
            Backend::Calendar(b) => b.insert(entry, now),
            Backend::Heap(b) => b.insert(entry, now),
        }
    }

    #[inline]
    fn remove_min(&mut self) -> Option<Entry<E>> {
        match self {
            Backend::Calendar(b) => b.remove_min(),
            Backend::Heap(b) => b.remove_min(),
        }
    }

    #[inline]
    fn min_time(&self) -> Option<SimTime> {
        match self {
            Backend::Calendar(b) => b.min_time(),
            Backend::Heap(b) => b.min_time(),
        }
    }

    #[inline]
    fn min_time_key(&self) -> Option<(SimTime, u32)> {
        match self {
            Backend::Calendar(b) => b.min_time_key(),
            Backend::Heap(b) => b.min_time_key(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Backend::Calendar(b) => b.len(),
            Backend::Heap(b) => b.len(),
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Entry<E>>) {
        match self {
            Backend::Calendar(b) => b.drain_into(out),
            Backend::Heap(b) => b.drain_into(out),
        }
    }
}

/// A future-event list with deterministic tie-breaking.
///
/// Events scheduled for the same timestamp are executed in the order they
/// were pushed (plain [`EventQueue::push`] uses ordering key 0 for every
/// entry, so ties are pure FIFO), making simulation traces reproducible
/// regardless of the storage backend: the pop order is the total order over
/// `(time, key, insertion seq)`, which both the default calendar queue and
/// the reference binary heap ([`FelKind`]) realize identically. Callers
/// that need a cross-queue merge order (the sharded engine) rank ties
/// explicitly via [`EventQueue::push_keyed`].
///
/// ```
/// use tlb_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "second");
/// q.push(SimTime::from_micros(10), "first");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "first")));
/// assert_eq!(q.now(), SimTime::from_micros(10));
/// ```
///
/// The queue tracks the simulation clock: [`EventQueue::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling strictly in the past
/// is a logic error and panics in debug builds.
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: SimTime,
    monotonicity_violations: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero, on the environment-selected
    /// backend ([`FelKind::from_env`]).
    pub fn new() -> Self {
        Self::with_kind(FelKind::from_env())
    }

    /// An empty queue with pre-allocated capacity for `cap` events, on the
    /// environment-selected backend.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_kind(cap, FelKind::from_env())
    }

    /// An empty queue on an explicitly chosen backend. Differential tests
    /// and the bench harness pin kinds this way instead of racing on the
    /// `TLB_FEL` environment variable.
    pub fn with_kind(kind: FelKind) -> Self {
        Self::with_capacity_and_kind(0, kind)
    }

    /// Explicit backend and capacity. For the calendar backend the
    /// capacity reserves the overflow tier, where build-time bulk pushes
    /// (e.g. every flow-start event of a run) land.
    pub fn with_capacity_and_kind(cap: usize, kind: FelKind) -> Self {
        let backend = match kind {
            FelKind::Calendar => Backend::Calendar(CalendarFel::with_capacity(cap)),
            FelKind::Heap => Backend::Heap(HeapFel::with_capacity(cap)),
        };
        EventQueue {
            backend,
            seq: 0,
            now: SimTime::ZERO,
            monotonicity_violations: 0,
        }
    }

    /// A calendar-backed queue with explicit wheel geometry
    /// (`2^shift`-ns buckets, `nb` of them). Tiny wheels force heavy
    /// overflow/promotion churn; stress tests use this to exercise paths
    /// the default ~2 ms window rarely hits.
    pub fn with_calendar_geometry(shift: u32, nb: usize) -> Self {
        EventQueue {
            backend: Backend::Calendar(CalendarFel::with_geometry(shift, nb)),
            seq: 0,
            now: SimTime::ZERO,
            monotonicity_violations: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> FelKind {
        match self.backend {
            Backend::Calendar(_) => FelKind::Calendar,
            Backend::Heap(_) => FelKind::Heap,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// `time` may equal `now()` (the event runs later in the same instant)
    /// but must not precede it.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        if time < self.now {
            // Counted before the debug assert so release-mode audits (see
            // `monotonicity_violations`) still observe the violation.
            self.monotonicity_violations += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.backend.insert(
            Entry {
                time,
                key: 0,
                seq,
                event,
            },
            self.now,
        );
    }

    /// Schedule `event` at `time` with an explicit ordering key: pop order
    /// is the total order over `(time, key, seq)`. Plain pushes use key 0,
    /// so a caller mixing both gets keyed entries after the key-0 ties of
    /// the same instant. The sharded engine keys every event by
    /// (event class, entity) to make the cross-shard merge order
    /// independent of per-shard `seq` counters.
    #[inline]
    pub fn push_keyed(&mut self, time: SimTime, key: u32, event: E) {
        if time < self.now {
            self.monotonicity_violations += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.backend.insert(
            Entry {
                time,
                key,
                seq,
                event,
            },
            self.now,
        );
    }

    /// Schedule `event` `delay` after the current time.
    #[inline]
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Claim the next insertion sequence number without scheduling
    /// anything. The caller parks the claimed seq elsewhere (e.g. a
    /// per-link delivery pipe) and later materializes the event with
    /// [`EventQueue::push_reserved`]; pop order treats the reservation
    /// exactly as if the event had been pushed here, so an event stream
    /// that defers some pushes through reservations is bit-identical to
    /// one that pushes everything eagerly.
    #[inline]
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Schedule `event` at `time` under a sequence number previously
    /// claimed with [`EventQueue::reserve_seq`]. Subject to the same
    /// clock-monotonicity contract as [`EventQueue::push`].
    #[inline]
    pub fn push_reserved(&mut self, time: SimTime, seq: u64, event: E) {
        if time < self.now {
            self.monotonicity_violations += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {now}",
            now = self.now
        );
        debug_assert!(
            seq < self.seq,
            "push_reserved with an unclaimed seq {seq} (next is {next})",
            next = self.seq
        );
        self.backend.insert(
            Entry {
                time,
                key: 0,
                seq,
                event,
            },
            self.now,
        );
    }

    /// The keyed twin of [`EventQueue::push_reserved`].
    #[inline]
    pub fn push_reserved_keyed(&mut self, time: SimTime, key: u32, seq: u64, event: E) {
        if time < self.now {
            self.monotonicity_violations += 1;
        }
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < now {now}",
            now = self.now
        );
        debug_assert!(
            seq < self.seq,
            "push_reserved_keyed with an unclaimed seq {seq} (next is {next})",
            next = self.seq
        );
        self.backend.insert(
            Entry {
                time,
                key,
                seq,
                event,
            },
            self.now,
        );
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.backend.remove_min()?;
        if entry.time < self.now {
            self.monotonicity_violations += 1;
        }
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.backend.min_time()
    }

    /// `(time, key)` of the earliest pending event, if any. The sharded
    /// engine's serialized merge loop compares shard heads by this pair
    /// (per-shard `seq` counters are not comparable across queues).
    #[inline]
    pub fn peek_time_key(&self) -> Option<(SimTime, u32)> {
        self.backend.min_time_key()
    }

    /// Advance the clock to `max(now, t)` without popping. The sharded
    /// engine uses this when merging shard replicas back into one report:
    /// the merged queue's clock must read the *global* end time, and any
    /// replica — including the one hosting the merge — may have stopped
    /// earlier than its peers, so joins in either direction are no-ops or
    /// forward moves, never rewinds.
    #[inline]
    pub fn join_clock(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Fold another queue's monotonicity-violation count into this one
    /// (report merging across shard replicas).
    #[inline]
    pub fn absorb_monotonicity_violations(&mut self, n: u64) {
        self.monotonicity_violations += n;
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Total number of events ever scheduled, including sequence numbers
    /// claimed via [`EventQueue::reserve_seq`] that have not materialized
    /// yet (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// How many times the clock invariant was broken: an event scheduled
    /// or popped at a timestamp earlier than `now()`. Debug builds also
    /// assert on the spot; this counter is what release-mode audits check
    /// (`tlb-simnet`'s conservation audit requires it to be zero).
    #[inline]
    pub fn monotonicity_violations(&self) -> u64 {
        self.monotonicity_violations
    }

    /// Drain every still-pending event in arbitrary order, without
    /// advancing the clock. End-of-run accounting (e.g. counting packets
    /// still in flight at the horizon) wants the set, not the order.
    pub fn drain_unordered(&mut self) -> impl Iterator<Item = (SimTime, E)> + '_ {
        let mut out = Vec::new();
        self.backend.drain_into(&mut out);
        out.into_iter().map(|e| (e.time, e.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Every queue shape a test should pass on: both production backends
    /// plus a deliberately tiny calendar wheel (16 ns × 64 buckets ≈ 1 µs
    /// window) that forces overflow, promotion and wrap-around on the same
    /// nanosecond-scale schedules the other tests use.
    fn all_queues<E>() -> Vec<(&'static str, EventQueue<E>)> {
        vec![
            ("calendar", EventQueue::with_kind(FelKind::Calendar)),
            ("heap", EventQueue::with_kind(FelKind::Heap)),
            ("calendar-tiny", EventQueue::with_calendar_geometry(4, 64)),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(30), "c");
            q.push(SimTime::from_nanos(10), "a");
            q.push(SimTime::from_nanos(20), "b");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")), "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")), "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")), "{name}");
            assert_eq!(q.pop(), None, "{name}");
        }
    }

    #[test]
    fn ties_break_fifo() {
        for (name, mut q) in all_queues() {
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i, "{name}");
            }
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_micros(7), ());
            assert_eq!(q.now(), SimTime::ZERO, "{name}");
            q.pop();
            assert_eq!(q.now(), SimTime::from_micros(7), "{name}");
        }
    }

    #[test]
    fn push_after_is_relative() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(100), 0u8);
            q.pop();
            q.push_after(SimTime::from_nanos(50), 1u8);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(150), 1u8)), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(99), ());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling_on_heap_too() {
        let mut q = EventQueue::with_kind(FelKind::Heap);
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(99), ());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(10), 1);
            q.push(SimTime::from_nanos(40), 4);
            assert_eq!(q.pop().unwrap().1, 1, "{name}");
            q.push(SimTime::from_nanos(20), 2);
            q.push(SimTime::from_nanos(30), 3);
            assert_eq!(q.pop().unwrap().1, 2, "{name}");
            assert_eq!(q.pop().unwrap().1, 3, "{name}");
            assert_eq!(q.pop().unwrap().1, 4, "{name}");
        }
    }

    #[test]
    fn counts_are_consistent() {
        for kind in [FelKind::Calendar, FelKind::Heap] {
            let mut q = EventQueue::with_capacity_and_kind(8, kind);
            assert_eq!(q.kind(), kind);
            assert!(q.is_empty());
            q.push(SimTime::from_nanos(1), ());
            q.push(SimTime::from_nanos(2), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.scheduled_total(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
            assert_eq!(q.scheduled_total(), 2);
        }
    }

    #[test]
    fn keyed_ties_rank_by_key_then_fifo() {
        // Same-instant entries order by key rank first; within a key, by
        // insertion order — and plain pushes (key 0) precede keyed ties.
        for (name, mut q) in all_queues() {
            let t = SimTime::from_nanos(9);
            q.push_keyed(t, 2, "c1");
            q.push(t, "a1");
            q.push_keyed(t, 1, "b1");
            q.push_keyed(t, 2, "c2");
            q.push_keyed(t, 1, "b2");
            q.push(t, "a2");
            let held = q.reserve_seq();
            q.push_keyed(t, 1, "b4");
            q.push_reserved_keyed(t, 1, held, "b3");
            assert_eq!(q.peek_time_key(), Some((t, 0)), "{name}");
            for want in ["a1", "a2", "b1", "b2", "b3", "b4", "c1", "c2"] {
                assert_eq!(q.pop(), Some((t, want)), "{name}");
            }
            assert_eq!(q.pop(), None, "{name}");
            assert_eq!(q.monotonicity_violations(), 0, "{name}");
        }
    }

    #[test]
    fn keyed_order_is_time_major() {
        // A later timestamp with a smaller key must still pop after every
        // earlier timestamp, across wheel and overflow tiers.
        for (name, mut q) in all_queues() {
            q.push_keyed(SimTime::from_nanos(20), 0, 2);
            q.push_keyed(SimTime::from_nanos(10), 9, 1);
            q.push_keyed(SimTime::from_millis(5), 0, 3); // overflow tier
            assert_eq!(
                q.peek_time_key(),
                Some((SimTime::from_nanos(10), 9)),
                "{name}"
            );
            assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)), "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)), "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_millis(5), 3)), "{name}");
        }
    }

    #[test]
    fn reserved_seq_keeps_fifo_position_among_ties() {
        // Claim a seq, push two later-claimed ties, then materialize the
        // reservation: it must pop *before* the ties pushed after the
        // claim, exactly where an eager push would have landed.
        for (name, mut q) in all_queues() {
            let t = SimTime::from_nanos(50);
            q.push(t, 0u32);
            let held = q.reserve_seq();
            q.push(t, 2u32);
            q.push(t, 3u32);
            q.push_reserved(t, held, 1u32);
            for want in 0..4u32 {
                assert_eq!(q.pop(), Some((t, want)), "{name}");
            }
        }
    }

    #[test]
    fn reserved_seq_counts_toward_scheduled_total() {
        for (name, mut q) in all_queues::<u8>() {
            q.push(SimTime::from_nanos(1), 0);
            let held = q.reserve_seq();
            assert_eq!(q.scheduled_total(), 2, "{name}");
            assert_eq!(q.len(), 1, "{name}");
            q.push_reserved(SimTime::from_nanos(2), held, 1);
            assert_eq!(q.scheduled_total(), 2, "{name}");
            assert_eq!(q.len(), 2, "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 0)), "{name}");
            assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 1)), "{name}");
            assert_eq!(q.monotonicity_violations(), 0, "{name}");
        }
    }

    #[test]
    fn clean_run_has_no_monotonicity_violations() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(10), 1);
            q.push(SimTime::from_nanos(20), 2);
            q.pop();
            q.push(SimTime::from_nanos(15), 3);
            while q.pop().is_some() {}
            assert_eq!(q.monotonicity_violations(), 0, "{name}");
        }
    }

    #[test]
    fn past_scheduling_is_counted() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(100), ());
            q.pop();
            let counted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                q.push(SimTime::from_nanos(99), ());
            }));
            if cfg!(debug_assertions) {
                assert!(
                    counted.is_err(),
                    "{name}: debug builds must assert on the spot"
                );
            }
            assert_eq!(q.monotonicity_violations(), 1, "{name}");
        }
    }

    #[test]
    fn drain_unordered_empties_without_advancing_clock() {
        for (name, mut q) in all_queues() {
            q.push(SimTime::from_nanos(10), 1);
            q.pop();
            q.push(SimTime::from_nanos(30), 2);
            q.push(SimTime::from_nanos(20), 3);
            // Park one entry far in the future so the calendar's overflow
            // tier participates in the drain.
            q.push(SimTime::from_secs(2), 4);
            let mut drained: Vec<i32> = q.drain_unordered().map(|(_, e)| e).collect();
            drained.sort_unstable();
            assert_eq!(drained, vec![2, 3, 4], "{name}");
            assert!(q.is_empty(), "{name}");
            assert_eq!(
                q.now(),
                SimTime::from_nanos(10),
                "{name}: drain must not move the clock"
            );
        }
    }

    #[test]
    fn far_future_rides_the_overflow_tier_in_order() {
        // Mix wheel-window and far-future times; pops must interleave them
        // in plain (time, seq) order across promotions.
        for (name, mut q) in all_queues::<u64>() {
            let times: [u64; 8] = [
                50,             // wheel
                3_000_000,      // past the default 2.1 ms window
                1_000,          // wheel
                3_000_000,      // tie with the earlier overflow push
                10_000_000_000, // 10 s out
                2_097_152,      // exactly at the default window boundary
                2_097_151,      // just inside
                60,
            ];
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i as u64);
            }
            let mut sorted: Vec<(u64, u64)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i as u64))
                .collect();
            sorted.sort_unstable();
            for &(t, i) in &sorted {
                assert_eq!(q.pop(), Some((SimTime::from_nanos(t), i)), "{name}");
            }
            assert_eq!(q.pop(), None, "{name}");
        }
    }

    #[test]
    fn wheel_wraps_across_many_rotations() {
        // March the clock through hundreds of wheel rotations of the tiny
        // geometry, alternating short and bucket-crossing gaps.
        let mut q = EventQueue::with_calendar_geometry(4, 64);
        let mut expect = SimTime::ZERO;
        q.push(SimTime::ZERO, 0u32);
        for step in 0..5_000u32 {
            let (t, _) = q.pop().expect("still marching");
            assert_eq!(t, expect);
            assert_eq!(q.now(), expect);
            let gap = match step % 4 {
                0 => 3,     // same bucket
                1 => 16,    // next bucket
                2 => 1_024, // one full rotation of the 16 ns × 64 wheel
                _ => 7_777, // several rotations, lands mid-wheel
            };
            expect += SimTime::from_nanos(gap as u64);
            q.push(expect, step);
        }
        assert_eq!(q.monotonicity_violations(), 0);
    }

    /// Per-op observation of a differential script: what popped, the peek,
    /// and the queue length.
    type StepLog = Vec<(Option<(SimTime, u32)>, Option<SimTime>, usize)>;

    /// One differential step script: interleaved pushes (with heavy
    /// timestamp ties) and pops, replayed on every backend; all observable
    /// outputs must match the heap reference exactly.
    fn run_script(q: &mut EventQueue<u32>, ops: &[(u8, u16)]) -> StepLog {
        let mut log = Vec::with_capacity(ops.len());
        for (i, &(sel, raw)) in ops.iter().enumerate() {
            let popped = match sel % 4 {
                // Push with a tie-heavy near-future offset: scale ∈
                // {0 (same instant), 1 bucket-ish, window-crossing}.
                0 | 1 => {
                    let scale = match raw % 8 {
                        0..=4 => 0,     // same-timestamp ties dominate
                        5 => 1,         // sub-bucket
                        6 => 600,       // next-bucket at default shift
                        _ => 3_000_000, // overflow tier
                    };
                    q.push_after(SimTime::from_nanos(scale * (1 + raw as u64 % 3)), i as u32);
                    None
                }
                2 => q.pop(),
                // Far-future push at an absolute slot shared by many
                // entries (promotion-order stress).
                _ => {
                    let t = q.now() + SimTime::from_nanos(2_500_000 + (raw as u64 % 4) * 512);
                    q.push(t, i as u32);
                    None
                }
            };
            log.push((popped, q.peek_time(), q.len()));
        }
        // Drain the remainder: full pop order is part of the observable
        // contract.
        while let Some(p) = q.pop() {
            log.push((Some(p), q.peek_time(), q.len()));
        }
        log
    }

    proptest! {
        /// Popping must yield non-decreasing timestamps and, within a
        /// timestamp, ascending insertion order — on every backend.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            for (name, mut q) in all_queues() {
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some((t, i)) = q.pop() {
                    if let Some((lt, li)) = last {
                        prop_assert!(t >= lt, "{name}");
                        if t == lt {
                            prop_assert!(i > li, "{name}");
                        }
                    }
                    last = Some((t, i));
                }
            }
        }

        /// All pushed events come back out exactly once — on every backend.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            for (name, mut q) in all_queues() {
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut seen = vec![false; times.len()];
                while let Some((_, i)) = q.pop() {
                    prop_assert!(!seen[i], "{name}");
                    seen[i] = true;
                }
                prop_assert!(seen.iter().all(|&s| s), "{name}");
            }
        }

        /// Differential: random interleaved push/pop/push_after scripts
        /// with heavy timestamp ties must produce identical pop results,
        /// peeks, lengths and counters on the calendar backends vs the
        /// heap reference.
        #[test]
        fn prop_backends_are_indistinguishable(
            ops in proptest::collection::vec((0u8..4, 0u16..u16::MAX), 1..300)
        ) {
            let mut reference = EventQueue::with_kind(FelKind::Heap);
            let ref_log = run_script(&mut reference, &ops);
            for (name, mut q) in [
                ("calendar", EventQueue::with_kind(FelKind::Calendar)),
                ("calendar-tiny", EventQueue::with_calendar_geometry(4, 64)),
                ("calendar-wide", EventQueue::with_calendar_geometry(14, 64)),
            ] {
                let log = run_script(&mut q, &ops);
                prop_assert_eq!(&log, &ref_log, "{} diverged from heap", name);
                prop_assert_eq!(q.now(), reference.now(), "{}: clock", name);
                prop_assert_eq!(
                    q.scheduled_total(), reference.scheduled_total(), "{}: scheduled", name
                );
                prop_assert_eq!(
                    q.monotonicity_violations(),
                    reference.monotonicity_violations(),
                    "{}: violations", name
                );
            }
        }
    }
}
