//! A counting global allocator for allocation-hygiene gates.
//!
//! The zero-allocation steady-state invariant ("no heap traffic per packet
//! after warmup") is only worth having if it is *measured*, not argued.
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation, reallocation and deallocation in relaxed atomics; a test or
//! bench binary installs it with `#[global_allocator]` and the simulator
//! snapshots [`counters`] at the warmup boundary and at loop exit to
//! report the steady-state delta.
//!
//! Two deliberate properties:
//!
//! * **Opt-in per binary.** The workspace's production binaries keep the
//!   plain system allocator; only `tests/alloc_hygiene.rs` and `bench_pr6`
//!   install the counter. Code that snapshots counters therefore must
//!   tolerate a non-counting process — [`probe_counting`] detects whether
//!   a counter is live so gates can fail loudly instead of passing
//!   vacuously when the allocator is absent.
//! * **Deterministic.** The simulator is bit-deterministic, so a given
//!   (config, flows) pair produces the *same* allocation schedule every
//!   run. The steady-state gate is therefore a hard equality (`== 0`),
//!   not a flaky threshold.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts traffic.
/// Install with `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// A snapshot of the process-wide allocation counters. All zeros unless a
/// [`CountingAlloc`] is installed as the global allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Fresh allocations (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// In-place growth requests (`realloc`) — the Vec-doubling signal.
    pub reallocs: u64,
    /// Frees.
    pub deallocs: u64,
    /// Bytes requested across allocs and reallocs.
    pub bytes: u64,
}

impl AllocCounters {
    /// Counter movement from `self` (earlier) to `later`.
    pub fn delta(self, later: AllocCounters) -> AllocCounters {
        AllocCounters {
            allocs: later.allocs - self.allocs,
            reallocs: later.reallocs - self.reallocs,
            deallocs: later.deallocs - self.deallocs,
            bytes: later.bytes - self.bytes,
        }
    }

    /// Heap acquisitions (allocations plus reallocations) — the quantity
    /// the steady-state gate pins to zero. Frees are not counted against
    /// the gate: dropping warmup-era storage after the boundary is benign.
    pub fn acquisitions(self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// Read the current counters. Cheap (four relaxed loads).
pub fn counters() -> AllocCounters {
    AllocCounters {
        allocs: ALLOCS.load(Relaxed),
        reallocs: REALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
        bytes: BYTES.load(Relaxed),
    }
}

/// Whether a [`CountingAlloc`] is actually installed in this process:
/// performs a small heap allocation and checks that the counter moved.
/// Gates call this so they fail loudly instead of passing vacuously.
pub fn probe_counting() -> bool {
    let before = ALLOCS.load(Relaxed);
    let probe = Box::new(0xA110Cu64);
    std::hint::black_box(&probe);
    drop(probe);
    ALLOCS.load(Relaxed) != before
}

#[cfg(test)]
mod tests {
    use super::*;

    // This test binary does NOT install the counting allocator, so the
    // counters must stay at zero and the probe must report "not counting".
    #[test]
    fn probe_reports_absent_allocator() {
        assert!(!probe_counting());
        assert_eq!(counters(), AllocCounters::default());
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = AllocCounters {
            allocs: 10,
            reallocs: 2,
            deallocs: 7,
            bytes: 4096,
        };
        let b = AllocCounters {
            allocs: 15,
            reallocs: 3,
            deallocs: 11,
            bytes: 8192,
        };
        let d = a.delta(b);
        assert_eq!(d.allocs, 5);
        assert_eq!(d.reallocs, 1);
        assert_eq!(d.deallocs, 4);
        assert_eq!(d.bytes, 4096);
        assert_eq!(d.acquisitions(), 6);
    }
}
