//! Cross-scheme fuzzing: every registered balancer must stay within its
//! port range and never panic, for any packet stream and queue state.

use super::Scheme;
use proptest::prelude::*;
use tlb_engine::{SimRng, SimTime};
use tlb_net::{FlowId, HostId, LinkProps, Packet, PktKind};
use tlb_switch::{OutPort, PortView, QueueCfg};

fn ports(lens: &[u8]) -> Vec<OutPort> {
    let link = LinkProps::gbps(1.0, SimTime::ZERO);
    let cfg = QueueCfg {
        capacity_pkts: 512,
        ecn_threshold_pkts: Some(20),
    };
    lens.iter()
        .map(|&n| {
            let mut p = OutPort::new(link, cfg);
            for s in 0..n {
                p.enqueue(
                    Packet::data(
                        FlowId(u32::MAX),
                        HostId(0),
                        HostId(1),
                        s as u32,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                    SimTime::ZERO,
                );
            }
            p
        })
        .collect()
}

fn packet(flow: u32, kind_sel: u8, seq: u32, now: SimTime) -> Packet {
    let kind = match kind_sel % 5 {
        0 => PktKind::Syn,
        1 => PktKind::SynAck,
        2 => PktKind::Data,
        3 => PktKind::Ack,
        _ => PktKind::Fin,
    };
    if kind == PktKind::Data {
        Packet::data(FlowId(flow), HostId(0), HostId(20), seq, 1460, 40, now)
    } else {
        Packet::control(FlowId(flow), HostId(0), HostId(20), kind, seq, now)
    }
}

proptest! {
    /// All eight schemes, arbitrary queue states and packet streams
    /// (including SYN/FIN storms and reused flow ids): decisions stay in
    /// range; ticks may fire at any time.
    #[test]
    fn prop_schemes_never_escape_port_range(
        lens in proptest::collection::vec(0u8..80, 1..24),
        stream in proptest::collection::vec((0u32..32, 0u8..5, 0u32..100, 0u64..5_000), 1..300),
        seed in 0u64..1000,
    ) {
        let ps = ports(&lens);
        let n = ps.len();
        for scheme in Scheme::extended_set() {
            let mut lb = scheme.build(seed);
            let mut rng = SimRng::new(seed);
            let mut now = SimTime::ZERO;
            let mut since_tick = SimTime::ZERO;
            for &(flow, kind, seq, dt_us) in &stream {
                let dt = SimTime::from_micros(dt_us);
                now += dt;
                since_tick += dt;
                if let Some(iv) = lb.tick_interval() {
                    if since_tick >= iv {
                        lb.on_tick(PortView::new(&ps), now);
                        since_tick = SimTime::ZERO;
                    }
                }
                let pkt = packet(flow, kind, seq, now);
                let port = lb.choose_uplink(&pkt, PortView::new(&ps), now, &mut rng);
                prop_assert!(
                    port < n,
                    "{} returned port {port} of {n}",
                    lb.name()
                );
            }
            // State accounting must never go negative-ish or explode.
            prop_assert!(lb.state_bytes() < 10_000_000);
        }
    }
}
