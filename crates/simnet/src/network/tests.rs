//! End-to-end simulator tests: physics sanity (line rate, RTT), protocol
//! sanity (completion, conservation), and determinism.

use super::*;
use crate::scheme::Scheme;
use tlb_net::{FlowId, LeafId, SpineId};
use tlb_workload::FlowSpec;

fn one_flow(size: u64) -> Vec<FlowSpec> {
    vec![FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(16), // different leaf in the basic 3x15x16 topology
        size_bytes: size,
        start: SimTime::ZERO,
        deadline: None,
    }]
}

fn run_basic(scheme: Scheme, flows: Vec<FlowSpec>) -> RunReport {
    let cfg = crate::SimConfig::basic_paper(scheme);
    Simulation::new(cfg, flows).run()
}

#[test]
fn single_small_flow_fct_is_physical() {
    // 2 segments, IW=2: handshake (1 RTT) + one window. Lower bound is
    // 1.5 RTT + serialization of 2 packets over 4 hops; upper bound a few
    // RTTs. At 1 Gbit/s + 100 us RTT this is well under 1 ms.
    let r = run_basic(Scheme::Ecmp, one_flow(2 * 1460));
    assert_eq!(r.completed, 1);
    let fct = r.fct.fct_of(FlowId(0)).unwrap();
    assert!(fct > 150e-6, "fct {fct} below propagation floor");
    assert!(fct < 1e-3, "fct {fct} implausibly slow");
    assert_eq!(r.drops, 0);
    assert_eq!(r.short.retransmits, 0);
}

#[test]
fn long_flow_reaches_near_line_rate() {
    // A window-limited DCTCP flow: W=64KB over RTT=100us allows ~5 Gbit/s,
    // so the 1 Gbit/s link is the binding constraint; expect >= 80% of line
    // rate goodput.
    let r = run_basic(Scheme::Ecmp, one_flow(20_000_000));
    assert_eq!(r.completed, 1);
    let goodput = r.fct_long.mean_goodput; // bytes/s
    assert!(
        goodput > 0.8 * 125_000_000.0,
        "goodput {:.1} Mbit/s too low",
        goodput * 8.0 / 1e6
    );
    assert!(
        goodput <= 125_000_000.0,
        "goodput exceeds line rate: {goodput}"
    );
}

#[test]
fn conservation_sent_equals_received_plus_losses() {
    // With no drops, every first-transmission data segment is received
    // exactly once (no retransmissions on a clean single flow).
    let r = run_basic(Scheme::Ecmp, one_flow(5_000_000));
    assert_eq!(r.drops, 0);
    let c = &r.long;
    assert_eq!(c.data_sent, c.data_received);
    assert_eq!(c.retransmits, 0);
    assert_eq!(c.out_of_order, 0, "single path cannot reorder");
}

#[test]
fn rps_single_flow_may_reorder_but_completes() {
    let r = run_basic(Scheme::Rps, one_flow(5_000_000));
    assert_eq!(r.completed, 1);
    // All paths symmetric: spraying reorders rarely but the flow must
    // still finish with full delivery.
    assert!(r.fct_long.mean_goodput > 0.5 * 125_000_000.0);
}

#[test]
fn two_flows_share_a_bottleneck_fairly() {
    // Two long flows from different hosts to the same destination host:
    // the receiver's access link is the bottleneck; each should get ~half.
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(16),
            size_bytes: 10_000_000,
            start: SimTime::ZERO,
            deadline: None,
        },
        FlowSpec {
            id: FlowId(1),
            src: HostId(1),
            dst: HostId(16),
            size_bytes: 10_000_000,
            start: SimTime::ZERO,
            deadline: None,
        },
    ];
    let r = run_basic(Scheme::Ecmp, flows);
    assert_eq!(r.completed, 2);
    let f0 = r.fct.fct_of(FlowId(0)).unwrap();
    let f1 = r.fct.fct_of(FlowId(1)).unwrap();
    // Perfect sharing: each 10 MB at ~62.5 MB/s ~ 0.16 s... allow wide
    // bands, but both must take clearly longer than a solo run (~0.08 s)
    // and be within 2x of each other.
    assert!(f0 > 0.12 && f1 > 0.12, "flows did not share: {f0} {f1}");
    let ratio = f0.max(f1) / f0.min(f1);
    assert!(ratio < 2.0, "unfair split: {f0} vs {f1}");
}

#[test]
fn ecn_marks_appear_under_congestion() {
    // Many senders into one receiver: the shared downlink queue must build
    // past K=20 and mark.
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: HostId(16),
            size_bytes: 2_000_000,
            start: SimTime::ZERO,
            deadline: None,
        })
        .collect();
    let r = run_basic(Scheme::Ecmp, flows);
    assert_eq!(r.completed, 8);
    assert!(r.marks > 0, "DCTCP congestion must produce CE marks");
}

#[test]
fn dctcp_keeps_queues_shallow() {
    // The same incast with DCTCP: drops should be rare or absent because
    // marking throttles senders before the 256-packet buffer fills.
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: HostId(16),
            size_bytes: 2_000_000,
            start: SimTime::ZERO,
            deadline: None,
        })
        .collect();
    let r = run_basic(Scheme::Ecmp, flows);
    let sent = r.short.data_sent + r.long.data_sent;
    assert!(
        (r.drops as f64) < 0.01 * sent as f64,
        "{} drops out of {} packets under DCTCP",
        r.drops,
        sent
    );
}

#[test]
fn determinism_same_seed_same_everything() {
    let mk = || {
        let mut cfg = crate::SimConfig::basic_paper(Scheme::letflow_default());
        cfg.seed = 42;
        let mut mix = tlb_workload::BasicMixConfig::paper_default();
        mix.n_short = 30;
        mix.n_long = 2;
        mix.long_lo = 2_000_000;
        mix.long_hi = 4_000_000;
        let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(5));
        Simulation::new(cfg, flows).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.events, b.events);
    assert_eq!(a.fct_short.afct, b.fct_short.afct);
    assert_eq!(a.fct_long.mean_goodput, b.fct_long.mean_goodput);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.marks, b.marks);
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        let mut cfg = crate::SimConfig::basic_paper(Scheme::Rps);
        cfg.seed = seed;
        let mut mix = tlb_workload::BasicMixConfig::paper_default();
        mix.n_short = 30;
        mix.n_long = 2;
        mix.long_lo = 2_000_000;
        mix.long_hi = 4_000_000;
        let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(5));
        Simulation::new(cfg, flows).run()
    };
    let a = mk(1);
    let b = mk(2);
    // Same workload, different spraying randomness: queue dynamics differ.
    // (Event counts can coincide when nothing is lost, so compare the
    // congestion-sensitive statistics instead.)
    assert!(
        a.fct_short.afct != b.fct_short.afct || a.marks != b.marks,
        "different seeds produced identical dynamics"
    );
}

#[test]
fn intra_leaf_flow_bypasses_uplinks() {
    let flows = vec![FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(1), // same leaf
        size_bytes: 1_000_000,
        start: SimTime::ZERO,
        deadline: None,
    }];
    let r = run_basic(Scheme::Ecmp, flows);
    assert_eq!(r.completed, 1);
    assert_eq!(
        r.lb_decisions, 0,
        "intra-rack traffic never consults the LB"
    );
    assert_eq!(r.mean_uplink_utilization(), 0.0);
}

#[test]
fn horizon_cuts_off_unfinished_flows() {
    let mut cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    cfg.horizon = SimTime::from_millis(1); // far too short for 100 MB
    let r = Simulation::new(cfg, one_flow(100_000_000)).run();
    assert_eq!(r.completed, 0);
    assert_eq!(r.fct_long.unfinished, 1);
    assert!(r.sim_end <= SimTime::from_millis(2));
}

#[test]
fn deadline_miss_accounting_end_to_end() {
    // One short flow with an absurdly tight deadline (1 ns: must miss) and
    // one with a loose deadline (1 s: must meet).
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(16),
            size_bytes: 50_000,
            start: SimTime::ZERO,
            deadline: Some(SimTime::from_nanos(1)),
        },
        FlowSpec {
            id: FlowId(1),
            src: HostId(1),
            dst: HostId(17),
            size_bytes: 50_000,
            start: SimTime::ZERO,
            deadline: Some(SimTime::from_secs(1)),
        },
    ];
    let r = run_basic(Scheme::tlb_default(), flows);
    assert_eq!(r.completed, 2);
    assert!((r.fct_short.deadline_miss - 0.5).abs() < 1e-9);
}

#[test]
fn tlb_records_qth_series() {
    let mut mix = tlb_workload::BasicMixConfig::paper_default();
    mix.n_short = 40;
    mix.n_long = 3;
    mix.long_lo = 3_000_000;
    mix.long_hi = 5_000_000;
    let cfg = crate::SimConfig::basic_paper(Scheme::tlb_default());
    let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(8));
    let r = Simulation::new(cfg, flows).run();
    assert_eq!(r.completed, r.total_flows);
    assert!(
        !r.qth_series.is_empty(),
        "TLB must report its threshold trajectory"
    );
    assert!(r.lb_state_bytes_peak > 0, "TLB keeps per-flow switch state");
}

#[test]
fn all_schemes_complete_the_basic_mix() {
    let mut mix = tlb_workload::BasicMixConfig::paper_default();
    mix.n_short = 20;
    mix.n_long = 2;
    mix.long_lo = 1_000_000;
    mix.long_hi = 2_000_000;
    for scheme in crate::Scheme::paper_set() {
        let name = scheme.name();
        let cfg = crate::SimConfig::basic_paper(scheme);
        let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(3));
        let r = Simulation::new(cfg, flows).run();
        assert_eq!(r.completed, r.total_flows, "{name} left flows unfinished");
        // Every byte of every flow must have been delivered in order.
        let delivered: u64 = r.short.data_received + r.long.data_received;
        assert!(delivered > 0);
    }
}

#[test]
fn asymmetric_topology_still_completes() {
    let mut cfg = crate::SimConfig::basic_paper(Scheme::letflow_default());
    cfg.topo
        .degrade_link(LeafId(0), SpineId(0), 0.25, SimTime::from_micros(200));
    cfg.topo
        .degrade_link(LeafId(0), SpineId(1), 0.25, SimTime::from_micros(200));
    let mut mix = tlb_workload::BasicMixConfig::paper_default();
    mix.n_short = 20;
    mix.n_long = 2;
    mix.long_lo = 1_000_000;
    mix.long_hi = 2_000_000;
    let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(4));
    let r = Simulation::new(cfg, flows).run();
    assert_eq!(r.completed, r.total_flows);
}

#[test]
fn utilization_bounded_by_one() {
    let r = run_basic(Scheme::Rps, one_flow(10_000_000));
    for leaf in &r.uplink_utilization {
        for &u in leaf {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
    }
}

#[test]
fn report_one_line_formats() {
    let r = run_basic(Scheme::Ecmp, one_flow(100_000));
    let line = r.one_line();
    assert!(line.contains("ECMP"));
    assert!(line.contains("afct"));
}

#[test]
fn summary_digest_matches_report() {
    let r = run_basic(Scheme::Ecmp, one_flow(1_000_000));
    let s = r.to_summary();
    assert_eq!(s.scheme, r.scheme);
    assert_eq!(s.completed, r.completed);
    assert_eq!(s.short_afct_s, r.fct_short.afct);
    assert_eq!(s.long_goodput_bps, r.long_throughput());
    assert_eq!(s.events, r.events);
    // And it serializes.
    let json = serde_json::to_string(&s).unwrap();
    assert!(json.contains("\"scheme\":\"ECMP\""));
    let back: crate::report::Summary = serde_json::from_str(&json).unwrap();
    assert_eq!(back.events, s.events);
}

#[test]
fn tracing_disabled_by_default() {
    let r = run_basic(Scheme::Rps, one_flow(500_000));
    assert!(r.traces.is_empty(), "no trace_flows -> no trace records");
}

#[test]
fn tlb_tick_cadence_is_the_update_interval() {
    let mut mix = tlb_workload::BasicMixConfig::paper_default();
    mix.n_short = 10;
    mix.n_long = 1;
    mix.long_lo = 2_000_000;
    mix.long_hi = 2_000_000;
    let cfg = crate::SimConfig::basic_paper(Scheme::tlb_default());
    let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut tlb_engine::SimRng::new(2));
    let r = Simulation::new(cfg, flows).run();
    // q_th samples arrive every 500 us (the paper's t).
    assert!(r.qth_series.len() >= 4);
    for w in r.qth_series.windows(2) {
        let dt = w[1].0 - w[0].0;
        assert!((dt - 500e-6).abs() < 1e-9, "tick spacing {dt}");
    }
}

#[test]
fn mid_run_link_change_applies() {
    use crate::config::LinkEvent;
    // One path only; brown out at t=1ms; a long flow must slow down after.
    let mut cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    cfg.topo = tlb_net::LeafSpineBuilder::new(2, 1, 2)
        .link_gbps(1.0)
        .target_rtt(SimTime::from_micros(100))
        .build()
        .into();
    cfg.link_events.push(LinkEvent {
        at: SimTime::from_millis(1),
        leaf: LeafId(0),
        spine: SpineId(0),
        new_prop_delay: None,
        bw_factor: 0.5,
        extra_delay: SimTime::ZERO,
    });
    let r = Simulation::new(
        cfg,
        vec![FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size_bytes: 5_000_000,
            start: SimTime::ZERO,
            deadline: None,
        }],
    )
    .run();
    assert_eq!(r.completed, 1);
    let fct = r.fct.fct_of(FlowId(0)).unwrap();
    // 5 MB at 1 Gbit/s ~ 40 ms; at 0.5 Gbit/s after the first ms ~ 79 ms.
    assert!(fct > 0.06, "brownout had no effect: fct {fct}");
}

#[test]
fn chained_head_start_time_is_honoured() {
    let cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    let mk = |id: u32, start_us: u64| FlowSpec {
        id: FlowId(id),
        src: HostId(0),
        dst: HostId(16),
        size_bytes: 14_600,
        start: SimTime::from_micros(start_us),
        deadline: None,
    };
    // Head starts at 5 ms; successor starts at completion (its own start
    // field, 0, is ignored).
    let flows = vec![mk(0, 5_000), mk(1, 0)];
    let r = Simulation::new_chained(cfg, flows, vec![Some(1), None]).run();
    assert_eq!(r.completed, 2);
    // Both finish quickly once launched: flow 1's FCT is small, proving its
    // clock started at launch, not at t=0 (which would add 5+ ms).
    assert!(r.fct.fct_of(FlowId(1)).unwrap() < 0.004);
}

#[test]
#[should_panic(expected = "chained twice")]
fn double_chaining_rejected() {
    let cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    let flows = one_flow(1000);
    let mut flows3 = flows.clone();
    flows3.push(FlowSpec {
        id: FlowId(1),
        ..flows[0]
    });
    flows3.push(FlowSpec {
        id: FlowId(2),
        ..flows[0]
    });
    // Flows 0 and 1 both claim flow 2 as successor.
    let _ = Simulation::new_chained(cfg, flows3, vec![Some(2), Some(2), None]);
}

#[test]
fn event_payload_stays_compact() {
    // The hot enum is copied in and out of the FEL millions of times per
    // run; `Arrive` carries a 4-byte arena handle, not a boxed packet. If
    // a new variant grows the enum past two words, that is a perf
    // regression worth a deliberate decision.
    assert!(
        std::mem::size_of::<Event>() <= 16,
        "Event grew to {} bytes",
        std::mem::size_of::<Event>()
    );
}

#[test]
fn ooo_buffers_return_to_the_pool() {
    // Every receiver's out-of-order buffer must come back to the pool at
    // FIN delivery, and a later generation of flows must be served
    // entirely from recycled buffers: misses only for the first
    // generation. (The final generation's FINs are still in flight when
    // the run loop exits on all-complete, so its buffers are legitimately
    // parked in live receivers, not the pool.)
    let cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    let mk = |id: u32, start_us: u64| FlowSpec {
        id: FlowId(id),
        src: HostId(id % 8),
        dst: HostId(16 + id % 8),
        size_bytes: 29_200,
        start: SimTime::from_micros(start_us),
        deadline: None,
    };
    // Two non-overlapping generations of 4 flows each.
    let flows: Vec<FlowSpec> = (0..4)
        .map(|i| mk(i, 0))
        .chain((4..8).map(|i| mk(i, 20_000)))
        .collect();
    let mut net = Net::build(&cfg, &flows, vec![None; flows.len()], None);
    net.run_loop();
    assert_eq!(net.n_completed, flows.len());
    let (hits, misses) = net.ooo_pool.stats();
    assert_eq!(misses, 4, "only the first generation allocates");
    assert_eq!(hits, 4, "the second generation reuses the parked buffers");
}

#[test]
fn per_packet_arena_drains_and_recycles() {
    // In per-packet delivery every in-flight packet parks in the arena,
    // and the slab must stabilize at the peak in-flight population rather
    // than growing with the total packet count. Residual slots at loop
    // exit belong to still-queued `Arrive` events; `finish_audit` drains
    // them and debug-asserts the arena empties (exercised via
    // `into_report` below, since the basic preset audits in debug builds).
    let mut cfg = crate::SimConfig::basic_paper(Scheme::Ecmp);
    cfg.delivery = crate::DeliveryKind::PerPacket;
    let flows = one_flow(500 * 1460);
    let mut net = Net::build(&cfg, &flows, vec![None; 1], None);
    net.run_loop();
    assert_eq!(net.n_completed, 1);
    let slots = net.arena.slots_allocated();
    assert!(slots > 0, "per-packet mode must actually use the arena");
    assert!(
        slots < 500,
        "slab grew to {slots} slots for a 500-segment flow — recycling broke"
    );
    assert_eq!(net.arena.peak_live(), slots);
    assert!(
        net.arena.live() as usize <= net.q.len(),
        "live slots must be exactly the still-queued arrivals"
    );
    let r = net.into_report(std::time::Duration::ZERO);
    assert_eq!(r.completed, 1);
}
