//! Deterministic multi-core execution of a single simulation via
//! conservative fabric sharding.
//!
//! One simulation is split into **shards** — per-pod for fat trees,
//! per-leaf for leaf-spine fabrics, hosts colocated with their edge/leaf
//! switch — each owning a full replica of the [`super::Net`] state but
//! touching only its own entities: its switches' ports, its hosts'
//! senders/receivers, its slice of the FEL. Shards advance in
//! barrier-synchronized **windows** bounded by the conservative lookahead
//! `Δ` = the minimum propagation delay over any cross-shard link (folded
//! over the whole [`crate::config::LinkEvent`] schedule): an event a shard
//! executes at time `t` can only influence another shard at `t + Δ` or
//! later, so every shard may freely run `[T, T + Δ)` where `T` is the
//! global minimum pending timestamp. Cross-shard packets travel as
//! [`XMsg`] handoffs through per-shard inboxes; each inbox also carries
//! its earliest pending timestamp, which the coordinator folds into `T`
//! (the null-message horizon update of classic conservative PDES, carried
//! on the data path).
//!
//! ## Why the merged schedule is bit-identical to the serial engine
//!
//! Both engines order events by `(time, key, seq)` where
//! [`super::event_key`] encodes `(class, entity)`. Every key is pushed by
//! exactly one shard (see the table in `event_key`'s docs), so:
//!
//! * same-`(time, key)` ties are always same-shard, and the shard's local
//!   FIFO `seq` assigns them exactly the relative order the serial engine
//!   would (pushes happen in the same causal order);
//! * cross-shard order at a timestamp is settled by `key` alone, which
//!   the serial engine respects by construction.
//!
//! Worker-count independence follows because nothing above depends on
//! *which OS thread* runs a shard — the shard partition is a function of
//! the topology, each shard's event stream is deterministic, and message
//! order per key is the sender's FIFO order regardless of scheduling.
//!
//! ## Global events and the serialized tail
//!
//! [`super::Event::Failure`] / [`super::Event::LinkChange`] mutate fabric
//! state every replica reads (`recompute_reach` scans the whole port
//! table). They are seeded only into shard 0's FEL and executed in
//! **micro-steps**: parallel windows never cross the next scheduled admin
//! time; when it becomes the global minimum the coordinator runs every
//! event at exactly that timestamp through the cross-shard merge loop and
//! mirrors the state mutation into every replica.
//!
//! The serial engine stops at the instant the last flow completes,
//! possibly mid-window. To reproduce that exactly, a parallel window with
//! end `E` is only opened when the run provably cannot finish inside it:
//! either some flow starts at or after `E` (its `FlowStart` is not
//! processed in the window — events run strictly before `E` — so it
//! cannot complete there), or `remaining flows > bound`, where `bound` is
//! a static upper bound on completions per window (each host can complete
//! at most `window/tx(min_wire) + 2` flows). Once neither holds — every
//! flow has started and `remaining ≤ bound` — the coordinator finishes
//! the run in a **serialized tail**: a global `(time, key)` merge across
//! the shard FELs with the serial loop's exact termination conditions.
//! For open-loop traces the `last_start` guard keeps windows parallel for
//! the whole arrival span and confines the tail to the post-trace drain;
//! small bursts take the tail from the first event — same digests, all
//! machinery exercised, no parallelism.
//!
//! ## What the sharded engine refuses (and falls back to serial on)
//!
//! Hybrid fidelity (fluid flows span shards), closed-loop chains (a
//! completion on one shard would have to start a flow on another),
//! `fault_drop_nth` (a global arrival counter), single-shard topologies,
//! zero lookahead, and ≥ 2²⁷ flows (key-space). [`try_run`] returns
//! `None` and [`super::run_with`] runs the serial engine — which is the
//! digest reference anyway.

use super::{Net, NodeRef, PlanKind, PortId, PortMap, SimConfig};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tlb_engine::{SimTime, SpinBarrier};
use tlb_net::Packet;
use tlb_workload::FlowSpec;

/// Which shard owns each entity, plus the derived per-port tables. Built
/// once per run and shared by every replica.
pub(crate) struct ShardMap {
    pub n_shards: u16,
    /// Per switch id (LB switches first, like [`PortMap::sw`]).
    pub sw_owner: Vec<u16>,
    /// Per host id (hosts live with their leaf/edge switch).
    pub host_owner: Vec<u16>,
    /// Per port: owner of the switch/host the port belongs to.
    pub port_owner: Vec<u16>,
    /// Per port: owner of the node a packet reaches after crossing the
    /// port's link — the shard that must execute the `Arrive`.
    pub arrive_owner: Vec<u16>,
}

impl ShardMap {
    /// Partition the fabric: leaf-spine → one shard per leaf (spine `s`
    /// rides with leaf `s % n_leaves`), fat tree → one shard per pod
    /// (core `c` rides with pod `c % n_pods`). Hosts follow their
    /// leaf/edge, so host links are never cross-shard.
    fn new(pmap: &PortMap) -> ShardMap {
        let (n_shards, sw_owner): (u16, Vec<u16>) = match pmap.plan {
            PlanKind::LeafSpine {
                n_leaves, n_spines, ..
            } => {
                let mut own: Vec<u16> = (0..n_leaves as u16).collect();
                own.extend((0..n_spines as u16).map(|s| s % n_leaves as u16));
                (n_leaves as u16, own)
            }
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                let n_pods = (n_edges / half) as u16;
                let mut own: Vec<u16> = (0..n_edges as u16).map(|e| e / half as u16).collect();
                own.extend((0..n_aggs as u16).map(|a| a / half as u16));
                let n_cores = half * half;
                own.extend((0..n_cores as u16).map(|c| c % n_pods));
                (n_pods, own)
            }
        };
        debug_assert_eq!(sw_owner.len(), pmap.sw.len());
        let hpl = pmap.hosts_per_lb();
        let host_owner: Vec<u16> = (0..pmap.n_hosts)
            .map(|h| sw_owner[(h / hpl) as usize])
            .collect();
        let owner_of = |n: NodeRef| match n {
            NodeRef::Host(h) => host_owner[h as usize],
            NodeRef::Switch(sw) => sw_owner[sw as usize],
        };
        let port_owner: Vec<u16> = (0..pmap.n_ports() as u32)
            .map(|p| match pmap.decode(p) {
                super::PortRef::HostNic(h) => host_owner[h as usize],
                super::PortRef::Up { sw, .. } | super::PortRef::Down { sw, .. } => {
                    sw_owner[sw as usize]
                }
            })
            .collect();
        let arrive_owner: Vec<u16> = (0..pmap.n_ports() as u32)
            .map(|p| owner_of(pmap.next_node(p)))
            .collect();
        ShardMap {
            n_shards,
            sw_owner,
            host_owner,
            port_owner,
            arrive_owner,
        }
    }
}

/// One replica's runtime handle on the partition.
pub(crate) struct ShardCtx {
    pub id: u16,
    pub map: Arc<ShardMap>,
    /// Cross-shard handoffs produced by this shard's events, drained and
    /// routed after every window (or every merged step).
    pub outbox: Vec<XMsg>,
}

impl ShardCtx {
    pub fn owns_host(&self, h: u32) -> bool {
        self.map.host_owner[h as usize] == self.id
    }
    pub fn owns_sw(&self, sw: usize) -> bool {
        self.map.sw_owner[sw] == self.id
    }
}

/// A packet crossing a shard boundary: "this packet finishes crossing
/// `port`'s link at `at`" — everything the owning shard needs to schedule
/// the `Arrive` with the exact key and timestamp the serial engine uses.
pub(crate) struct XMsg {
    pub port: PortId,
    pub at: SimTime,
    pub pkt: Packet,
}

/// A shard's mailbox: messages other shards routed to it, plus the
/// earliest pending within-horizon timestamp (`u64::MAX` when none) —
/// folded into the coordinator's global minimum so in-flight handoffs
/// keep the clock honest (the null-message role).
struct Inbox {
    msgs: Vec<XMsg>,
    min_at: u64,
}

const STATE_RUN: u8 = 0;
const STATE_DONE: u8 = 1;

/// Coordinator → workers control block, published between barriers.
struct Ctl {
    state: AtomicU8,
    window_end: AtomicU64,
}

/// Run `cfg` sharded, or return `None` when a precondition fails and the
/// caller should use the serial engine.
pub(crate) fn try_run(
    cfg: &SimConfig,
    flows: &[FlowSpec],
    next_flow: &[Option<u32>],
    workers: Option<u32>,
    wall_start: std::time::Instant,
) -> Option<crate::report::RunReport> {
    if cfg.fidelity == super::FidelityKind::Hybrid
        || cfg.fault_drop_nth.is_some()
        || next_flow.iter().any(|n| n.is_some())
        || flows.len() >= (1 << super::KEY_ENTITY_BITS)
    {
        return None;
    }
    let pmap = PortMap::new(&cfg.topo);
    let map = ShardMap::new(&pmap);
    if map.n_shards < 2 {
        return None;
    }
    let lookahead = lookahead(cfg, &pmap, &map);
    if lookahead.is_zero() {
        return None;
    }
    let map = Arc::new(map);
    let bound = completion_bound(cfg, lookahead);
    let n_shards = map.n_shards as usize;
    let n_workers = workers
        .map(|w| w as usize)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, n_shards);

    // Build every replica (in parallel — builds are independent).
    let mut slots: Vec<Option<Net>> = (0..n_shards).map(|_| None).collect();
    std::thread::scope(|sc| {
        for (sid, slot) in slots.iter_mut().enumerate() {
            let map = map.clone();
            sc.spawn(move || {
                let ctx = ShardCtx {
                    id: sid as u16,
                    map,
                    outbox: Vec::new(),
                };
                *slot = Some(Net::build(cfg, flows, next_flow.to_vec(), Some(ctx)));
            });
        }
    });
    let nets: Vec<Mutex<Net>> = slots
        .into_iter()
        .map(|n| Mutex::new(n.expect("replica build panicked")))
        .collect();

    let run = Run {
        nets: &nets,
        inboxes: (0..n_shards)
            .map(|_| {
                Mutex::new(Inbox {
                    msgs: Vec::new(),
                    min_at: u64::MAX,
                })
            })
            .collect(),
        next_time: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
        done_flows: (0..n_shards).map(|_| AtomicUsize::new(0)).collect(),
        ctl: Ctl {
            state: AtomicU8::new(STATE_RUN),
            window_end: AtomicU64::new(0),
        },
        barrier: SpinBarrier::new(n_workers),
        sched: admin_schedule(cfg),
        horizon: cfg.horizon,
        total_flows: flows.len(),
        last_start: flows.iter().map(|f| f.start.as_nanos()).max().unwrap_or(0),
        lookahead,
        bound,
        n_workers,
        windows: AtomicU64::new(0),
    };

    // Seed the published per-shard minimums so the coordinator's first
    // decision sees the real schedule.
    for (s, net) in nets.iter().enumerate() {
        let net = net.lock().unwrap();
        run.publish(s, &net);
    }

    std::thread::scope(|sc| {
        for w in 1..n_workers {
            let run = &run;
            sc.spawn(move || run.worker_loop(w));
        }
        run.worker_loop(0);
    });
    let run_windows = run.windows.load(Ordering::Relaxed);
    drop(run);

    // Fold every replica into shard 0 and report from the merged state.
    let mut nets: Vec<Net> = nets.into_iter().map(|m| m.into_inner().unwrap()).collect();
    let mut base = nets.remove(0);
    for other in nets {
        base.absorb_shard(other);
    }
    base.finish_sharded_traces();
    base.shard = None;
    let mut report = base.into_report(wall_start.elapsed());
    report.engine_workers = Some(n_workers as u32);
    report.sharded_windows = run_windows;
    Some(report)
}

/// The conservative lookahead: minimum propagation delay over every
/// cross-shard directed link, folded over the whole `LinkEvent` schedule
/// (a mid-run rewrite may shrink a delay; the lookahead must lower-bound
/// every state the link ever reaches).
fn lookahead(cfg: &SimConfig, pmap: &PortMap, map: &ShardMap) -> SimTime {
    let props_of = |p: PortId| match pmap.decode(p) {
        super::PortRef::HostNic(h) => cfg.topo.host_link_of(tlb_net::HostId(h)),
        super::PortRef::Up { sw, up } => cfg.topo.uplink_props(sw as usize, up as usize),
        super::PortRef::Down { .. } => {
            let rev = pmap.rev[p as usize];
            match pmap.decode(rev) {
                super::PortRef::HostNic(h) => cfg.topo.host_link_of(tlb_net::HostId(h)),
                super::PortRef::Up { sw, up } => cfg.topo.uplink_props(sw as usize, up as usize),
                super::PortRef::Down { .. } => unreachable!("downlink paired with a downlink"),
            }
        }
    };
    let mut min = SimTime::from_nanos(u64::MAX);
    for p in 0..pmap.n_ports() as u32 {
        if map.port_owner[p as usize] == map.arrive_owner[p as usize] {
            continue;
        }
        let mut prop = props_of(p).prop_delay;
        min = min.min(prop);
        // Replay this link's event schedule exactly like the serial
        // engine's pipe sizing does, tracking the smallest delay reached.
        let mut evs: Vec<&crate::config::LinkEvent> = cfg
            .link_events
            .iter()
            .filter(|ev| {
                let up = pmap.sw_up(ev.leaf.index() as u32, ev.spine.index() as u32);
                up == p || pmap.rev[up as usize] == p
            })
            .collect();
        evs.sort_by_key(|ev| ev.at);
        for ev in evs {
            prop = ev.new_prop_delay.unwrap_or(prop) + ev.extra_delay;
            min = min.min(prop);
        }
    }
    debug_assert!(min.as_nanos() < u64::MAX, "no cross-shard links");
    min
}

/// Upper bound on flow completions within one parallel window. A flow
/// completes only when a host-side delivery pops (Hybrid fluid
/// completions are rejected up front), each delivery completes at most
/// one flow, and deliveries to host `h` are serialized by its downlink —
/// whose props no [`crate::config::LinkEvent`] ever rewrites (they target
/// fabric uplinks). A window of length `Δ` therefore delivers at most
/// `Δ / tx_h(min_wire) + 2` packets per host.
fn completion_bound(cfg: &SimConfig, lookahead: SimTime) -> usize {
    let min_wire = cfg.tcp.header_bytes.max(1) as u64;
    let mut bound = 0usize;
    for h in 0..cfg.topo.n_hosts() {
        let link = cfg.topo.host_link_of(tlb_net::HostId(h as u32));
        let tx = tlb_engine::time::tx_time(min_wire, link.bytes_per_sec)
            .as_nanos()
            .max(1);
        bound += (lookahead.as_nanos() / tx + 2) as usize;
    }
    bound
}

/// The merged, sorted schedule of admin (failure/link-change) event
/// times. Parallel windows never cross the next entry; micro-steps
/// consume entries as they execute.
fn admin_schedule(cfg: &SimConfig) -> Vec<u64> {
    let mut at: Vec<u64> = cfg
        .link_events
        .iter()
        .map(|e| e.at.as_nanos())
        .chain(cfg.failure_events.iter().map(|e| e.at.as_nanos()))
        .collect();
    at.sort_unstable();
    at
}

/// Everything the window protocol shares across worker threads.
struct Run<'n, 'a> {
    nets: &'n [Mutex<Net<'a>>],
    inboxes: Vec<Mutex<Inbox>>,
    next_time: Vec<AtomicU64>,
    done_flows: Vec<AtomicUsize>,
    ctl: Ctl,
    barrier: SpinBarrier,
    sched: Vec<u64>,
    horizon: SimTime,
    total_flows: usize,
    /// Latest flow start time (ns). A window whose end is at or before
    /// this cannot contain the final completion, whatever `bound` says.
    last_start: u64,
    lookahead: SimTime,
    bound: usize,
    n_workers: usize,
    /// Parallel windows opened (surfaces in
    /// [`crate::report::RunReport::sharded_windows`]).
    windows: AtomicU64,
}

impl<'n, 'a> Run<'n, 'a> {
    /// Publish shard `s`'s next within-horizon timestamp and completion
    /// count (read by the coordinator after the barrier).
    fn publish(&self, s: usize, net: &Net) {
        let t = match net.q.peek_time() {
            Some(t) if t <= self.horizon => t.as_nanos(),
            _ => u64::MAX,
        };
        self.next_time[s].store(t, Ordering::Release);
        self.done_flows[s].store(net.n_completed, Ordering::Release);
    }

    /// The window protocol, from every worker's point of view. Worker 0
    /// doubles as the coordinator: it decides each window (running
    /// micro-steps and the serialized tail itself, while the other
    /// workers are parked at the barrier), publishes the decision, and
    /// then works its own shards like everyone else.
    fn worker_loop(&self, w: usize) {
        let n_shards = self.nets.len();
        let mut scratch: Vec<Vec<XMsg>> = (0..n_shards).map(|_| Vec::new()).collect();
        // Coordinator-only: index of the next unconsumed admin time.
        let mut sched_at = 0usize;
        loop {
            if w == 0 {
                self.decide(&mut sched_at);
            }
            self.barrier.wait();
            if self.ctl.state.load(Ordering::Acquire) == STATE_DONE {
                break;
            }
            let end = SimTime::from_nanos(self.ctl.window_end.load(Ordering::Acquire));
            let mut s = w;
            while s < n_shards {
                self.phase_a(s, end, &mut scratch);
                s += self.n_workers;
            }
            self.barrier.wait();
        }
    }

    /// One shard's share of a parallel window: ingest handoffs, run every
    /// local event strictly before `end`, route produced handoffs, publish
    /// the new local minimum.
    fn phase_a(&self, s: usize, end: SimTime, scratch: &mut [Vec<XMsg>]) {
        let mut net = self.nets[s].lock().unwrap();
        let msgs = {
            let mut ib = self.inboxes[s].lock().unwrap();
            ib.min_at = u64::MAX;
            std::mem::take(&mut ib.msgs)
        };
        for m in msgs {
            net.inject_arrival(m.port, m.at, m.pkt);
        }
        net.run_window(end, self.horizon);
        self.route_outbox(&mut net, scratch);
        self.publish(s, &net);
    }

    /// Drain a shard's outbox into the target shards' inboxes, batched
    /// per target (one lock per destination; per-port message order — the
    /// only order that matters — is preserved).
    fn route_outbox(&self, net: &mut Net, scratch: &mut [Vec<XMsg>]) {
        let ctx = net.shard.as_mut().expect("sharded net without ctx");
        let ShardCtx { map, outbox, .. } = ctx;
        if outbox.is_empty() {
            return;
        }
        for m in outbox.drain(..) {
            scratch[map.arrive_owner[m.port as usize] as usize].push(m);
        }
        for (t, batch) in scratch.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let bmin = batch
                .iter()
                .map(|m| m.at)
                .filter(|&at| at <= self.horizon)
                .min()
                .map(|t| t.as_nanos());
            let mut ib = self.inboxes[t].lock().unwrap();
            if let Some(bmin) = bmin {
                ib.min_at = ib.min_at.min(bmin);
            }
            ib.msgs.append(batch);
        }
    }

    /// The coordinator's between-windows step: find the global minimum,
    /// then either declare the run done, execute a micro-step (admin
    /// event), finish serially (completion tail), or open the next
    /// parallel window. Runs with every other worker parked at the
    /// barrier, so locking all shards is deadlock-free.
    fn decide(&self, sched_at: &mut usize) {
        loop {
            let done: usize = self
                .done_flows
                .iter()
                .map(|d| d.load(Ordering::Acquire))
                .sum();
            if done >= self.total_flows {
                self.finish();
                return;
            }
            let mut t_min = u64::MAX;
            for s in 0..self.nets.len() {
                t_min = t_min.min(self.next_time[s].load(Ordering::Acquire));
                t_min = t_min.min(self.inboxes[s].lock().unwrap().min_at);
            }
            if t_min == u64::MAX {
                self.finish();
                return;
            }
            let next_sched = self.sched.get(*sched_at).copied().unwrap_or(u64::MAX);
            let end = t_min
                .saturating_add(self.lookahead.as_nanos())
                .min(next_sched);
            // The run can only end inside the candidate window if every
            // flow starts strictly before its end (events run strictly
            // before `end`, so a later FlowStart cannot even be popped)
            // AND the remaining completions fit under the per-window
            // bound. Only then fall back to the serialized tail.
            if self.last_start < end && self.total_flows - done <= self.bound {
                self.run_tail();
                self.finish();
                return;
            }
            if next_sched <= t_min {
                debug_assert_eq!(next_sched, t_min, "admin event skipped a window");
                self.micro_step(SimTime::from_nanos(next_sched));
                while self.sched.get(*sched_at).copied() == Some(next_sched) {
                    *sched_at += 1;
                }
                continue;
            }
            self.windows.fetch_add(1, Ordering::Relaxed);
            self.ctl.window_end.store(end, Ordering::Release);
            self.ctl.state.store(STATE_RUN, Ordering::Release);
            return;
        }
    }

    fn finish(&self) {
        // Flush still-parked handoffs into their owners' FELs so the
        // end-of-run audit counts them as propagating residuals, exactly
        // like the serial engine's leftover in-flight packets.
        self.flush_inboxes();
        self.ctl.state.store(STATE_DONE, Ordering::Release);
    }

    fn flush_inboxes(&self) {
        for (s, ib) in self.inboxes.iter().enumerate() {
            let mut ib = ib.lock().unwrap();
            if ib.msgs.is_empty() {
                continue;
            }
            ib.min_at = u64::MAX;
            let mut net = self.nets[s].lock().unwrap();
            for m in ib.msgs.drain(..) {
                net.inject_arrival(m.port, m.at, m.pkt);
            }
        }
    }

    /// Execute every event at exactly time `at` through the global
    /// `(time, key)` merge, mirroring admin mutations into every replica.
    fn micro_step(&self, at: SimTime) {
        self.flush_inboxes();
        self.merged_loop(Some(at));
        for (s, net) in self.nets.iter().enumerate() {
            self.publish(s, &net.lock().unwrap());
        }
    }

    /// Finish the run serially: the global merge with the serial loop's
    /// exact termination conditions (stop the instant the last flow
    /// completes; never pop past the horizon).
    fn run_tail(&self) {
        self.flush_inboxes();
        self.merged_loop(None);
        for (s, net) in self.nets.iter().enumerate() {
            self.publish(s, &net.lock().unwrap());
        }
    }

    /// The cross-shard merge: repeatedly pop the `(time, key)`-minimum
    /// event over all shard FELs and dispatch it on its shard, routing
    /// handoffs immediately. `Some(at)` = micro-step (only events at
    /// exactly `at`); `None` = completion tail (serial termination).
    ///
    /// Single-origin-per-key makes the tie order exact: a `(time, key)`
    /// collision across two shards is impossible, and within a shard the
    /// FEL's own `(time, key, seq)` order applies.
    fn merged_loop(&self, only_at: Option<SimTime>) {
        let mut guards: Vec<_> = self.nets.iter().map(|m| m.lock().unwrap()).collect();
        let mut done: usize = guards.iter().map(|g| g.n_completed).sum();
        let mut outbox = Vec::new();
        loop {
            if only_at.is_none() && done >= self.total_flows {
                break;
            }
            let mut best: Option<(u64, u32, usize)> = None;
            for (s, g) in guards.iter().enumerate() {
                if let Some((t, k)) = g.q.peek_time_key() {
                    let cand = (t.as_nanos(), k, s);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((t, key, s)) = best else { break };
            match only_at {
                Some(at) if t != at.as_nanos() => break,
                _ => {}
            }
            if t > self.horizon.as_nanos() {
                break;
            }
            // Admin events mutate state every replica reads: dispatch on
            // the owning shard (accounting included), then mirror the
            // mutation everywhere else.
            let class = key >> super::KEY_ENTITY_BITS;
            let entity = (key & ((1 << super::KEY_ENTITY_BITS) - 1)) as usize;
            let before = guards[s].n_completed;
            guards[s].step();
            done += guards[s].n_completed - before;
            if class == 6 || class == 7 {
                for (r, g) in guards.iter_mut().enumerate() {
                    if r == s {
                        continue;
                    }
                    if class == 6 {
                        g.apply_link_change(entity);
                    } else {
                        g.apply_failure(entity);
                    }
                }
            }
            // Route this event's handoffs immediately — the merge may
            // reach their timestamps before the next barrier.
            let ctx = guards[s].shard.as_mut().expect("sharded net without ctx");
            if !ctx.outbox.is_empty() {
                outbox.append(&mut ctx.outbox);
                for m in outbox.drain(..) {
                    let target = guards[s]
                        .shard
                        .as_ref()
                        .expect("sharded net without ctx")
                        .map
                        .arrive_owner[m.port as usize] as usize;
                    guards[target].inject_arrival(m.port, m.at, m.pkt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::Scheme;

    #[test]
    fn leaf_spine_partition_colocates_hosts_and_spreads_spines() {
        let cfg = SimConfig::basic_paper(Scheme::Ecmp);
        let pmap = PortMap::new(&cfg.topo);
        let map = ShardMap::new(&pmap);
        let n_leaves = cfg.topo.n_leaves() as u16;
        assert_eq!(map.n_shards, n_leaves);
        for h in 0..cfg.topo.n_hosts() as u32 {
            let leaf = cfg.topo.leaf_of(tlb_net::HostId(h)).index() as u16;
            assert_eq!(map.host_owner[h as usize], leaf);
            // Host links never cross shards.
            let nic = pmap.host_nic(h);
            assert_eq!(map.port_owner[nic as usize], map.arrive_owner[nic as usize]);
        }
        // Spines are distributed round-robin.
        for s in 0..cfg.topo.n_spines() as u16 {
            assert_eq!(map.sw_owner[(n_leaves + s) as usize], s % n_leaves);
        }
    }

    #[test]
    fn fat_tree_partition_is_per_pod() {
        let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
        cfg.topo = tlb_net::FatTreeBuilder::new(4).build().into();
        let pmap = PortMap::new(&cfg.topo);
        let map = ShardMap::new(&pmap);
        let ft = cfg.topo.as_fat_tree().unwrap();
        assert_eq!(map.n_shards as usize, ft.n_pods());
        // Every edge and agg lives with its pod; hosts with their edge.
        for e in 0..ft.n_edges() {
            assert_eq!(map.sw_owner[e], (e / ft.half()) as u16);
        }
        for h in 0..cfg.topo.n_hosts() as u32 {
            let edge = ft.edge_of(tlb_net::HostId(h));
            assert_eq!(map.host_owner[h as usize], map.sw_owner[edge]);
        }
    }

    #[test]
    fn lookahead_is_min_cross_shard_prop() {
        let cfg = SimConfig::basic_paper(Scheme::Ecmp);
        let pmap = PortMap::new(&cfg.topo);
        let map = ShardMap::new(&pmap);
        let la = lookahead(&cfg, &pmap, &map);
        // Every cross-shard link is a leaf↔spine pair; the minimum is the
        // fabric's uplink propagation delay.
        assert_eq!(la, cfg.topo.uplink_props(0, 1).prop_delay);
        assert!(!la.is_zero());
    }
}
