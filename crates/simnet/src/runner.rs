//! Parallel experiment execution.
//!
//! The figure harnesses sweep (scheme × load × seed) grids; each cell is an
//! independent, deterministic simulation, so [`run_all`] fans the batch out
//! over the vendored rayon shim's scoped-thread pool: `min(TLB_THREADS,
//! batch size)` OS threads (default: available cores) claim chunks of the
//! job vector off a shared cursor and write each [`RunReport`] into the
//! slot of its input index.
//!
//! **Determinism policy.** Parallel execution must be bit-identical to
//! serial execution. That holds by construction — every simulation owns its
//! RNG (seeded from its [`SimConfig`]), its event queue, and its entire
//! fabric state; jobs share nothing and results are keyed by input
//! position, so neither thread count nor scheduling order can leak into any
//! result. The tests below keep this load-bearing: a ≥8-job batch is
//! checked to really execute on multiple distinct OS threads *and* to
//! produce reports (events, FCT stats, audit counters) identical to the
//! single-threaded run. `TLB_THREADS=1` collapses [`run_all`] to in-line
//! serial execution.

use crate::config::SimConfig;
use crate::network::Simulation;
use crate::report::RunReport;
use rayon::prelude::*;
use tlb_workload::FlowSpec;

/// Run one simulation.
pub fn run_one(cfg: SimConfig, flows: Vec<FlowSpec>) -> RunReport {
    Simulation::new(cfg, flows).run()
}

/// Run one simulation over borrowed inputs — the clone-free twin of
/// [`run_one`] for harnesses that replay the same `(config, flows)` job
/// across repetitions (benchmarks, fuzz shrinking).
pub fn run_one_ref(cfg: &SimConfig, flows: &[FlowSpec]) -> RunReport {
    cfg.validate().expect("invalid simulation configuration");
    crate::network::run_with(cfg, flows, vec![None; flows.len()])
}

/// Run a batch of independent simulations in parallel, preserving input
/// order in the output. Thread count: `TLB_THREADS` env var (or a
/// `rayon::with_threads` override), else available cores, clamped to the
/// batch size.
pub fn run_all(jobs: Vec<(SimConfig, Vec<FlowSpec>)>) -> Vec<RunReport> {
    jobs.into_par_iter()
        .map(|(cfg, flows)| run_one(cfg, flows))
        .collect()
}

/// The borrowed twin of [`run_all`]: fan a batch out without consuming it,
/// so repeated legs (benchmark reps, A/B sweeps) reuse one job vector
/// instead of cloning every config and flow list per leg.
pub fn run_all_ref(jobs: &[(SimConfig, Vec<FlowSpec>)]) -> Vec<RunReport> {
    jobs.par_iter()
        .map(|(cfg, flows)| run_one_ref(cfg, flows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use tlb_engine::SimRng;
    use tlb_workload::{basic_mix, BasicMixConfig};

    fn small_job(scheme: Scheme, seed: u64) -> (SimConfig, Vec<FlowSpec>) {
        let mut cfg = SimConfig::basic_paper(scheme);
        cfg.seed = seed;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 10;
        mix.n_long = 1;
        mix.long_lo = 1_000_000;
        mix.long_hi = 1_000_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
        (cfg, flows)
    }

    /// An 8-job batch over distinct schemes and seeds — big enough that the
    /// pool must spread it over several workers.
    fn batch() -> Vec<(SimConfig, Vec<FlowSpec>)> {
        let schemes = [
            Scheme::Ecmp,
            Scheme::Rps,
            Scheme::letflow_default(),
            Scheme::tlb_default(),
        ];
        (0..8)
            .map(|i| {
                small_job(
                    schemes[i % schemes.len()].clone(),
                    1 + (i / schemes.len()) as u64,
                )
            })
            .collect()
    }

    /// Everything a run reports that determinism must pin: engine events,
    /// both FCT summaries (exact bits via `to_bits`), transport counters,
    /// drop/mark/decision totals, and the full audit ledger.
    fn digest(r: &RunReport) -> String {
        let fct = |s: &tlb_metrics::FctSummary| {
            format!(
                "{}/{}/{:x}/{:x}/{:x}/{:x}/{:x}",
                s.completed,
                s.unfinished,
                s.afct.to_bits(),
                s.p99.to_bits(),
                s.p50.to_bits(),
                s.deadline_miss.to_bits(),
                s.mean_goodput.to_bits()
            )
        };
        format!(
            "{} ev={} short={} long={} drops={} marks={} dec={} done={}/{} end={:?} audit={:?}",
            r.scheme,
            r.events,
            fct(&r.fct_short),
            fct(&r.fct_long),
            r.drops,
            r.marks,
            r.lb_decisions,
            r.completed,
            r.total_flows,
            r.sim_end,
            r.audit,
        )
    }

    #[test]
    fn parallel_batch_preserves_order() {
        let jobs = vec![
            small_job(Scheme::Ecmp, 1),
            small_job(Scheme::Rps, 1),
            small_job(Scheme::tlb_default(), 1),
        ];
        let reports = rayon::with_threads(3, || run_all(jobs));
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].scheme, "ECMP");
        assert_eq!(reports[1].scheme, "RPS");
        assert_eq!(reports[2].scheme, "TLB");
        for r in &reports {
            assert_eq!(r.completed, r.total_flows, "{} incomplete", r.scheme);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        // Serial baseline two ways: run_one in a loop, and run_all pinned
        // to one thread (which must collapse to in-line execution).
        let by_one: Vec<RunReport> = batch()
            .into_iter()
            .map(|(cfg, flows)| run_one(cfg, flows))
            .collect();
        // The pinned leg must take the pool's in-line bypass: no workers
        // spawn, yet the digests below still match bit-for-bit.
        let before_pinned = rayon::workers_observed();
        let pinned = rayon::with_threads(1, || run_all(batch()));
        assert_eq!(
            rayon::workers_observed(),
            before_pinned,
            "pinned-to-1 batch must use the in-line bypass, not pool workers"
        );
        // The multi-threaded run, with a probe proving the batch really
        // spread over >1 OS thread (workers register only when they
        // execute at least one job).
        let before = rayon::workers_observed();
        let parallel = rayon::with_threads(4, || run_all(batch()));
        let workers = rayon::workers_observed() - before;
        assert!(
            workers >= 2,
            "8-job batch must execute on >1 OS thread, used {workers}"
        );

        assert_eq!(by_one.len(), parallel.len());
        for ((a, b), c) in by_one.iter().zip(&parallel).zip(&pinned) {
            assert_eq!(digest(a), digest(b), "parallel diverged from serial");
            assert_eq!(digest(a), digest(c), "pinned-serial diverged");
            assert!(b.audit.is_some(), "test builds must carry the audit");
        }
    }

    #[test]
    fn single_thread_spawns_no_workers() {
        let before = rayon::workers_observed();
        let reports = rayon::with_threads(1, || run_all(batch()));
        assert_eq!(reports.len(), 8);
        assert_eq!(
            rayon::workers_observed(),
            before,
            "TLB_THREADS=1 must not spawn pool workers"
        );
    }
}
