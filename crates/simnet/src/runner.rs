//! Parallel experiment execution.
//!
//! The figure harnesses sweep (scheme × load × seed) grids; each cell is an
//! independent, deterministic simulation, so they fan out across cores with
//! rayon's work-stealing pool (the canonical hpc-parallel idiom for
//! embarrassingly parallel sweeps).

use crate::config::SimConfig;
use crate::network::Simulation;
use crate::report::RunReport;
use rayon::prelude::*;
use tlb_workload::FlowSpec;

/// Run one simulation.
pub fn run_one(cfg: SimConfig, flows: Vec<FlowSpec>) -> RunReport {
    Simulation::new(cfg, flows).run()
}

/// Run a batch of independent simulations in parallel, preserving input
/// order in the output.
pub fn run_all(jobs: Vec<(SimConfig, Vec<FlowSpec>)>) -> Vec<RunReport> {
    jobs.into_par_iter()
        .map(|(cfg, flows)| run_one(cfg, flows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use tlb_engine::SimRng;
    use tlb_workload::{basic_mix, BasicMixConfig};

    fn small_job(scheme: Scheme, seed: u64) -> (SimConfig, Vec<FlowSpec>) {
        let mut cfg = SimConfig::basic_paper(scheme);
        cfg.seed = seed;
        let mut mix = BasicMixConfig::paper_default();
        mix.n_short = 10;
        mix.n_long = 1;
        mix.long_lo = 1_000_000;
        mix.long_hi = 1_000_000;
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
        (cfg, flows)
    }

    #[test]
    fn parallel_batch_preserves_order() {
        let jobs = vec![
            small_job(Scheme::Ecmp, 1),
            small_job(Scheme::Rps, 1),
            small_job(Scheme::tlb_default(), 1),
        ];
        let reports = run_all(jobs);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].scheme, "ECMP");
        assert_eq!(reports[1].scheme, "RPS");
        assert_eq!(reports[2].scheme, "TLB");
        for r in &reports {
            assert_eq!(r.completed, r.total_flows, "{} incomplete", r.scheme);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let (cfg_a, flows_a) = small_job(Scheme::letflow_default(), 3);
        let serial = run_one(cfg_a, flows_a);
        let par = run_all(vec![small_job(Scheme::letflow_default(), 3)]);
        assert_eq!(
            serial.events, par[0].events,
            "parallel run must not change results"
        );
        assert_eq!(serial.fct_short.afct, par[0].fct_short.afct);
    }
}
