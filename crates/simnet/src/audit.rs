//! Packet-conservation audit: a lifecycle ledger threaded through the
//! simulation driver plus the end-of-run invariant checks it enables.
//!
//! Every figure rests on the simulator's packet accounting being exactly
//! right — a packet silently lost between [`crate::network`]'s `enqueue`
//! and `deliver_to_host` would shift FCT/goodput numbers the same way a
//! real protocol effect would, and nothing else would notice. When
//! [`crate::SimConfig::audit`] is set, the driver reports every lifecycle
//! transition to an [`AuditLedger`]:
//!
//! ```text
//! emit ──> enqueue ──> start_service ──> tx_done ──> arrive ──┬─> deliver
//!             │                                               └─> (re-enqueue
//!             └─> drop (drop-tail)                                 at next hop)
//! ```
//!
//! and at end of run [`AuditLedger::finish`] proves, per packet class:
//!
//! - **conservation** — `emitted == delivered + dropped + in-flight at
//!   horizon` (in flight = queued in a port, being serialized, or
//!   propagating on a link);
//! - **stage consistency** — each lifecycle stage's count equals its
//!   predecessor's minus what verifiably remains between them;
//! - **per-port accounting** — `stats.enqueued` equals `stats.pkts_tx +
//!   queued + in-service` and queued bytes match the queued packets, for
//!   every port in the fabric;
//! - **clock monotonicity** — the engine's
//!   [`tlb_engine::EventQueue::monotonicity_violations`] counter is zero;
//! - **transport invariants** — every live sender still satisfies
//!   `snd_una ≤ snd_nxt`, `cwnd ≥ 1`, and `timer pending ⇒ deadline ≥
//!   armed-at` ([`tlb_transport::TcpSender::invariant_violation`]).
//!
//! Any violation panics with a labelled diff naming the class, the stage
//! equation, and both sides' values. A passing audit is surfaced as
//! [`AuditReport`] in [`crate::RunReport::audit`].
//!
//! The ledger is a handful of `u64` counters per packet class; with the
//! flag off every hook is a no-op, so release figure runs and benches pay
//! nothing.

use tlb_net::{Packet, PktKind};

/// Number of packet classes ([`PktKind`] variants).
const KINDS: usize = 5;

const KIND_NAMES: [&str; KINDS] = ["Syn", "SynAck", "Data", "Ack", "Fin"];

fn kind_idx(kind: PktKind) -> usize {
    match kind {
        PktKind::Syn => 0,
        PktKind::SynAck => 1,
        PktKind::Data => 2,
        PktKind::Ack => 3,
        PktKind::Fin => 4,
    }
}

/// Lifecycle counters for one packet class. Hop-level stages (`enqueued`,
/// `tx_started`, ...) count *events*, so one packet crossing four ports
/// contributes four; endpoint stages (`emitted`, `delivered`) count
/// packets exactly once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Packets handed to the fabric by an endpoint (sender output or a
    /// receiver's response).
    pub emitted: u64,
    /// Port admission attempts (once per hop).
    pub enqueue_attempts: u64,
    /// Port admissions (once per hop).
    pub enqueued: u64,
    /// Drop-tail rejections — the packet is gone.
    pub dropped: u64,
    /// Serializations started (once per hop).
    pub tx_started: u64,
    /// Serializations completed (once per hop).
    pub tx_done: u64,
    /// Arrivals after link propagation (once per hop).
    pub arrived: u64,
    /// Packets that reached their destination endpoint.
    pub delivered: u64,
    /// End of run: packets still sitting in some port's queue.
    pub queued_at_end: u64,
    /// End of run: packets being serialized (pending `TxDone` events).
    pub in_service_at_end: u64,
    /// End of run: packets propagating on a link (pending `Arrive`
    /// events).
    pub propagating_at_end: u64,
}

impl KindCounts {
    /// Packets in flight inside the fabric when the run ended.
    pub fn in_flight_at_end(&self) -> u64 {
        self.queued_at_end + self.in_service_at_end + self.propagating_at_end
    }
}

/// The audit outcome surfaced in [`crate::RunReport`]: the full ledger
/// plus what was checked. Present only when the run had
/// [`crate::SimConfig::audit`] set — and then only if every invariant
/// held, since violations panic instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Lifecycle counters per packet class, indexed like [`PktKind`].
    pub kinds: [KindCounts; KINDS],
    /// Ports whose accounting was verified (every port in the fabric).
    pub ports_checked: usize,
    /// Live senders whose transport invariants were verified.
    pub senders_checked: usize,
    /// Live receivers whose delivery invariants were verified.
    pub receivers_checked: usize,
    /// The engine's clock-violation counter (zero, or the audit panicked).
    pub monotonicity_violations: u64,
}

impl AuditReport {
    /// Total packets emitted into the fabric across all classes.
    pub fn total_emitted(&self) -> u64 {
        self.kinds.iter().map(|k| k.emitted).sum()
    }

    /// Total packets delivered to endpoints across all classes.
    pub fn total_delivered(&self) -> u64 {
        self.kinds.iter().map(|k| k.delivered).sum()
    }

    /// Total drop-tail losses across all classes.
    pub fn total_dropped(&self) -> u64 {
        self.kinds.iter().map(|k| k.dropped).sum()
    }
}

/// The in-run side of the audit: the driver calls one hook per lifecycle
/// transition. Disabled, every hook is a branch-and-return.
#[derive(Debug)]
pub struct AuditLedger {
    enabled: bool,
    kinds: [KindCounts; KINDS],
}

impl AuditLedger {
    /// A ledger; when `enabled` is false all hooks no-op and
    /// [`AuditLedger::finish`] returns `None`.
    pub fn new(enabled: bool) -> AuditLedger {
        AuditLedger {
            enabled,
            kinds: [KindCounts::default(); KINDS],
        }
    }

    /// Whether hooks record anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add another ledger's counters into this one (sharded runs keep one
    /// ledger per shard and merge before [`AuditLedger::finish`]). Counter
    /// sums commute, so the merged ledger equals a serial run's.
    pub fn absorb(&mut self, other: &AuditLedger) {
        debug_assert_eq!(self.enabled, other.enabled);
        for (mine, theirs) in self.kinds.iter_mut().zip(&other.kinds) {
            mine.emitted += theirs.emitted;
            mine.enqueue_attempts += theirs.enqueue_attempts;
            mine.enqueued += theirs.enqueued;
            mine.dropped += theirs.dropped;
            mine.tx_started += theirs.tx_started;
            mine.tx_done += theirs.tx_done;
            mine.arrived += theirs.arrived;
            mine.delivered += theirs.delivered;
            mine.queued_at_end += theirs.queued_at_end;
            mine.in_service_at_end += theirs.in_service_at_end;
            mine.propagating_at_end += theirs.propagating_at_end;
        }
    }

    #[inline]
    fn at(&mut self, pkt: &Packet) -> &mut KindCounts {
        &mut self.kinds[kind_idx(pkt.kind)]
    }

    /// An endpoint handed `pkt` to the fabric.
    #[inline]
    pub fn emitted(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).emitted += 1;
        }
    }

    /// `pkt` was offered to a port (admission not yet decided).
    #[inline]
    pub fn enqueue_attempt(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).enqueue_attempts += 1;
        }
    }

    /// A port admitted `pkt`.
    #[inline]
    pub fn enqueued(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).enqueued += 1;
        }
    }

    /// Drop-tail rejected `pkt`.
    #[inline]
    pub fn dropped(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).dropped += 1;
        }
    }

    /// A port began serializing `pkt`.
    #[inline]
    pub fn tx_started(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).tx_started += 1;
        }
    }

    /// A port finished serializing `pkt`.
    #[inline]
    pub fn tx_done(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).tx_done += 1;
        }
    }

    /// `pkt` arrived at a node after propagation.
    #[inline]
    pub fn arrived(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).arrived += 1;
        }
    }

    /// `pkt` reached its destination endpoint.
    #[inline]
    pub fn delivered(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).delivered += 1;
        }
    }

    /// End of run: `pkt` was still queued in a port.
    #[inline]
    pub fn residual_queued(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).queued_at_end += 1;
        }
    }

    /// End of run: `pkt` was mid-serialization (its `TxDone` was pending).
    #[inline]
    pub fn residual_in_service(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).in_service_at_end += 1;
        }
    }

    /// End of run: `pkt` was propagating (its `Arrive` was pending).
    #[inline]
    pub fn residual_propagating(&mut self, pkt: &Packet) {
        if self.enabled {
            self.at(pkt).propagating_at_end += 1;
        }
    }

    /// Close the ledger: verify every invariant and produce the report.
    ///
    /// The caller supplies the fabric-wide facts the ledger cannot see:
    /// per-port `(enqueued, pkts_tx, queued_now, in_service, byte
    /// mismatch)` tuples via `ports`, the engine's monotonicity counter,
    /// and per-sender / per-receiver invariant findings. Residual hooks
    /// must already have been fed every still-queued and still-pending
    /// packet.
    ///
    /// # Panics
    ///
    /// On any violated invariant, with a labelled diff of every failure.
    pub fn finish(
        self,
        ports: &[PortAudit],
        monotonicity_violations: u64,
        sender_violations: &[(usize, String)],
        senders_checked: usize,
        receiver_violations: &[(usize, String)],
        receivers_checked: usize,
    ) -> Option<AuditReport> {
        if !self.enabled {
            return None;
        }
        let mut violations: Vec<String> = Vec::new();

        for (k, c) in self.kinds.iter().enumerate() {
            let name = KIND_NAMES[k];
            let mut check = |label: &str, lhs: u64, rhs: u64| {
                if lhs != rhs {
                    violations.push(format!(
                        "[{name}] {label}: {lhs} != {rhs} (diff {})",
                        lhs as i128 - rhs as i128
                    ));
                }
            };
            // Conservation: what went in is delivered, dropped, or still
            // verifiably inside the fabric.
            check(
                "conservation: emitted == delivered + dropped + in_flight",
                c.emitted,
                c.delivered + c.dropped + c.in_flight_at_end(),
            );
            // Stage consistency, stage by stage.
            check(
                "every emission or forwarding reaches a port: \
                 enqueue_attempts == emitted + (arrived - delivered)",
                c.enqueue_attempts,
                c.emitted + c.arrived - c.delivered,
            );
            check(
                "admission: enqueued == enqueue_attempts - dropped",
                c.enqueued,
                c.enqueue_attempts - c.dropped,
            );
            check(
                "service: tx_started == enqueued - queued_at_end",
                c.tx_started,
                c.enqueued - c.queued_at_end,
            );
            check(
                "serialization: tx_done == tx_started - in_service_at_end",
                c.tx_done,
                c.tx_started - c.in_service_at_end,
            );
            check(
                "propagation: arrived == tx_done - propagating_at_end",
                c.arrived,
                c.tx_done - c.propagating_at_end,
            );
        }

        // Per-port accounting: every admitted packet is transmitted,
        // queued, or in service — nowhere else.
        let mut port_drops = 0u64;
        for p in ports {
            port_drops += p.dropped;
            let accounted = p.pkts_tx + p.queued_now + p.in_service as u64;
            if p.enqueued != accounted {
                violations.push(format!(
                    "[port {}] stats.enqueued {} != pkts_tx {} + queued {} + in_service {}",
                    p.label, p.enqueued, p.pkts_tx, p.queued_now, p.in_service as u64
                ));
            }
            if p.queued_bytes_stat != p.queued_bytes_actual {
                violations.push(format!(
                    "[port {}] len_bytes {} != sum of queued wire_bytes {}",
                    p.label, p.queued_bytes_stat, p.queued_bytes_actual
                ));
            }
        }
        let ledger_drops: u64 = self.kinds.iter().map(|c| c.dropped).sum();
        if port_drops != ledger_drops {
            violations.push(format!(
                "[ports] total stats.dropped {port_drops} != ledger drops {ledger_drops}"
            ));
        }

        if monotonicity_violations != 0 {
            violations.push(format!(
                "[engine] event clock ran backwards {monotonicity_violations} time(s)"
            ));
        }

        for (flow, v) in sender_violations {
            violations.push(format!("[sender flow {flow}] {v}"));
        }
        for (flow, v) in receiver_violations {
            violations.push(format!("[receiver flow {flow}] {v}"));
        }

        assert!(
            violations.is_empty(),
            "packet-conservation audit failed ({} violation(s)):\n  {}",
            violations.len(),
            violations.join("\n  ")
        );

        Some(AuditReport {
            kinds: self.kinds,
            ports_checked: ports.len(),
            senders_checked,
            receivers_checked,
            monotonicity_violations,
        })
    }
}

/// One port's end-of-run accounting snapshot, checked by
/// [`AuditLedger::finish`].
#[derive(Clone, Debug)]
pub struct PortAudit {
    /// Human-readable port name for violation messages.
    pub label: String,
    /// `stats().enqueued`.
    pub enqueued: u64,
    /// `stats().pkts_tx`.
    pub pkts_tx: u64,
    /// `stats().dropped`.
    pub dropped: u64,
    /// `len_pkts()` at end of run.
    pub queued_now: u64,
    /// `in_service()` at end of run.
    pub in_service: bool,
    /// `len_bytes()` at end of run.
    pub queued_bytes_stat: u64,
    /// Sum of queued packets' `wire_bytes` at end of run.
    pub queued_bytes_actual: u64,
}

impl PortAudit {
    /// Snapshot a port.
    pub fn of(label: String, port: &tlb_switch::OutPort) -> PortAudit {
        PortAudit {
            label,
            enqueued: port.stats().enqueued,
            pkts_tx: port.stats().pkts_tx,
            dropped: port.stats().dropped,
            queued_now: port.len_pkts() as u64,
            in_service: port.in_service(),
            queued_bytes_stat: port.len_bytes(),
            queued_bytes_actual: port.iter_queued().map(|p| p.wire_bytes as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_engine::SimTime;
    use tlb_net::{FlowId, HostId};

    fn pkt(kind: PktKind) -> Packet {
        match kind {
            PktKind::Data => {
                Packet::data(FlowId(1), HostId(0), HostId(1), 0, 1460, 40, SimTime::ZERO)
            }
            k => Packet::control(FlowId(1), HostId(0), HostId(1), k, 0, SimTime::ZERO),
        }
    }

    /// Walk one packet through a clean single-hop lifecycle.
    fn clean_single_hop(ledger: &mut AuditLedger, kind: PktKind) {
        let p = pkt(kind);
        ledger.emitted(&p);
        ledger.enqueue_attempt(&p);
        ledger.enqueued(&p);
        ledger.tx_started(&p);
        ledger.tx_done(&p);
        ledger.arrived(&p);
        ledger.delivered(&p);
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut l = AuditLedger::new(true);
        clean_single_hop(&mut l, PktKind::Syn);
        clean_single_hop(&mut l, PktKind::Data);
        let report = l.finish(&[], 0, &[], 3, &[], 3).unwrap();
        assert_eq!(report.total_emitted(), 2);
        assert_eq!(report.total_delivered(), 2);
        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.senders_checked, 3);
        assert_eq!(report.receivers_checked, 3);
    }

    #[test]
    fn multi_hop_forwarding_balances() {
        // One Data packet crossing two ports before delivery.
        let mut l = AuditLedger::new(true);
        let p = pkt(PktKind::Data);
        l.emitted(&p);
        for _ in 0..2 {
            l.enqueue_attempt(&p);
            l.enqueued(&p);
            l.tx_started(&p);
            l.tx_done(&p);
            l.arrived(&p);
        }
        // First arrival forwards (re-enqueues); second delivers.
        l.delivered(&p);
        l.finish(&[], 0, &[], 0, &[], 0).unwrap();
    }

    #[test]
    fn dropped_and_residual_packets_balance() {
        let mut l = AuditLedger::new(true);
        let p = pkt(PktKind::Data);
        // One dropped at admission.
        l.emitted(&p);
        l.enqueue_attempt(&p);
        l.dropped(&p);
        // One still queued at the horizon.
        l.emitted(&p);
        l.enqueue_attempt(&p);
        l.enqueued(&p);
        l.residual_queued(&p);
        // One still propagating.
        l.emitted(&p);
        l.enqueue_attempt(&p);
        l.enqueued(&p);
        l.tx_started(&p);
        l.tx_done(&p);
        l.residual_propagating(&p);
        let r = l
            .finish(
                &[PortAudit {
                    label: "test".into(),
                    enqueued: 2,
                    pkts_tx: 1,
                    dropped: 1,
                    queued_now: 1,
                    in_service: false,
                    queued_bytes_stat: 1500,
                    queued_bytes_actual: 1500,
                }],
                0,
                &[],
                1,
                &[],
                1,
            )
            .unwrap();
        assert_eq!(r.kinds[kind_idx(PktKind::Data)].in_flight_at_end(), 2);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn lost_packet_is_caught() {
        let mut l = AuditLedger::new(true);
        let p = pkt(PktKind::Data);
        l.emitted(&p);
        l.enqueue_attempt(&p);
        l.enqueued(&p);
        l.tx_started(&p);
        l.tx_done(&p);
        // The packet vanishes between tx_done and arrive — no residual
        // accounts for it.
        l.finish(&[], 0, &[], 0, &[], 0);
    }

    #[test]
    #[should_panic(expected = "stats.enqueued")]
    fn port_mismatch_is_caught() {
        let l = AuditLedger::new(true);
        l.finish(
            &[PortAudit {
                label: "leaf0.up3".into(),
                enqueued: 10,
                pkts_tx: 8,
                dropped: 0,
                queued_now: 1,
                in_service: false,
                queued_bytes_stat: 1500,
                queued_bytes_actual: 1500,
            }],
            0,
            &[],
            0,
            &[],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "clock ran backwards")]
    fn monotonicity_violation_is_caught() {
        AuditLedger::new(true).finish(&[], 3, &[], 0, &[], 0);
    }

    #[test]
    #[should_panic(expected = "sender flow 7")]
    fn sender_violation_is_caught() {
        AuditLedger::new(true).finish(&[], 0, &[(7, "cwnd 0.5 < 1 segment".into())], 1, &[], 0);
    }

    #[test]
    #[should_panic(expected = "receiver flow 4")]
    fn receiver_violation_is_caught() {
        AuditLedger::new(true).finish(
            &[],
            0,
            &[],
            0,
            &[(4, "rcv_nxt moved backwards: 2 after watermark 5".into())],
            1,
        );
    }

    #[test]
    fn disabled_ledger_reports_nothing() {
        let mut l = AuditLedger::new(false);
        let p = pkt(PktKind::Data);
        l.emitted(&p); // would violate conservation if counted
        assert!(l.finish(&[], 99, &[], 0, &[], 0).is_none());
    }
}
