//! Simulation configuration: topology + transport + switch + scheme.

use crate::dispatch::LbDispatch;
use crate::scheme::Scheme;
use tlb_engine::{EngineKind, FelKind, SimTime};
use tlb_net::{Fabric, LeafId, LeafSpineBuilder, SpineId};
use tlb_switch::QueueCfg;
use tlb_transport::TcpConfig;

/// A scheduled mid-run change to one LB-switch uplink and its reverse
/// direction: at `at`, the link's bandwidth is multiplied by `bw_factor`
/// (of its *current* value) and its propagation delay becomes
/// `new_prop_delay.unwrap_or(current) + extra_delay` — in both directions.
/// Models failures/brownouts (paper §7's asymmetry, but dynamic), and with
/// `bw_factor > 1` or a shorter `new_prop_delay`, mid-run *improvements*
/// (repairs).
#[derive(Clone, Copy, Debug)]
pub struct LinkEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// The LB switch owning the uplink (leaf-spine: leaf; fat tree: edges
    /// then aggs, in global LB-switch order).
    pub leaf: LeafId,
    /// The uplink index within that switch.
    pub spine: SpineId,
    /// Multiplier on the current bandwidth; must be positive. Values above
    /// 1 model a repair/upgrade.
    pub bw_factor: f64,
    /// Replace the one-way propagation delay with this value (before
    /// `extra_delay` is added). `None` keeps the current delay.
    pub new_prop_delay: Option<SimTime>,
    /// Added one-way propagation delay.
    pub extra_delay: SimTime,
}

/// What a [`FailureEvent`] acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureTarget {
    /// One LB-switch uplink and its reverse direction (leaf<->spine,
    /// edge<->agg, or agg<->core).
    Link {
        /// The LB switch owning the uplink (same indexing as
        /// [`LinkEvent::leaf`]).
        sw: LeafId,
        /// The uplink index within that switch.
        up: SpineId,
    },
    /// Every port of one switch (and the reverse direction of each), i.e.
    /// the whole box goes dark.
    Switch {
        /// Global switch index in `0..topo.n_switches()`: LB switches
        /// first (leaves, or edges then aggs), then spines/cores.
        sw: usize,
    },
}

/// Whether a [`FailureEvent`] takes its target down or brings it back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureAction {
    /// Ports go administratively down: packets already queued or in
    /// service drain normally; new admissions are dropped (and counted as
    /// drops). Routing reconverges around the failure immediately.
    Down,
    /// Ports come back up and routing reconverges to use them again.
    Up,
}

/// A scheduled binary link/switch failure or repair. Unlike [`LinkEvent`]
/// (which degrades link *quality*), a failure removes capacity outright
/// and forces the fabric's reachability masks to be recomputed.
#[derive(Clone, Copy, Debug)]
pub struct FailureEvent {
    /// When the failure/repair takes effect.
    pub at: SimTime,
    /// What fails or recovers.
    pub target: FailureTarget,
    /// Down or up.
    pub action: FailureAction,
}

/// Everything needed to run one simulation (besides the flow set).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The fabric (two-tier leaf-spine or three-tier fat tree).
    pub topo: Fabric,
    /// Transport endpoints' parameters.
    pub tcp: TcpConfig,
    /// Switch output-queue parameters (buffer size, ECN threshold).
    pub queue: QueueCfg,
    /// Host NIC queue parameters (large buffer; same ECN marking).
    pub host_queue: QueueCfg,
    /// The load-balancing scheme under test.
    pub scheme: Scheme,
    /// Master seed: fixes the balancers' randomness. (Workload randomness
    /// is seeded separately by the generator.)
    pub seed: u64,
    /// Hard stop; flows unfinished by then count as incomplete/missed.
    pub horizon: SimTime,
    /// Metrics classification threshold for short vs long (paper: 100 KB).
    pub short_threshold: u64,
    /// Bucket width for "instantaneous" time series.
    pub series_bucket: SimTime,
    /// Mid-run link degradations (failure injection).
    pub link_events: Vec<LinkEvent>,
    /// Mid-run binary link/switch failures and repairs.
    pub failure_events: Vec<FailureEvent>,
    /// Flows whose packets should be path-traced into
    /// [`crate::RunReport::traces`] (diagnostics/tests; keep small — every
    /// hop of every traced packet is recorded).
    pub trace_flows: Vec<tlb_net::FlowId>,
    /// Sample leaf-0's uplink queue lengths every `series_bucket` into
    /// [`crate::RunReport::queue_series`] (the Fig. 5 queueing-process
    /// visualization).
    pub sample_queues: bool,
    /// Run the packet-conservation audit (see [`crate::audit`]): track
    /// every packet's lifecycle and prove conservation, per-port
    /// accounting consistency, clock monotonicity, and transport
    /// invariants at end of run, panicking with a labelled diff on any
    /// violation. The preset constructors enable it in debug builds
    /// (therefore in `cargo test` and every tier-1 run) and disable it in
    /// release figure runs so benchmarks are unaffected.
    pub audit: bool,
    /// Fault injection for audit tests: silently discard the Nth arrival
    /// event (1-based) *without* telling any accounting layer — the kind
    /// of driver bug the audit exists to catch. `None` (always, outside
    /// audit tests) disables it.
    #[doc(hidden)]
    pub fault_drop_nth: Option<u64>,
    /// Future-event-list backend for the run. Presets take the process
    /// default (`TLB_FEL` env var / `heap-fel` feature, else the calendar
    /// queue); the differential tests and `bench_pr4` pin it explicitly.
    /// Both backends are bit-identical in results — this only selects the
    /// data structure.
    pub fel: FelKind,
    /// Load-balancer dispatch path. Presets take the process default
    /// (`TLB_LB_DISPATCH` env var / `dyn-lb` feature, else static enum
    /// dispatch); differential tests and `bench_pr5` pin it explicitly.
    /// Both paths are bit-identical in results — this only selects the
    /// call mechanism.
    pub lb_dispatch: LbDispatch,
    /// Packet-delivery scheduling. Presets take the process default
    /// (`TLB_DELIVERY` env var, else per-link pipelines); differential
    /// tests and `bench_pr5` pin it explicitly. Both modes are
    /// bit-identical in results — this only selects how arrivals sit in
    /// the future-event list.
    pub delivery: DeliveryKind,
    /// Simulation fidelity. Presets take the process default
    /// (`TLB_FIDELITY` env var, else full packet fidelity). Unlike the
    /// other differential knobs, [`FidelityKind::Hybrid`] is a *modeling*
    /// change: long-flow tails ride a fluid fair-share rate model, so
    /// results agree with [`FidelityKind::Packet`] within tolerance bands
    /// (`tests/fidelity.rs`) rather than bit-for-bit.
    pub fidelity: FidelityKind,
    /// `Some(W)`: snapshot the process allocation counters when the run
    /// loop has processed `W` events and report the steady-state delta in
    /// [`crate::RunReport::alloc_audit`]. Only meaningful when the binary
    /// installs [`tlb_engine::CountingAlloc`] and the run executes
    /// serially (the counters are process-wide). Presets take the process
    /// default (`TLB_ALLOC_AUDIT` env var: `1` for a default warmup of
    /// 2^17 events, or an explicit event count); `None` when a run ends
    /// before `W` events. The simulator is deterministic, so the delta is
    /// exactly reproducible for a given (config, flows) pair.
    pub alloc_warmup_events: Option<u64>,
    /// Execution engine. Presets take the process default (`TLB_ENGINE`
    /// env var: `serial`, `sharded`, or `sharded:<workers>`, defaulting
    /// to serial). [`tlb_engine::EngineKind::Sharded`] executes the run
    /// across OS threads via conservative fabric sharding; results are
    /// bit-identical to serial for any worker count
    /// (`tests/determinism.rs`). Configurations the sharded engine cannot
    /// partition (hybrid fidelity, chained flows, single-shard
    /// topologies, …) silently run serially — see
    /// `network/sharded.rs` for the exact preconditions.
    pub engine: EngineKind,
}

/// The default warmup (in processed events) for `TLB_ALLOC_AUDIT=1`.
pub const DEFAULT_ALLOC_WARMUP_EVENTS: u64 = 1 << 17;

/// Parse `TLB_ALLOC_AUDIT`: unset/`0`/empty disables, `1` enables with
/// [`DEFAULT_ALLOC_WARMUP_EVENTS`], any other integer is the warmup event
/// count itself.
fn alloc_warmup_from_env() -> Option<u64> {
    tlb_engine::env_knob::parse_with("TLB_ALLOC_AUDIT", None, |s| match s {
        "0" => Ok(None),
        "1" => Ok(Some(DEFAULT_ALLOC_WARMUP_EVENTS)),
        other => other
            .parse::<u64>()
            .map(Some)
            .map_err(|_| "want 0, 1, or a warmup event count".to_string()),
    })
}

/// How in-flight packets are scheduled for arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryKind {
    /// One `VecDeque` pipe per link with a single chained delivery event:
    /// FEL occupancy stays O(ports + links + timers) regardless of
    /// packets in flight — the default production path.
    Pipelined,
    /// One FEL entry per in-flight packet, kept as the differential
    /// reference.
    PerPacket,
}

impl DeliveryKind {
    /// The delivery mode selected by the environment:
    /// `TLB_DELIVERY=pipelined` or `=per-packet`, defaulting to
    /// [`DeliveryKind::Pipelined`].
    pub fn from_env() -> DeliveryKind {
        tlb_engine::env_knob::choice(
            "TLB_DELIVERY",
            DeliveryKind::Pipelined,
            &[
                ("pipelined", DeliveryKind::Pipelined),
                ("per-packet", DeliveryKind::PerPacket),
                ("per_packet", DeliveryKind::PerPacket),
            ],
        )
    }
}

/// Which traffic runs at packet-level fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FidelityKind {
    /// Everything is simulated packet by packet — the reference mode, and
    /// the default. Bit-identical to the pre-hybrid simulator.
    Packet,
    /// Long flows (past the 100 KB reclassification boundary, i.e.
    /// [`SimConfig::short_threshold`]) migrate their unsent bytes to a
    /// per-link fair-share rate model ([`tlb_net::FluidNet`]) whose rates
    /// are recomputed only on flow arrival/departure/reroute/failure
    /// events. Short flows, SYN/FIN handshakes, the packet prefix of every
    /// long flow, and all queue/ECN dynamics stay packet-level. Validated
    /// against [`FidelityKind::Packet`] by tolerance bands (see
    /// `tests/fidelity.rs`), not bit-equality.
    Hybrid,
}

impl FidelityKind {
    /// The fidelity selected by the environment: `TLB_FIDELITY=packet` or
    /// `=hybrid`, defaulting to [`FidelityKind::Packet`].
    pub fn from_env() -> FidelityKind {
        tlb_engine::env_knob::choice(
            "TLB_FIDELITY",
            FidelityKind::Packet,
            &[
                ("packet", FidelityKind::Packet),
                ("hybrid", FidelityKind::Hybrid),
            ],
        )
    }
}

impl SimConfig {
    /// The paper's basic NS2 setup (§4.2/§6.1): one sending rack and two
    /// receiving racks behind 15 spines, 1 Gbit/s links, 100 µs RTT,
    /// 256-packet buffers, DCTCP.
    pub fn basic_paper(scheme: Scheme) -> SimConfig {
        SimConfig {
            topo: LeafSpineBuilder::new(3, 15, 16)
                .link_gbps(1.0)
                .target_rtt(SimTime::from_micros(100))
                .build()
                .into(),
            tcp: TcpConfig::dctcp_default(),
            queue: QueueCfg {
                capacity_pkts: 256,
                ecn_threshold_pkts: Some(20),
            },
            host_queue: QueueCfg {
                capacity_pkts: 2048,
                ecn_threshold_pkts: Some(20),
            },
            scheme,
            seed: 1,
            horizon: SimTime::from_secs(10),
            short_threshold: 100_000,
            series_bucket: SimTime::from_millis(1),
            link_events: Vec::new(),
            failure_events: Vec::new(),
            trace_flows: Vec::new(),
            sample_queues: false,
            audit: cfg!(debug_assertions),
            fault_drop_nth: None,
            fel: FelKind::from_env(),
            lb_dispatch: LbDispatch::from_env(),
            delivery: DeliveryKind::from_env(),
            fidelity: FidelityKind::from_env(),
            alloc_warmup_events: alloc_warmup_from_env(),
            engine: EngineKind::from_env(),
        }
    }

    /// The §6.2 large-scale setup: 8 ToR × 8 core. The paper uses 256 hosts
    /// (32 per rack, 4:1 oversubscription); `hosts_per_leaf` scales that
    /// down for quicker runs while preserving the oversubscription shape
    /// when set ≥ `2 × spines`.
    pub fn large_scale(scheme: Scheme, hosts_per_leaf: usize) -> SimConfig {
        SimConfig {
            topo: LeafSpineBuilder::new(8, 8, hosts_per_leaf)
                .link_gbps(1.0)
                .target_rtt(SimTime::from_micros(100))
                .build()
                .into(),
            tcp: TcpConfig::dctcp_default(),
            queue: QueueCfg {
                capacity_pkts: 256,
                ecn_threshold_pkts: Some(20),
            },
            host_queue: QueueCfg {
                capacity_pkts: 2048,
                ecn_threshold_pkts: Some(20),
            },
            scheme,
            seed: 1,
            horizon: SimTime::from_secs(20),
            short_threshold: 100_000,
            series_bucket: SimTime::from_millis(5),
            link_events: Vec::new(),
            failure_events: Vec::new(),
            trace_flows: Vec::new(),
            sample_queues: false,
            audit: cfg!(debug_assertions),
            fault_drop_nth: None,
            fel: FelKind::from_env(),
            lb_dispatch: LbDispatch::from_env(),
            delivery: DeliveryKind::from_env(),
            fidelity: FidelityKind::from_env(),
            alloc_warmup_events: alloc_warmup_from_env(),
            engine: EngineKind::from_env(),
        }
    }

    /// The §7 Mininet-testbed setup: 10 equal-cost paths, 20 Mbit/s links,
    /// 1 ms per-link delay, 256-packet buffers, 200 ms min RTO.
    pub fn testbed(scheme: Scheme) -> SimConfig {
        SimConfig {
            topo: LeafSpineBuilder::new(2, 10, 12)
                .link_mbps(20.0)
                .prop_per_link(SimTime::from_millis(1))
                .build()
                .into(),
            tcp: TcpConfig::testbed_default(),
            queue: QueueCfg {
                capacity_pkts: 256,
                ecn_threshold_pkts: Some(20),
            },
            host_queue: QueueCfg {
                capacity_pkts: 2048,
                ecn_threshold_pkts: Some(20),
            },
            scheme,
            seed: 1,
            horizon: SimTime::from_secs(400),
            short_threshold: 100_000,
            series_bucket: SimTime::from_millis(500),
            link_events: Vec::new(),
            failure_events: Vec::new(),
            trace_flows: Vec::new(),
            sample_queues: false,
            audit: cfg!(debug_assertions),
            fault_drop_nth: None,
            fel: FelKind::from_env(),
            lb_dispatch: LbDispatch::from_env(),
            delivery: DeliveryKind::from_env(),
            fidelity: FidelityKind::from_env(),
            alloc_warmup_events: alloc_warmup_from_env(),
            engine: EngineKind::from_env(),
        }
    }

    /// Check configuration consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.tcp.validate()?;
        if self.queue.capacity_pkts == 0 || self.host_queue.capacity_pkts == 0 {
            return Err("queues need nonzero capacity".into());
        }
        if self.horizon.is_zero() {
            return Err("horizon must be positive".into());
        }
        if self.series_bucket.is_zero() {
            return Err("series bucket must be positive".into());
        }
        for (i, ev) in self.link_events.iter().enumerate() {
            if ev.bw_factor <= 0.0 || ev.bw_factor.is_nan() {
                return Err(format!("link event {i}: bw_factor must be positive"));
            }
            if ev.leaf.index() >= self.topo.n_lb_switches()
                || ev.spine.index() >= self.topo.n_spines()
            {
                return Err(format!("link event {i}: link out of range"));
            }
        }
        for (i, ev) in self.failure_events.iter().enumerate() {
            match ev.target {
                FailureTarget::Link { sw, up } => {
                    if sw.index() >= self.topo.n_lb_switches() || up.index() >= self.topo.n_spines()
                    {
                        return Err(format!("failure event {i}: link out of range"));
                    }
                }
                FailureTarget::Switch { sw } => {
                    if sw >= self.topo.n_switches() {
                        return Err(format!("failure event {i}: switch out of range"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::basic_paper(Scheme::Ecmp).validate().unwrap();
        SimConfig::large_scale(Scheme::Rps, 16).validate().unwrap();
        SimConfig::testbed(Scheme::tlb_default())
            .validate()
            .unwrap();
    }

    #[test]
    fn basic_matches_paper_parameters() {
        let c = SimConfig::basic_paper(Scheme::Ecmp);
        assert_eq!(c.topo.n_spines(), 15, "15 equal-cost paths");
        assert_eq!(c.topo.host_link().bytes_per_sec, 125_000_000, "1 Gbit/s");
        assert_eq!(c.queue.capacity_pkts, 256);
        assert_eq!(
            c.topo.min_rtt(tlb_net::HostId(0), tlb_net::HostId(20)),
            SimTime::from_micros(100)
        );
    }

    #[test]
    fn large_scale_matches_paper_shape() {
        let c = SimConfig::large_scale(Scheme::Ecmp, 32);
        assert_eq!(c.topo.n_leaves(), 8);
        assert_eq!(c.topo.n_spines(), 8);
        assert_eq!(c.topo.n_hosts(), 256);
    }

    #[test]
    fn testbed_matches_paper_shape() {
        let c = SimConfig::testbed(Scheme::Ecmp);
        assert_eq!(c.topo.n_spines(), 10, "10 equal-cost paths");
        assert_eq!(c.topo.host_link().bytes_per_sec, 2_500_000, "20 Mbit/s");
        assert_eq!(c.tcp.min_rto, SimTime::from_millis(200));
    }

    #[test]
    fn validation_catches_zero_horizon() {
        let mut c = SimConfig::basic_paper(Scheme::Ecmp);
        c.horizon = SimTime::ZERO;
        assert!(c.validate().is_err());
    }
}
