//! The registry of load-balancing schemes a simulation can run.

use tlb_core::{Tlb, TlbConfig};
use tlb_engine::SimTime;
use tlb_lb::{
    CongaLite, DiffFlow, Drill, Ecmp, FlowBender, HermesLite, LetFlow, Presto, Rps, Wcmp,
};
use tlb_switch::LoadBalancer;

/// A load-balancing scheme plus its parameters. One balancer instance is
/// built per leaf switch.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// Flow-level hashing.
    Ecmp,
    /// Per-packet random spraying.
    Rps,
    /// Fixed-size flowcells, round-robin.
    Presto {
        /// Flowcell size in bytes (Presto default: 64 KB).
        cell_bytes: u64,
    },
    /// Flowlet switching with random rerouting.
    LetFlow {
        /// Flowlet inactivity timeout.
        timeout: SimTime,
    },
    /// Per-packet power-of-two-choices with memory (extension).
    Drill {
        /// Random samples per decision.
        d: usize,
        /// Remembered best ports.
        m: usize,
    },
    /// Flowlet switching onto the least-loaded uplink (extension).
    CongaLite {
        /// Flowlet inactivity timeout.
        timeout: SimTime,
    },
    /// Flow-level congestion-triggered rehashing (extension).
    FlowBender {
        /// Queue length (packets) counting as a congested observation.
        mark_threshold_pkts: usize,
        /// Congested fraction per window that triggers a reroute.
        frac_threshold: f64,
        /// Observation window in packets.
        window_pkts: u32,
    },
    /// Cautious size-gated rerouting (extension).
    Hermes {
        /// Bytes a flow must send before it may be rerouted.
        reroute_size_bytes: u64,
        /// Queue length (packets) counting as congested.
        congested_pkts: usize,
        /// Required improvement factor for a move.
        benefit_factor: f64,
    },
    /// Capacity-weighted flow hashing (extension).
    Wcmp,
    /// Static short/long split: spray short flows, pin long ones
    /// (extension).
    DiffFlow {
        /// Byte threshold after which a flow is pinned.
        threshold_bytes: u64,
    },
    /// The paper's contribution.
    Tlb(TlbConfig),
}

impl Scheme {
    /// Display name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::Rps => "RPS",
            Scheme::Presto { .. } => "Presto",
            Scheme::LetFlow { .. } => "LetFlow",
            Scheme::Drill { .. } => "DRILL",
            Scheme::CongaLite { .. } => "CONGA-lite",
            Scheme::FlowBender { .. } => "FlowBender",
            Scheme::Hermes { .. } => "Hermes-lite",
            Scheme::Wcmp => "WCMP",
            Scheme::DiffFlow { .. } => "DiffFlow",
            Scheme::Tlb(_) => "TLB",
        }
    }

    /// The paper's default parameterizations.
    pub fn presto_default() -> Scheme {
        Scheme::Presto {
            cell_bytes: 64 * 1024,
        }
    }

    /// LetFlow with the paper's 150 µs flowlet timeout.
    pub fn letflow_default() -> Scheme {
        Scheme::LetFlow {
            timeout: SimTime::from_micros(150),
        }
    }

    /// FlowBender with its published parameters (5% trigger, K=20 sensing).
    pub fn flowbender_default() -> Scheme {
        Scheme::FlowBender {
            mark_threshold_pkts: 20,
            frac_threshold: 0.05,
            window_pkts: 32,
        }
    }

    /// Hermes-lite with its defaults (100 kB gate, 2x benefit bar).
    pub fn hermes_default() -> Scheme {
        Scheme::Hermes {
            reroute_size_bytes: 100_000,
            congested_pkts: 20,
            benefit_factor: 2.0,
        }
    }

    /// DiffFlow with the conventional 100 kB short/long boundary.
    pub fn diffflow_default() -> Scheme {
        Scheme::DiffFlow {
            threshold_bytes: DiffFlow::DEFAULT_THRESHOLD_BYTES,
        }
    }

    /// TLB with the paper's NS2 parameters.
    pub fn tlb_default() -> Scheme {
        Scheme::Tlb(TlbConfig::paper_default())
    }

    /// The extended comparison set: the paper's five plus the §8-related
    /// DRILL, CONGA-lite and FlowBender extensions.
    pub fn extended_set() -> Vec<Scheme> {
        let mut s = Scheme::paper_set();
        s.insert(4, Scheme::Drill { d: 2, m: 1 });
        s.insert(
            5,
            Scheme::CongaLite {
                timeout: SimTime::from_micros(500),
            },
        );
        s.insert(6, Scheme::flowbender_default());
        s.insert(7, Scheme::hermes_default());
        s.insert(8, Scheme::Wcmp);
        s.insert(9, Scheme::diffflow_default());
        s
    }

    /// The paper's §6 comparison set: ECMP, RPS, Presto, LetFlow, TLB.
    pub fn paper_set() -> Vec<Scheme> {
        vec![
            Scheme::Ecmp,
            Scheme::Rps,
            Scheme::presto_default(),
            Scheme::letflow_default(),
            Scheme::tlb_default(),
        ]
    }

    /// Instantiate a balancer for one leaf switch. `salt` decorrelates
    /// hash-based schemes across switches.
    pub fn build(&self, salt: u64) -> Box<dyn LoadBalancer> {
        match self {
            Scheme::Ecmp => Box::new(Ecmp::new(salt)),
            Scheme::Rps => Box::new(Rps::new()),
            Scheme::Presto { cell_bytes } => Box::new(Presto::new(*cell_bytes)),
            Scheme::LetFlow { timeout } => Box::new(LetFlow::new(*timeout)),
            Scheme::Drill { d, m } => Box::new(Drill::new(*d, *m)),
            Scheme::CongaLite { timeout } => Box::new(CongaLite::new(*timeout)),
            Scheme::FlowBender {
                mark_threshold_pkts,
                frac_threshold,
                window_pkts,
            } => Box::new(FlowBender::new(
                *mark_threshold_pkts,
                *frac_threshold,
                *window_pkts,
            )),
            Scheme::Hermes {
                reroute_size_bytes,
                congested_pkts,
                benefit_factor,
            } => Box::new(HermesLite::new(
                *reroute_size_bytes,
                *congested_pkts,
                *benefit_factor,
            )),
            Scheme::Wcmp => Box::new(Wcmp::new()),
            Scheme::DiffFlow { threshold_bytes } => Box::new(DiffFlow::new(*threshold_bytes)),
            Scheme::Tlb(cfg) => Box::new(Tlb::new(*cfg)),
        }
    }
}

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Scheme::Ecmp.name(), "ECMP");
        assert_eq!(Scheme::Rps.name(), "RPS");
        assert_eq!(Scheme::presto_default().name(), "Presto");
        assert_eq!(Scheme::letflow_default().name(), "LetFlow");
        assert_eq!(Scheme::tlb_default().name(), "TLB");
    }

    #[test]
    fn paper_set_is_the_five_schemes() {
        let set = Scheme::paper_set();
        let names: Vec<_> = set.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ECMP", "RPS", "Presto", "LetFlow", "TLB"]);
    }

    #[test]
    fn build_produces_named_balancers() {
        for scheme in Scheme::paper_set() {
            let lb = scheme.build(7);
            assert_eq!(lb.name(), scheme.name());
        }
        assert_eq!(Scheme::Drill { d: 2, m: 1 }.build(0).name(), "DRILL");
        assert_eq!(
            Scheme::CongaLite {
                timeout: SimTime::from_micros(500)
            }
            .build(0)
            .name(),
            "CONGA-lite"
        );
        assert_eq!(Scheme::flowbender_default().build(0).name(), "FlowBender");
    }

    #[test]
    fn extended_set_adds_the_three_extensions() {
        let names: Vec<_> = Scheme::extended_set().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "ECMP",
                "RPS",
                "Presto",
                "LetFlow",
                "DRILL",
                "CONGA-lite",
                "FlowBender",
                "Hermes-lite",
                "WCMP",
                "DiffFlow",
                "TLB"
            ]
        );
    }
}
