//! The event-driven network: forwarding, serialization, endpoints, metrics.
//!
//! Node/queue layout for a leaf-spine fabric (all queues are
//! [`tlb_switch::OutPort`]s):
//!
//! ```text
//! host NIC ──> leaf { uplinks[spine] ──> spine { downlinks[leaf] ──> leaf { downlinks[host] ──> host
//! ```
//!
//! The load balancer runs at the *source* leaf: every packet a local host
//! sends to a remote rack goes through `LoadBalancer::choose_uplink`.
//! Spine→leaf and leaf→host forwarding are single-path.
//!
//! ## Hot-path layout
//!
//! All output ports live in one flat `Vec<OutPort>` indexed by [`PortId`]
//! (hosts' NICs, then each leaf's uplinks and downlinks, then the spines'
//! downlinks — see [`PortMap`]), with the next-hop node precomputed per
//! port. Load balancers dispatch statically through [`crate::AnyLb`]
//! unless the run pins [`crate::LbDispatch::Dyn`].
//!
//! In-flight packets ride **per-link delivery pipes**: a link has constant
//! propagation delay and its port serializes packets one at a time, so
//! arrival times per link are non-decreasing and FIFO. Instead of one FEL
//! entry per in-flight packet, each link keeps a `VecDeque` of
//! `(arrival time, reserved seq, packet)` and at most one chained
//! `Deliver` event in the FEL; popping it delivers the head and re-arms
//! the chain. Sequence numbers are *reserved* at the moment a per-packet
//! push would have happened ([`tlb_engine::EventQueue::reserve_seq`]), so
//! the FEL's `(time, seq)` pop order — and therefore every observable
//! result — is bit-identical to the per-packet reference
//! ([`crate::DeliveryKind::PerPacket`]). The payoff is FEL occupancy
//! bounded by O(ports + links + pending timers/starts) instead of
//! O(packets in flight); the run loop enforces that bound whenever the
//! audit is on.

use crate::audit::{AuditLedger, PortAudit};
use crate::config::{DeliveryKind, SimConfig};
use crate::dispatch::AnyLb;
use crate::report::{AllocAudit, ClassCounters, RunReport};
use std::collections::VecDeque;
use tlb_engine::{alloc_audit, EventQueue, SimRng, SimTime};
use tlb_metrics::{FctRecorder, FlowClass, SampleSet, TimeSeries};
use tlb_net::{HostId, LeafId, Packet, PacketArena, PacketSlot, PktKind, SpineId};
use tlb_switch::{Enqueued, LoadBalancer, OutPort, PortView};
use tlb_transport::{OooPool, SenderOutput, TcpReceiver, TcpSender};
use tlb_workload::FlowSpec;

/// Index into the flat port table (see [`PortMap`]).
type PortId = u32;

/// A specific output queue in the fabric — the decoded form of a
/// [`PortId`], used for traces and audit labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortRef {
    /// Host `h`'s NIC queue (towards its leaf).
    HostNic(u32),
    /// Leaf `leaf`'s uplink to spine `up`.
    LeafUp { leaf: u16, up: u16 },
    /// Leaf `leaf`'s downlink to its local host slot `slot`.
    LeafDown { leaf: u16, slot: u16 },
    /// Spine `spine`'s downlink to leaf `leaf`.
    SpineDown { spine: u16, leaf: u16 },
}

/// Where a packet lands after crossing a link.
#[derive(Clone, Copy, Debug)]
enum NodeRef {
    Host(u32),
    Leaf(u16),
    Spine(u16),
}

/// The flat port-table layout: hosts' NICs first, then per leaf its
/// uplinks followed by its downlinks, then per spine its downlinks. Leaf
/// uplinks are contiguous, so the load balancer's [`PortView`] is a plain
/// slice of the table.
#[derive(Clone, Copy, Debug)]
struct PortMap {
    n_leaves: u32,
    n_spines: u32,
    hosts_per_leaf: u32,
    /// First leaf port (== number of hosts).
    leaf_base: u32,
    /// Ports per leaf (`n_spines + hosts_per_leaf`).
    leaf_stride: u32,
    /// First spine port.
    spine_base: u32,
}

impl PortMap {
    fn new(topo: &tlb_net::LeafSpine) -> PortMap {
        let n_leaves = topo.n_leaves() as u32;
        let n_spines = topo.n_spines() as u32;
        let hosts_per_leaf = topo.hosts_per_leaf() as u32;
        let leaf_base = topo.n_hosts() as u32;
        let leaf_stride = n_spines + hosts_per_leaf;
        PortMap {
            n_leaves,
            n_spines,
            hosts_per_leaf,
            leaf_base,
            leaf_stride,
            spine_base: leaf_base + n_leaves * leaf_stride,
        }
    }

    #[inline]
    fn n_ports(&self) -> usize {
        (self.spine_base + self.n_spines * self.n_leaves) as usize
    }

    #[inline]
    fn host_nic(&self, h: u32) -> PortId {
        h
    }

    #[inline]
    fn leaf_up(&self, leaf: u32, up: u32) -> PortId {
        self.leaf_base + leaf * self.leaf_stride + up
    }

    #[inline]
    fn leaf_down(&self, leaf: u32, slot: u32) -> PortId {
        self.leaf_base + leaf * self.leaf_stride + self.n_spines + slot
    }

    #[inline]
    fn spine_down(&self, spine: u32, leaf: u32) -> PortId {
        self.spine_base + spine * self.n_leaves + leaf
    }

    /// The contiguous slice of leaf `leaf`'s uplinks in the port table.
    #[inline]
    fn leaf_up_range(&self, leaf: usize) -> std::ops::Range<usize> {
        let start = self.leaf_up(leaf as u32, 0) as usize;
        start..start + self.n_spines as usize
    }

    #[inline]
    fn is_leaf_up(&self, p: PortId) -> bool {
        p >= self.leaf_base
            && p < self.spine_base
            && (p - self.leaf_base) % self.leaf_stride < self.n_spines
    }

    fn decode(&self, p: PortId) -> PortRef {
        if p < self.leaf_base {
            PortRef::HostNic(p)
        } else if p < self.spine_base {
            let rel = p - self.leaf_base;
            let leaf = (rel / self.leaf_stride) as u16;
            let off = rel % self.leaf_stride;
            if off < self.n_spines {
                PortRef::LeafUp {
                    leaf,
                    up: off as u16,
                }
            } else {
                PortRef::LeafDown {
                    leaf,
                    slot: (off - self.n_spines) as u16,
                }
            }
        } else {
            let rel = p - self.spine_base;
            PortRef::SpineDown {
                spine: (rel / self.n_leaves) as u16,
                leaf: (rel % self.n_leaves) as u16,
            }
        }
    }

    /// The node a packet reaches after crossing port `p`'s link.
    fn next_node(&self, p: PortId, topo: &tlb_net::LeafSpine) -> NodeRef {
        match self.decode(p) {
            PortRef::HostNic(h) => NodeRef::Leaf(topo.leaf_of(HostId(h)).index() as u16),
            PortRef::LeafUp { up, .. } => NodeRef::Spine(up),
            PortRef::LeafDown { leaf, slot } => {
                NodeRef::Host(leaf as u32 * self.hosts_per_leaf + slot as u32)
            }
            PortRef::SpineDown { leaf, .. } => NodeRef::Leaf(leaf),
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A flow's start time arrived.
    FlowStart(u32),
    /// The packet in service on `port` finished serializing.
    TxDone(PortId),
    /// The head of `port`'s delivery pipe arrives now (pipelined mode).
    Deliver(PortId),
    /// A packet arrives after crossing `port`'s link (per-packet reference
    /// mode). The packet itself parks in the [`PacketArena`]; the event
    /// carries its 4-byte generation-checked handle, so the hot enum stays
    /// one word of payload with no heap round-trip per packet.
    Arrive { port: PortId, slot: PacketSlot },
    /// A sender's retransmission timer fires.
    Timer { flow: u32 },
    /// A leaf balancer's periodic tick.
    LbTick { leaf: u16 },
    /// Apply the `i`-th configured [`crate::config::LinkEvent`].
    LinkChange(u32),
    /// Sample leaf-0's uplink queues (Fig. 5 visualization).
    QueueSample,
}

/// One in-flight packet parked in a link's delivery pipe: its arrival
/// time and the FEL sequence number reserved for it.
struct PipeEntry {
    at: SimTime,
    seq: u64,
    pkt: Packet,
}

/// A leaf switch's control state (its ports live in the flat table).
struct LeafSw {
    lb: AnyLb,
    rng: SimRng,
}

/// One configured simulation, ready to run.
pub struct Simulation {
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    /// `next[i] = Some(j)`: flow `j` starts when flow `i` completes
    /// (closed-loop chains). Chain heads start at their `start` time;
    /// chained flows' `start` fields are ignored.
    next: Vec<Option<u32>>,
}

struct Net<'a> {
    cfg: &'a SimConfig,
    flows: &'a [FlowSpec],
    pmap: PortMap,
    /// Every output queue in the fabric, laid out per [`PortMap`].
    ports: Vec<OutPort>,
    /// Per-link delivery pipes, parallel to `ports` (each port drives
    /// exactly one link). Empty in per-packet mode.
    pipes: Vec<VecDeque<PipeEntry>>,
    /// Precomputed next hop per port.
    next_node: Vec<NodeRef>,
    leaves: Vec<LeafSw>,
    senders: Vec<Option<TcpSender>>,
    receivers: Vec<Option<TcpReceiver>>,
    next_flow: Vec<Option<u32>>,
    total_segs: Vec<u32>,
    /// Per-flow short/long classification, precomputed at build so the
    /// per-packet paths index a bitvec instead of re-deriving it from the
    /// flow table.
    is_short: Vec<bool>,
    completed: Vec<bool>,
    n_completed: usize,
    q: EventQueue<Event>,
    /// Parking lot for in-flight packets in per-packet delivery mode
    /// (`Event::Arrive` carries a slot handle). Unused — and unallocated —
    /// in pipelined mode, where packets ride the link pipes inline.
    arena: PacketArena,
    /// Recycles receivers' out-of-order buffers across flow lifetimes.
    ooo_pool: OooPool,
    out_buf: Vec<SenderOutput>,
    /// Allocation counters captured when `events` crossed the configured
    /// warmup boundary (see [`SimConfig::alloc_warmup_events`]).
    alloc_at_warmup: Option<alloc_audit::AllocCounters>,
    /// Steady-state allocation report, filled at run-loop exit.
    alloc_report: Option<AllocAudit>,
    // FEL-occupancy bound bookkeeping (mode-independent counters).
    /// `FlowStart` events pending in the FEL.
    starts_pending: u64,
    /// `Timer` events pending in the FEL.
    timers_live: u64,
    /// `LbTick`/`LinkChange`/`QueueSample` events pending in the FEL.
    misc_pending: u64,
    /// Peak of the occupancy bound over the depth-sample schedule.
    fel_bound_peak: u64,
    // Metrics.
    fct: FctRecorder,
    short_qlen: SampleSet,
    long_qlen: SampleSet,
    short_qdelay: SampleSet,
    /// FEL occupancy sampled every [`FEL_DEPTH_SAMPLE_EVERY`] events.
    fel_depth: SampleSet,
    short_qdelay_series: TimeSeries,
    short_reorder: TimeSeries,
    long_reorder: TimeSeries,
    long_goodput: TimeSeries,
    qth_series: Vec<(f64, f64)>,
    traced: Vec<bool>,
    traces: Vec<crate::report::TraceEvent>,
    queue_series: Vec<(f64, Vec<u32>)>,
    lb_state_peak: usize,
    lb_decisions: u64,
    events: u64,
    /// Packet-lifecycle ledger (no-op unless [`SimConfig::audit`]).
    audit: AuditLedger,
    /// Arrival events seen, for [`SimConfig::fault_drop_nth`].
    arrive_seen: u64,
}

impl Simulation {
    /// Configure a simulation over the given flow set (all flows start at
    /// their `start` time).
    pub fn new(cfg: SimConfig, flows: Vec<FlowSpec>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        let n = flows.len();
        Simulation {
            cfg,
            flows,
            next: vec![None; n],
        }
    }

    /// Configure a closed-loop simulation: `next[i] = Some(j)` makes flow
    /// `j` start back-to-back when flow `i` delivers its last byte — the
    /// way a request/response client keeps a sustained number of flows in
    /// flight. Chained flows must not also have their own start event, so
    /// every index that appears as someone's `next` is launched only by its
    /// predecessor.
    pub fn new_chained(cfg: SimConfig, flows: Vec<FlowSpec>, next: Vec<Option<u32>>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        assert_eq!(
            flows.len(),
            next.len(),
            "next pointers must cover all flows"
        );
        // No flow may be the successor of two predecessors.
        let mut seen = vec![false; flows.len()];
        for &n in next.iter().flatten() {
            let i = n as usize;
            assert!(i < flows.len(), "next pointer out of range");
            assert!(!seen[i], "flow {i} chained twice");
            seen[i] = true;
        }
        Simulation { cfg, flows, next }
    }

    /// Run to completion (all flows done or horizon reached) and report.
    pub fn run(self) -> RunReport {
        run_with(&self.cfg, &self.flows, self.next)
    }
}

/// Run one simulation over borrowed inputs. [`Simulation::run`] and the
/// clone-free [`crate::runner::run_one_ref`] both land here.
pub(crate) fn run_with(
    cfg: &SimConfig,
    flows: &[FlowSpec],
    next_flow: Vec<Option<u32>>,
) -> RunReport {
    let wall_start = std::time::Instant::now();
    let mut net = Net::build(cfg, flows, next_flow);
    net.run_loop();
    net.into_report(wall_start.elapsed())
}

impl<'a> Net<'a> {
    fn build(cfg: &'a SimConfig, flows: &'a [FlowSpec], next_flow: Vec<Option<u32>>) -> Net<'a> {
        let topo = &cfg.topo;
        let mut master_rng = SimRng::new(cfg.seed);
        let pmap = PortMap::new(topo);

        let mut ports = Vec::with_capacity(pmap.n_ports());
        for _ in 0..topo.n_hosts() {
            ports.push(OutPort::new(topo.host_link(), cfg.host_queue));
        }
        for l in 0..topo.n_leaves() {
            for s in 0..topo.n_spines() {
                ports.push(OutPort::new(
                    topo.uplink(LeafId(l as u32), SpineId(s as u32)),
                    cfg.queue,
                ));
            }
            for _ in 0..topo.hosts_per_leaf() {
                ports.push(OutPort::new(topo.host_link(), cfg.queue));
            }
        }
        for s in 0..topo.n_spines() {
            for l in 0..topo.n_leaves() {
                ports.push(OutPort::new(
                    topo.downlink(SpineId(s as u32), LeafId(l as u32)),
                    cfg.queue,
                ));
            }
        }
        debug_assert_eq!(ports.len(), pmap.n_ports());
        let next_node = (0..ports.len() as u32)
            .map(|p| pmap.next_node(p, topo))
            .collect();
        // Pre-size each link's delivery pipe from the link's physics: one
        // serializer feeds the pipe, every entry costs at least the
        // smallest packet's serialization time, and entries live exactly
        // one propagation delay — so at most `prop/tx(min_wire) + 1`
        // packets are ever in flight. Mid-run degradations can stretch
        // prop_delay (the worst configured extra_delay is folded in);
        // bandwidth only ever drops, which *lowers* the ceiling. This is
        // what keeps pipe growth out of the steady-state allocation gate.
        let max_extra = cfg
            .link_events
            .iter()
            .map(|e| e.extra_delay)
            .fold(SimTime::ZERO, SimTime::max);
        let min_wire = cfg.tcp.header_bytes.max(1) as u64;
        let pipes: Vec<VecDeque<PipeEntry>> = ports
            .iter()
            .map(|p| {
                if cfg.delivery != DeliveryKind::Pipelined {
                    // Per-packet mode never touches the pipes.
                    return VecDeque::new();
                }
                let tx = p.tx_time(min_wire).as_nanos().max(1);
                let prop = (p.link().prop_delay + max_extra).as_nanos();
                VecDeque::with_capacity((prop / tx + 2).min(4096) as usize)
            })
            .collect();

        let leaves = (0..topo.n_leaves())
            .map(|l| LeafSw {
                lb: cfg.scheme.build_dispatch(l as u64 + 1, cfg.lb_dispatch),
                rng: master_rng.fork(l as u64),
            })
            .collect();

        let n = flows.len();
        // Size the FEL so steady state never reallocates. In pipelined
        // delivery the occupancy is bounded by the fabric (one `TxDone`
        // plus one `Deliver` per port) plus pending timers/starts; the
        // per-packet reference mode can additionally hold one `Arrive` per
        // packet in flight. (For the calendar backend the capacity
        // reserves the overflow tier, which is exactly where the
        // build-time bulk of not-yet-started flows lands.)
        let n_ports = pmap.n_ports();
        let mut q = EventQueue::with_capacity_and_kind(2 * n + 4 * n_ports + 64, cfg.fel);
        // Only chain heads get their own start event; chained flows are
        // launched by their predecessor's completion.
        let mut is_chained = vec![false; n];
        for &nf in next_flow.iter().flatten() {
            is_chained[nf as usize] = true;
        }
        let mut starts_pending = 0u64;
        for (i, f) in flows.iter().enumerate() {
            if !is_chained[i] {
                q.push(f.start, Event::FlowStart(i as u32));
                starts_pending += 1;
            }
        }
        // Pre-size every per-packet metric collector from workload bounds,
        // so steady state never grows them. `segs(class)` counts first
        // transmissions; the +25% headroom absorbs retransmissions (the
        // allocation gate pins typical runs well under that).
        let total_segs: Vec<u32> = flows
            .iter()
            .map(|f| f.size_bytes.div_ceil(cfg.tcp.mss as u64) as u32)
            .collect();
        let is_short: Vec<bool> = flows
            .iter()
            .map(|f| f.size_bytes < cfg.short_threshold)
            .collect();
        let segs = |short: bool| -> usize {
            total_segs
                .iter()
                .zip(&is_short)
                .filter(|&(_, &s)| s == short)
                .map(|(&t, _)| t as usize)
                .sum()
        };
        let sample_cap = |first_tx: usize| (first_tx + first_tx / 4 + 64).min(1 << 22);
        let short_segs = segs(true);
        let long_segs = segs(false);
        // FEL-depth samples: one per 4096 events; a data segment costs
        // O(2 hops·(TxDone+Arrive)) events each way, so 24·segs/4096 is a
        // generous event-count estimate.
        let depth_cap = ((short_segs + long_segs) * 24 / 4096 + 64).min(1 << 20);
        let mut fct = FctRecorder::new(cfg.short_threshold);
        fct.reserve(n);
        // A traced data segment records ~5 hops each way (NIC, uplink,
        // spine, downlink, delivery; same for its ACK), plus
        // handshake/teardown and retransmissions. 16 rows per segment
        // covers that with headroom, so tracing stays off the steady-state
        // allocation gate; capped like the other horizon-scaled collectors.
        let traced_segs: usize = cfg
            .trace_flows
            .iter()
            .filter_map(|f| total_segs.get(f.index()))
            .map(|&s| s as usize)
            .sum();
        let trace_rows = if traced_segs == 0 {
            0
        } else {
            (traced_segs * 16 + 64).min(1 << 20)
        };

        // Balancer ticks per leaf.
        let mut net = Net {
            total_segs,
            is_short,
            fct,
            short_qdelay_series: Self::series_for(cfg),
            short_reorder: Self::series_for(cfg),
            long_reorder: Self::series_for(cfg),
            long_goodput: Self::series_for(cfg),
            pmap,
            ports,
            pipes,
            next_node,
            leaves,
            senders: (0..n).map(|_| None).collect(),
            receivers: (0..n).map(|_| None).collect(),
            next_flow,
            completed: vec![false; n],
            n_completed: 0,
            q,
            // Per-packet mode parks every in-flight packet here; size it
            // like the FEL so steady-state occupancy never grows the slab.
            // Pipelined mode keeps packets in the link pipes instead and
            // skips the allocation entirely.
            arena: if cfg.delivery == DeliveryKind::PerPacket {
                PacketArena::with_capacity(2 * n + 4 * n_ports + 64)
            } else {
                PacketArena::new()
            },
            // The free stack parks at most one buffer per torn-down flow,
            // so `n` bounds it; capped like the other flow-scaled
            // collectors (24 bytes per parked handle).
            ooo_pool: OooPool::with_capacity(n.min(1 << 20)),
            // The sender state machine bounds its per-call output (see
            // `TcpConfig::max_outputs_per_call`); the allocation audit
            // asserts this buffer never regrows.
            out_buf: Vec::with_capacity(cfg.tcp.max_outputs_per_call()),
            alloc_at_warmup: None,
            alloc_report: None,
            starts_pending,
            timers_live: 0,
            misc_pending: 0,
            fel_bound_peak: 0,
            short_qlen: SampleSet::with_capacity(sample_cap(short_segs)),
            long_qlen: SampleSet::with_capacity(sample_cap(long_segs)),
            short_qdelay: SampleSet::with_capacity(sample_cap(short_segs)),
            fel_depth: SampleSet::with_capacity(depth_cap),
            qth_series: Vec::new(),
            traced: {
                let mut t = vec![false; n];
                for f in &cfg.trace_flows {
                    if f.index() < n {
                        t[f.index()] = true;
                    }
                }
                t
            },
            traces: Vec::with_capacity(trace_rows),
            queue_series: {
                // One row per series bucket up to the horizon, capped so a
                // long horizon with a fine bucket can't pre-allocate
                // unboundedly.
                let rows = if cfg.sample_queues {
                    (cfg.horizon.as_nanos() / cfg.series_bucket.as_nanos().max(1)) as usize + 1
                } else {
                    0
                };
                Vec::with_capacity(rows.min(1 << 16))
            },
            lb_state_peak: 0,
            lb_decisions: 0,
            events: 0,
            audit: AuditLedger::new(cfg.audit),
            arrive_seen: 0,
            cfg,
            flows,
        };
        for l in 0..net.leaves.len() {
            if let Some(iv) = net.leaves[l].lb.tick_interval() {
                net.q.push(iv, Event::LbTick { leaf: l as u16 });
                net.misc_pending += 1;
                // Leaf 0's threshold trace grows by at most one row per
                // tick; materialize the worst case now (capped like
                // `queue_series`).
                if l == 0 {
                    let rows = (cfg.horizon.as_nanos() / iv.as_nanos().max(1)) as usize + 2;
                    net.qth_series.reserve(rows.min(1 << 16));
                }
            }
        }
        for (i, ev) in net.cfg.link_events.iter().enumerate() {
            net.q.push(ev.at, Event::LinkChange(i as u32));
            net.misc_pending += 1;
        }
        if net.cfg.sample_queues {
            net.q.push(net.cfg.series_bucket, Event::QueueSample);
            net.misc_pending += 1;
        }
        net
    }

    /// A per-class time series pre-sized to the run horizon, so bucket
    /// appends never resize mid-run (the cap mirrors `queue_series`).
    fn series_for(cfg: &SimConfig) -> TimeSeries {
        let mut s = TimeSeries::new(cfg.series_bucket);
        s.reserve_until(cfg.horizon, 1 << 16);
        s
    }

    /// Sample FEL occupancy once per this many processed events. The
    /// sample schedule depends only on the event count, which is identical
    /// across FEL backends and thread counts, so the samples are part of
    /// the deterministic digest.
    const FEL_DEPTH_SAMPLE_EVERY: u64 = 4096;

    /// The pipelined-delivery FEL occupancy bound: at most one `TxDone`
    /// and one `Deliver` per port, plus every pending flow start, timer
    /// and housekeeping event. Computed from counters that are identical
    /// across delivery modes, so its peak is digest-stable.
    #[inline]
    fn fel_bound(&self) -> u64 {
        2 * self.ports.len() as u64 + self.starts_pending + self.timers_live + self.misc_pending
    }

    fn run_loop(&mut self) {
        let horizon = self.cfg.horizon;
        // Allocation-audit warmup boundary, hoisted to a plain u64 compare
        // on the hot path (`u64::MAX` = auditing off).
        let warmup = self.cfg.alloc_warmup_events.unwrap_or(u64::MAX);
        while self.n_completed < self.flows.len() {
            // Peek before popping: an event past the horizon must stay in
            // the queue (end-of-run accounting counts it as in flight) and
            // must not advance the clock past the horizon (it would inflate
            // `sim_end` and every rate derived from it).
            match self.q.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break, // queue empty, or nothing left before the horizon
            }
            let (now, ev) = self.q.pop().expect("peeked event vanished");
            self.events += 1;
            if self.events == warmup {
                self.alloc_at_warmup = Some(alloc_audit::counters());
            }
            if self.events.is_multiple_of(Self::FEL_DEPTH_SAMPLE_EVERY) {
                self.fel_depth.push(self.q.len() as f64);
                let bound = self.fel_bound();
                self.fel_bound_peak = self.fel_bound_peak.max(bound);
                // The occupancy oracle: pipelined delivery must keep the
                // FEL within the fabric-sized bound.
                if self.cfg.audit && self.cfg.delivery == DeliveryKind::Pipelined {
                    assert!(
                        self.q.len() as u64 <= bound,
                        "FEL occupancy {} exceeds the pipelined bound {bound}",
                        self.q.len(),
                    );
                }
            }
            match ev {
                Event::FlowStart(i) => {
                    self.starts_pending -= 1;
                    self.on_flow_start(i, now);
                }
                Event::TxDone(p) => self.on_tx_done(p, now),
                Event::Deliver(p) => self.on_deliver(p, now),
                Event::Arrive { port, slot } => {
                    let pkt = self.arena.take(slot);
                    self.arrive_seen += 1;
                    if self.cfg.fault_drop_nth == Some(self.arrive_seen) {
                        // Injected driver bug (audit tests only): the packet
                        // vanishes without any accounting layer hearing of it.
                        continue;
                    }
                    self.on_arrive(port, pkt, now);
                }
                Event::Timer { flow } => {
                    self.timers_live -= 1;
                    self.on_timer(flow, now);
                }
                Event::LbTick { leaf } => {
                    self.misc_pending -= 1;
                    self.on_lb_tick(leaf, now);
                }
                Event::LinkChange(i) => {
                    self.misc_pending -= 1;
                    self.on_link_change(i as usize);
                }
                Event::QueueSample => {
                    self.misc_pending -= 1;
                    self.on_queue_sample(now);
                }
            }
        }
        // Close the allocation-audit window at loop exit, *before* the
        // reporting/audit phase — end-of-run summarization is allowed to
        // allocate; the steady-state invariant covers event processing
        // only. The probe runs after the final read so it cannot pollute
        // the delta.
        if let Some(start) = self.alloc_at_warmup.take() {
            let d = start.delta(alloc_audit::counters());
            self.alloc_report = Some(AllocAudit {
                warmup_events: warmup,
                steady_events: self.events.saturating_sub(warmup),
                counting: alloc_audit::probe_counting(),
                allocs: d.allocs,
                reallocs: d.reallocs,
                deallocs: d.deallocs,
                bytes: d.bytes,
            });
        }
    }

    // ---- event handlers --------------------------------------------------

    fn on_flow_start(&mut self, i: u32, now: SimTime) {
        let spec = self.flows[i as usize];
        self.fct
            .flow_started(spec.id, spec.size_bytes, now, spec.deadline);
        let mut sender = TcpSender::new(self.cfg.tcp, spec.id, spec.src, spec.dst, spec.size_bytes);
        let mut out = std::mem::take(&mut self.out_buf);
        sender.start(now, &mut out);
        self.senders[i as usize] = Some(sender);
        self.process_outputs(i, &mut out, now);
        self.out_buf = out;
    }

    fn on_timer(&mut self, flow: u32, now: SimTime) {
        let mut out = std::mem::take(&mut self.out_buf);
        if let Some(sender) = self.senders[flow as usize].as_mut() {
            sender.on_timer(now, &mut out);
        }
        self.process_outputs(flow, &mut out, now);
        self.out_buf = out;
    }

    fn on_lb_tick(&mut self, leaf: u16, now: SimTime) {
        let view = PortView::new(&self.ports[self.pmap.leaf_up_range(leaf as usize)]);
        let l = &mut self.leaves[leaf as usize];
        l.lb.on_tick(view, now);
        self.lb_state_peak = self.lb_state_peak.max(l.lb.state_bytes());
        if leaf == 0 {
            if let Some(qth) = l.lb.q_threshold() {
                // Saturate "infinite" to a plottable sentinel.
                let v = if qth == u64::MAX {
                    f64::INFINITY
                } else {
                    qth as f64
                };
                self.qth_series.push((now.as_secs_f64(), v));
            }
        }
        if let Some(iv) = l.lb.tick_interval() {
            let next = now + iv;
            if next <= self.cfg.horizon {
                self.q.push(next, Event::LbTick { leaf });
                self.misc_pending += 1;
            }
        }
    }

    /// Apply a sender's outputs: transmit packets from its host NIC, arm
    /// timers.
    fn process_outputs(&mut self, flow: u32, out: &mut Vec<SenderOutput>, now: SimTime) {
        let src = self.flows[flow as usize].src;
        for o in out.drain(..) {
            match o {
                SenderOutput::Send(pkt) => {
                    self.audit.emitted(&pkt);
                    self.enqueue(self.pmap.host_nic(src.0), pkt, now);
                }
                SenderOutput::ArmTimer { deadline } => {
                    self.q.push(deadline.max(now), Event::Timer { flow });
                    self.timers_live += 1;
                }
                SenderOutput::Finished => {
                    // Sender-side completion; FCT is recorded at the
                    // receiver when the last byte arrives.
                }
            }
        }
    }

    /// Record leaf-0's uplink occupancy and re-arm the sampler.
    fn on_queue_sample(&mut self, now: SimTime) {
        let lens: Vec<u32> = self.ports[self.pmap.leaf_up_range(0)]
            .iter()
            .map(|p| p.len_pkts() as u32)
            .collect();
        self.queue_series.push((now.as_secs_f64(), lens));
        let next = now + self.cfg.series_bucket;
        if next <= self.cfg.horizon {
            self.q.push(next, Event::QueueSample);
            self.misc_pending += 1;
        }
    }

    /// Apply a configured mid-run link degradation to both directions of
    /// the leaf<->spine pair.
    fn on_link_change(&mut self, i: usize) {
        let ev = self.cfg.link_events[i];
        let degrade = |port: &mut OutPort| {
            let mut l = port.link();
            l.bytes_per_sec = ((l.bytes_per_sec as f64) * ev.bw_factor).max(1.0) as u64;
            l.prop_delay += ev.extra_delay;
            port.set_link(l);
        };
        let up = self
            .pmap
            .leaf_up(ev.leaf.index() as u32, ev.spine.index() as u32);
        degrade(&mut self.ports[up as usize]);
        let down = self
            .pmap
            .spine_down(ev.spine.index() as u32, ev.leaf.index() as u32);
        degrade(&mut self.ports[down as usize]);
    }

    // ---- forwarding ------------------------------------------------------

    fn enqueue(&mut self, p: PortId, pkt: Packet, now: SimTime) {
        if self.traced[pkt.flow.index()] {
            self.trace(p, &pkt, now);
        }
        self.audit.enqueue_attempt(&pkt);
        match self.ports[p as usize].enqueue(pkt, now) {
            Enqueued::Queued { was_idle, .. } => {
                self.audit.enqueued(&pkt);
                if was_idle {
                    self.start_tx(p, now);
                }
            }
            Enqueued::Dropped => {
                // Loss is recovered by the transport; counters live in the
                // port stats.
                self.audit.dropped(&pkt);
            }
        }
    }

    fn start_tx(&mut self, p: PortId, now: SimTime) {
        let pi = p as usize;
        let pkt = *self.ports[pi]
            .start_service()
            .expect("start_tx on an empty port");
        // The port memoized this packet's serialization time when service
        // started — one division per packet-hop instead of three.
        let tx_time = self.ports[pi].service_tx_time();
        // Leaf-uplink queueing delay of short-flow data (Fig. 8(b)) — the
        // queues the load balancer controls; NIC and downlink waits are the
        // same for every scheme and would only dilute the comparison.
        if self.pmap.is_leaf_up(p) && pkt.kind == PktKind::Data && self.is_short[pkt.flow.index()] {
            let w = now.saturating_sub(pkt.enqueued_at).as_secs_f64();
            self.short_qdelay.push(w);
            self.short_qdelay_series.add(now, w);
        }
        self.audit.tx_started(&pkt);
        self.q.push(now + tx_time, Event::TxDone(p));
    }

    fn on_tx_done(&mut self, p: PortId, now: SimTime) {
        let pi = p as usize;
        let (pkt, more) = self.ports[pi].finish_service();
        self.audit.tx_done(&pkt);
        let prop = self.ports[pi].link().prop_delay;
        if more {
            self.start_tx(p, now);
        }
        let at = now + prop;
        match self.cfg.delivery {
            DeliveryKind::Pipelined => {
                // Reserve the seq a per-packet `Arrive` push would have
                // taken right here, so the FEL's (time, seq) order — and
                // every downstream observable — matches the reference
                // mode bit-for-bit. Only the pipe head keeps a live FEL
                // event; successors chain when it pops.
                let seq = self.q.reserve_seq();
                let pipe = &mut self.pipes[pi];
                if pipe.is_empty() {
                    self.q.push_reserved(at, seq, Event::Deliver(p));
                }
                pipe.push_back(PipeEntry { at, seq, pkt });
            }
            DeliveryKind::PerPacket => {
                let slot = self.arena.insert(pkt);
                self.q.push(at, Event::Arrive { port: p, slot });
            }
        }
    }

    /// Pipelined delivery: the head of `p`'s pipe arrives now. Re-arm the
    /// chain for the next in-flight packet, then hand the packet to the
    /// arrival logic.
    fn on_deliver(&mut self, p: PortId, now: SimTime) {
        let entry = self.pipes[p as usize]
            .pop_front()
            .expect("Deliver on an empty pipe");
        debug_assert_eq!(entry.at, now, "pipe head out of FIFO order");
        if let Some(front) = self.pipes[p as usize].front() {
            let (at, seq) = (front.at, front.seq);
            self.q.push_reserved(at, seq, Event::Deliver(p));
        }
        self.arrive_seen += 1;
        if self.cfg.fault_drop_nth == Some(self.arrive_seen) {
            // Injected driver bug (audit tests only): the packet vanishes
            // without any accounting layer hearing of it.
            return;
        }
        self.on_arrive(p, entry.pkt, now);
    }

    /// A packet finished crossing port `p`'s link.
    fn on_arrive(&mut self, p: PortId, pkt: Packet, now: SimTime) {
        self.audit.arrived(&pkt);
        match self.next_node[p as usize] {
            NodeRef::Spine(s) => {
                let leaf = self.cfg.topo.leaf_of(pkt.dst).index() as u32;
                self.enqueue(self.pmap.spine_down(s as u32, leaf), pkt, now);
            }
            NodeRef::Leaf(l) => {
                let dst_leaf = self.cfg.topo.leaf_of(pkt.dst).index() as u32;
                if dst_leaf == l as u32 {
                    // Downstream (or intra-rack): single path to the host.
                    let slot = self.cfg.topo.host_slot(pkt.dst) as u32;
                    self.enqueue(self.pmap.leaf_down(l as u32, slot), pkt, now);
                } else {
                    // Upstream: the load balancer picks the uplink.
                    self.lb_decisions += 1;
                    let range = self.pmap.leaf_up_range(l as usize);
                    let view = PortView::new(&self.ports[range.clone()]);
                    let leaf = &mut self.leaves[l as usize];
                    let up = leaf.lb.choose_uplink(&pkt, view, now, &mut leaf.rng) as u32;
                    debug_assert!((up as usize) < range.len());
                    // Fig. 3(a): queue length experienced at enqueue.
                    if pkt.kind == PktKind::Data {
                        let qlen = self.ports[range.start + up as usize].len_pkts() as f64;
                        if self.is_short[pkt.flow.index()] {
                            self.short_qlen.push(qlen);
                        } else {
                            self.long_qlen.push(qlen);
                        }
                    }
                    self.enqueue(self.pmap.leaf_up(l as u32, up), pkt, now);
                }
            }
            NodeRef::Host(h) => self.deliver_to_host(h, pkt, now),
        }
    }

    fn trace(&mut self, p: PortId, pkt: &Packet, now: SimTime) {
        use crate::report::{Hop, TraceEvent};
        let hop = match self.pmap.decode(p) {
            PortRef::HostNic(h) => Hop::HostNic { host: h },
            PortRef::LeafUp { leaf, up } => Hop::LeafUplink { leaf, spine: up },
            PortRef::LeafDown { leaf, slot } => Hop::LeafDownlink { leaf, slot },
            PortRef::SpineDown { spine, leaf } => Hop::SpineDownlink { spine, leaf },
        };
        self.traces.push(TraceEvent {
            flow: pkt.flow,
            kind: pkt.kind,
            seq: pkt.seq,
            at: now,
            hop,
        });
    }

    fn deliver_to_host(&mut self, h: u32, pkt: Packet, now: SimTime) {
        debug_assert_eq!(pkt.dst.0, h, "packet delivered to the wrong host");
        self.audit.delivered(&pkt);
        if self.traced[pkt.flow.index()] {
            self.traces.push(crate::report::TraceEvent {
                flow: pkt.flow,
                kind: pkt.kind,
                seq: pkt.seq,
                at: now,
                hop: crate::report::Hop::Delivered { host: h },
            });
        }
        let fi = pkt.flow.index();
        match pkt.kind {
            PktKind::Syn => {
                if self.receivers[fi].is_none() {
                    // New connection: draw the out-of-order buffer from the
                    // pool (recycled from a torn-down flow in steady state).
                    let buf = self.ooo_pool.get(self.cfg.tcp.rwnd_segs() as usize);
                    self.receivers[fi] =
                        Some(TcpReceiver::with_ooo_buf(pkt.flow, pkt.dst, pkt.src, buf));
                }
                let receiver = self.receivers[fi].as_mut().expect("just inserted");
                let synack = receiver.on_syn(now);
                self.audit.emitted(&synack);
                self.enqueue(self.pmap.host_nic(h), synack, now);
            }
            PktKind::Data => {
                let is_short = self.is_short[fi];
                let Some(receiver) = self.receivers[fi].as_mut() else {
                    // Data before SYN can't happen; drop defensively.
                    debug_assert!(false, "data for unknown receiver");
                    return;
                };
                let before = receiver.delivered_segs();
                let ooo_before = receiver.stats().out_of_order;
                let ack = receiver.on_data(&pkt, now);
                let after = receiver.delivered_segs();
                let was_ooo = receiver.stats().out_of_order > ooo_before;

                // Reordering time series per class.
                if is_short {
                    self.short_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                } else {
                    self.long_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                    if after > before {
                        let bytes = (after - before) as f64 * self.cfg.tcp.mss as f64;
                        self.long_goodput.add(now, bytes);
                    }
                }

                // Completion: every segment delivered in order.
                if after >= self.total_segs[fi] && !self.completed[fi] {
                    self.completed[fi] = true;
                    self.n_completed += 1;
                    self.fct.flow_completed(pkt.flow, now);
                    // Closed-loop chain: launch the successor back-to-back.
                    if let Some(nf) = self.next_flow[fi] {
                        self.q.push(now, Event::FlowStart(nf));
                        self.starts_pending += 1;
                    }
                }
                self.audit.emitted(&ack);
                self.enqueue(self.pmap.host_nic(h), ack, now);
            }
            PktKind::SynAck | PktKind::Ack => {
                let mut out = std::mem::take(&mut self.out_buf);
                if let Some(sender) = self.senders[fi].as_mut() {
                    sender.on_packet(&pkt, now, &mut out);
                }
                self.process_outputs(pkt.flow.0, &mut out, now);
                self.out_buf = out;
            }
            PktKind::Fin => {
                // Connection teardown carries no data; flow counting
                // happened at the leaf switch. Recycle the receiver's
                // out-of-order buffer: the sender only emits a FIN once
                // every data segment was cumulatively ACKed, so the buffer
                // is empty here. Idempotent on retransmitted/duplicate FINs
                // (a reclaimed receiver hands back a capacity-0 Vec, which
                // the pool ignores).
                if let Some(r) = self.receivers[fi].as_mut() {
                    self.ooo_pool.put(r.take_ooo_buf());
                }
            }
        }
    }

    // ---- reporting ---------------------------------------------------

    fn into_report(mut self, wall: std::time::Duration) -> RunReport {
        // The clock can only pass the horizon through a bug (the run loop
        // stops *before* popping any later event); clamp as a backstop so a
        // regression can't inflate every duration-derived rate.
        let sim_end = self.q.now().min(self.cfg.horizon);
        let dur = sim_end.as_secs_f64().max(1e-9);

        // The reusable sender-output buffer was sized from the state
        // machine's worst case (`TcpConfig::max_outputs_per_call`); a
        // regrowth means that bound went stale.
        debug_assert_eq!(
            self.out_buf.capacity(),
            self.cfg.tcp.max_outputs_per_call(),
            "out_buf regrew past the derived per-call output bound"
        );

        let audit = self.finish_audit();

        let mut short = ClassCounters::default();
        let mut long = ClassCounters::default();
        for (i, spec) in self.flows.iter().enumerate() {
            let c = if spec.size_bytes < self.cfg.short_threshold {
                &mut short
            } else {
                &mut long
            };
            if let Some(s) = &self.senders[i] {
                let st = s.stats();
                c.data_sent += st.data_sent;
                c.retransmits += st.retransmits;
                c.timeouts += st.timeouts;
                c.fast_retransmits += st.fast_retransmits;
                c.dup_acks += st.dup_acks;
            }
            if let Some(r) = &self.receivers[i] {
                let st = r.stats();
                c.data_received += st.total_data;
                c.out_of_order += st.out_of_order;
            }
        }

        let uplink_utilization = (0..self.pmap.n_leaves as usize)
            .map(|l| {
                self.ports[self.pmap.leaf_up_range(l)]
                    .iter()
                    .map(|p| p.stats().busy.as_secs_f64() / dur)
                    .collect()
            })
            .collect();

        let mut drops = 0;
        let mut marks = 0;
        for p in &self.ports {
            drops += p.stats().dropped;
            marks += p.stats().marked;
        }

        let lb_state_final = self
            .leaves
            .iter()
            .map(|l| l.lb.state_bytes())
            .max()
            .unwrap_or(0);

        // Long-flow reroute total: present iff the scheme reports one
        // (TLB); `None` keeps non-TLB reports unambiguous.
        let tlb_long_reroutes = self
            .leaves
            .iter()
            .filter_map(|l| l.lb.long_reroutes())
            .fold(None, |acc: Option<u64>, n| Some(acc.unwrap_or(0) + n));

        RunReport {
            scheme: self.cfg.scheme.name().to_string(),
            total_flows: self.flows.len(),
            completed: self.n_completed,
            fct_short: self.fct.summary(FlowClass::Short),
            fct_long: self.fct.summary(FlowClass::Long),
            fct: self.fct,
            short,
            long,
            short_qlen: self.short_qlen,
            long_qlen: self.long_qlen,
            short_qdelay: self.short_qdelay,
            fel_depth: self.fel_depth,
            fel_bound_peak: self.fel_bound_peak,
            short_reorder_series: self.short_reorder.means(),
            long_reorder_series: self.long_reorder.means(),
            long_goodput_series: self.long_goodput.rates(),
            short_qdelay_series: self.short_qdelay_series.means(),
            uplink_utilization,
            drops,
            marks,
            lb_state_bytes_peak: self.lb_state_peak.max(lb_state_final),
            qth_series: self.qth_series,
            traces: self.traces,
            queue_series: self.queue_series,
            lb_decisions: self.lb_decisions,
            tlb_long_reroutes,
            events: self.events,
            audit,
            alloc_audit: self.alloc_report,
            sim_end,
            wall,
        }
    }

    /// Close the packet-conservation ledger: feed it the end-of-run
    /// residuals (queued packets, pending serializations and propagations
    /// — the latter live in the FEL in per-packet mode and in the link
    /// pipes in pipelined mode), per-port accounting snapshots, the
    /// engine's clock counter, and each live sender's invariant check,
    /// then let it verify everything (see [`crate::audit`]). Drains the
    /// event queue; call only from [`Net::into_report`].
    fn finish_audit(&mut self) -> Option<crate::audit::AuditReport> {
        let mut ledger = std::mem::replace(&mut self.audit, AuditLedger::new(false));
        if !ledger.enabled() {
            return None;
        }

        let labels: Vec<String> = (0..self.ports.len() as u32)
            .map(|p| match self.pmap.decode(p) {
                PortRef::HostNic(h) => format!("host{h}.nic"),
                PortRef::LeafUp { leaf, up } => format!("leaf{leaf}.up{up}"),
                PortRef::LeafDown { leaf, slot } => format!("leaf{leaf}.down{slot}"),
                PortRef::SpineDown { spine, leaf } => format!("spine{spine}.down{leaf}"),
            })
            .collect();

        for p in &self.ports {
            for pkt in p.iter_queued() {
                ledger.residual_queued(pkt);
            }
            // Both delivery modes park the serializing packet in the port.
            if let Some(pkt) = p.in_service_pkt() {
                ledger.residual_in_service(pkt);
            }
        }
        let port_audits: Vec<PortAudit> = labels
            .into_iter()
            .zip(&self.ports)
            .map(|(label, p)| PortAudit::of(label, p))
            .collect();

        let monotonicity = self.q.monotonicity_violations();
        for (_, ev) in self.q.drain_unordered() {
            if let Event::Arrive { slot, .. } = ev {
                ledger.residual_propagating(&self.arena.take(slot));
            }
        }
        debug_assert!(
            self.arena.is_empty(),
            "{} arena slots leaked past the FEL drain",
            self.arena.live()
        );
        // Pipelined mode: in-flight packets live in the link pipes (at
        // most one of them also has a `Deliver` event above, which carries
        // no packet — no double counting).
        for pipe in &self.pipes {
            for e in pipe {
                ledger.residual_propagating(&e.pkt);
            }
        }

        let mut senders_checked = 0;
        let mut sender_violations: Vec<(usize, String)> = Vec::new();
        for (i, s) in self.senders.iter().enumerate() {
            if let Some(s) = s {
                senders_checked += 1;
                if let Some(v) = s.invariant_violation() {
                    sender_violations.push((i, v));
                }
            }
        }
        let mut receivers_checked = 0;
        let mut receiver_violations: Vec<(usize, String)> = Vec::new();
        for (i, r) in self.receivers.iter().enumerate() {
            if let Some(r) = r {
                receivers_checked += 1;
                if let Some(v) = r.invariant_violation() {
                    receiver_violations.push((i, v));
                }
            }
        }

        ledger.finish(
            &port_audits,
            monotonicity,
            &sender_violations,
            senders_checked,
            &receiver_violations,
            receivers_checked,
        )
    }
}

#[cfg(test)]
mod tests;
