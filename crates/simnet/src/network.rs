//! The event-driven network: forwarding, serialization, endpoints, metrics.
//!
//! Node/queue layout for a leaf-spine fabric (all queues are
//! [`tlb_switch::OutPort`]s):
//!
//! ```text
//! host NIC ──> leaf { uplinks[spine] ──> spine { downlinks[leaf] ──> leaf { downlinks[host] ──> host
//! ```
//!
//! A three-tier fat tree adds one more load-balanced tier: edge uplinks
//! spray over the pod's aggs, agg uplinks spray over their core group, and
//! cores/aggs/edges route deterministically downward by destination pod /
//! edge / host slot.
//!
//! The load balancers run at the *upstream* switches: every packet headed
//! to a higher tier goes through `LoadBalancer::choose_uplink` at each
//! LB switch it climbs. Downward forwarding is single-path.
//!
//! ## Hot-path layout
//!
//! All output ports live in one flat `Vec<OutPort>` indexed by [`PortId`]
//! (hosts' NICs, then per switch its uplinks followed by its downlinks —
//! see [`PortMap`]), with the next-hop node precomputed per port. Load
//! balancers dispatch statically through [`crate::AnyLb`] unless the run
//! pins [`crate::LbDispatch::Dyn`].
//!
//! ## Failures
//!
//! [`crate::config::FailureEvent`]s flip ports administratively down/up at
//! their scheduled time: queued and in-service packets drain normally,
//! new admissions drop with ordinary accounting, and per-destination
//! reachability masks are recomputed so every LB decision sees only the
//! uplinks that can still reach the packet's destination group. Runs
//! without failure events never consult the masks and are bit-identical
//! to the historical static-fabric paths.
//!
//! In-flight packets ride **per-link delivery pipes**: a link has constant
//! propagation delay and its port serializes packets one at a time, so
//! arrival times per link are non-decreasing and FIFO. Instead of one FEL
//! entry per in-flight packet, each link keeps a `VecDeque` of
//! `(arrival time, reserved seq, packet)` and at most one chained
//! `Deliver` event in the FEL; popping it delivers the head and re-arms
//! the chain. Sequence numbers are *reserved* at the moment a per-packet
//! push would have happened ([`tlb_engine::EventQueue::reserve_seq`]), so
//! the FEL's `(time, seq)` pop order — and therefore every observable
//! result — is bit-identical to the per-packet reference
//! ([`crate::DeliveryKind::PerPacket`]). The payoff is FEL occupancy
//! bounded by O(ports + links + pending timers/starts) instead of
//! O(packets in flight); the run loop enforces that bound whenever the
//! audit is on.

use crate::audit::{AuditLedger, PortAudit};
use crate::config::{DeliveryKind, FidelityKind, SimConfig};
use crate::dispatch::AnyLb;
use crate::report::{AllocAudit, ClassCounters, RunReport};
use std::collections::VecDeque;
use tlb_engine::{alloc_audit, EventQueue, SimRng, SimTime};
use tlb_metrics::{FctRecorder, FlowClass, SampleSet, TimeSeries};
use tlb_net::{
    Fabric, FluidNet, HostId, LinkProps, Packet, PacketArena, PacketSlot, PktKind, RateChange,
    MAX_FLUID_PATH,
};
use tlb_switch::{Enqueued, LoadBalancer, OutPort, PortView};
use tlb_transport::{OooPool, SenderOutput, TcpReceiver, TcpSender};
use tlb_workload::FlowSpec;

/// Index into the flat port table (see [`PortMap`]).
type PortId = u32;

/// A specific output queue in the fabric — the decoded form of a
/// [`PortId`], used for traces and audit labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortRef {
    /// Host `h`'s NIC queue (towards its leaf/edge).
    HostNic(u32),
    /// Switch `sw`'s uplink `up`. Only LB switches have uplinks, so `sw`
    /// always indexes `PortMap::sw[0..n_lb]`.
    Up { sw: u16, up: u16 },
    /// Switch `sw`'s downlink `down` (towards a host, or a lower tier).
    Down { sw: u16, down: u16 },
}

/// Where a packet lands after crossing a link.
#[derive(Clone, Copy, Debug)]
enum NodeRef {
    Host(u32),
    Switch(u16),
}

/// One switch's port spans in the flat table: uplinks first, then
/// downlinks.
#[derive(Clone, Copy, Debug)]
struct SwPorts {
    up_base: u32,
    n_up: u32,
    down_base: u32,
    n_down: u32,
}

/// Fabric-specific routing constants, resolved once at build.
#[derive(Clone, Copy, Debug)]
enum PlanKind {
    /// Two tiers: leaves (LB) under spines.
    LeafSpine {
        n_leaves: u32,
        n_spines: u32,
        hpl: u32,
    },
    /// Three tiers: edges and aggs (both LB) under cores; `k = 2 * half`.
    FatTree {
        half: u32,
        n_edges: u32,
        n_aggs: u32,
    },
}

/// The flat port-table layout: hosts' NICs first, then per switch its
/// uplinks followed by its downlinks. Switch order is leaves-then-spines
/// (leaf-spine) or edges-then-aggs-then-cores (fat tree), so the LB
/// switches are exactly `sw[0..n_lb]` and their uplinks are contiguous —
/// the load balancer's [`PortView`] is a plain slice of the table.
struct PortMap {
    /// Hosts' NIC ports occupy `[0, n_hosts)`.
    n_hosts: u32,
    /// Per-switch port spans (LB switches first).
    sw: Vec<SwPorts>,
    /// Switches that run a load balancer: `sw[0..n_lb]`.
    n_lb: u32,
    n_ports: u32,
    plan: PlanKind,
    /// Decoded form of every port (traces, audit labels, hop metrics).
    port_ref: Vec<PortRef>,
    /// The reverse-direction port of each port's (undirected) link.
    rev: Vec<PortId>,
}

impl PortMap {
    fn new(topo: &Fabric) -> PortMap {
        let n_hosts = topo.n_hosts() as u32;
        let n_lb = topo.n_lb_switches() as u32;
        let (plan, shape): (PlanKind, Vec<(u32, u32)>) = match topo {
            Fabric::LeafSpine(t) => {
                let (nl, ns) = (t.n_leaves() as u32, t.n_spines() as u32);
                let hpl = t.hosts_per_leaf() as u32;
                let mut sh = Vec::with_capacity((nl + ns) as usize);
                sh.extend((0..nl).map(|_| (ns, hpl)));
                sh.extend((0..ns).map(|_| (0, nl)));
                (
                    PlanKind::LeafSpine {
                        n_leaves: nl,
                        n_spines: ns,
                        hpl,
                    },
                    sh,
                )
            }
            Fabric::FatTree(t) => {
                let half = t.half() as u32;
                let (ne, na, nc) = (t.n_edges() as u32, t.n_aggs() as u32, t.n_cores() as u32);
                let mut sh = Vec::with_capacity((ne + na + nc) as usize);
                sh.extend((0..ne + na).map(|_| (half, half)));
                sh.extend((0..nc).map(|_| (0, t.k() as u32)));
                (
                    PlanKind::FatTree {
                        half,
                        n_edges: ne,
                        n_aggs: na,
                    },
                    sh,
                )
            }
        };
        let mut sw = Vec::with_capacity(shape.len());
        let mut next = n_hosts;
        for (n_up, n_down) in shape {
            sw.push(SwPorts {
                up_base: next,
                n_up,
                down_base: next + n_up,
                n_down,
            });
            next += n_up + n_down;
        }
        let mut pm = PortMap {
            n_hosts,
            sw,
            n_lb,
            n_ports: next,
            plan,
            port_ref: Vec::new(),
            rev: Vec::new(),
        };
        pm.port_ref = (0..next).map(|p| pm.decode_arith(p)).collect();
        // Every downlink is the reverse of exactly one host NIC or uplink;
        // fill both directions of each pair from the NIC/uplink side.
        let mut rev = vec![u32::MAX; next as usize];
        for p in 0..next {
            let d = match pm.port_ref[p as usize] {
                PortRef::HostNic(h) => {
                    let hpl = pm.hosts_per_lb();
                    pm.sw_down(h / hpl, h % hpl)
                }
                PortRef::Up { sw, up } => pm.up_peer_down(sw as u32, up as u32),
                PortRef::Down { .. } => continue,
            };
            rev[p as usize] = d;
            rev[d as usize] = p;
        }
        debug_assert!(rev.iter().all(|&r| r != u32::MAX), "unpaired port");
        pm.rev = rev;
        pm
    }

    /// Hosts attached per LB switch at the bottom tier.
    #[inline]
    fn hosts_per_lb(&self) -> u32 {
        match self.plan {
            PlanKind::LeafSpine { hpl, .. } => hpl,
            PlanKind::FatTree { half, .. } => half,
        }
    }

    /// The downlink on the far switch that terminates LB switch `s`'s
    /// uplink `u`.
    fn up_peer_down(&self, s: u32, u: u32) -> PortId {
        match self.plan {
            // leaf s, uplink u <-> spine u's downlink s.
            PlanKind::LeafSpine { n_leaves, .. } => self.sw_down(n_leaves + u, s),
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                if s < n_edges {
                    // edge (pod p) uplink j <-> agg (p, j)'s downlink to it.
                    let p = s / half;
                    self.sw_down(n_edges + p * half + u, s % half)
                } else {
                    // agg (p, j) uplink m <-> core (j, m)'s downlink to pod p.
                    let a = s - n_edges;
                    let (p, j) = (a / half, a % half);
                    self.sw_down(n_edges + n_aggs + j * half + u, p)
                }
            }
        }
    }

    /// Decode a port id arithmetically (build-time; the hot path uses the
    /// precomputed `port_ref` table via [`PortMap::decode`]).
    fn decode_arith(&self, p: PortId) -> PortRef {
        if p < self.n_hosts {
            return PortRef::HostNic(p);
        }
        let rel = p - self.n_hosts;
        match self.plan {
            PlanKind::LeafSpine {
                n_leaves,
                n_spines,
                hpl,
            } => {
                let leaf_stride = n_spines + hpl;
                let leaf_ports = n_leaves * leaf_stride;
                if rel < leaf_ports {
                    let (sw, off) = (rel / leaf_stride, rel % leaf_stride);
                    if off < n_spines {
                        PortRef::Up {
                            sw: sw as u16,
                            up: off as u16,
                        }
                    } else {
                        PortRef::Down {
                            sw: sw as u16,
                            down: (off - n_spines) as u16,
                        }
                    }
                } else {
                    let srel = rel - leaf_ports;
                    PortRef::Down {
                        sw: (n_leaves + srel / n_leaves) as u16,
                        down: (srel % n_leaves) as u16,
                    }
                }
            }
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                // Every fat-tree switch has exactly k = 2*half ports.
                let k = 2 * half;
                let (sw, off) = (rel / k, rel % k);
                if sw < n_edges + n_aggs && off < half {
                    PortRef::Up {
                        sw: sw as u16,
                        up: off as u16,
                    }
                } else if sw < n_edges + n_aggs {
                    PortRef::Down {
                        sw: sw as u16,
                        down: (off - half) as u16,
                    }
                } else {
                    PortRef::Down {
                        sw: sw as u16,
                        down: off as u16,
                    }
                }
            }
        }
    }

    #[inline]
    fn n_ports(&self) -> usize {
        self.n_ports as usize
    }

    #[inline]
    fn host_nic(&self, h: u32) -> PortId {
        h
    }

    #[inline]
    fn sw_up(&self, s: u32, up: u32) -> PortId {
        self.sw[s as usize].up_base + up
    }

    #[inline]
    fn sw_down(&self, s: u32, down: u32) -> PortId {
        self.sw[s as usize].down_base + down
    }

    /// The contiguous slice of LB switch `s`'s uplinks in the port table.
    #[inline]
    fn up_range(&self, s: usize) -> std::ops::Range<usize> {
        let sp = &self.sw[s];
        sp.up_base as usize..(sp.up_base + sp.n_up) as usize
    }

    /// Whether `p` is an LB switch's uplink (the queues the balancers
    /// control — the short-flow qdelay metric samples exactly these).
    #[inline]
    fn is_lb_up(&self, p: PortId) -> bool {
        matches!(self.port_ref[p as usize], PortRef::Up { .. })
    }

    #[inline]
    fn decode(&self, p: PortId) -> PortRef {
        self.port_ref[p as usize]
    }

    /// The node a packet reaches after crossing port `p`'s link: the far
    /// end of the reverse port's switch, or the host behind a NIC pair.
    fn next_node(&self, p: PortId) -> NodeRef {
        match self.port_ref[self.rev[p as usize] as usize] {
            PortRef::HostNic(h) => NodeRef::Host(h),
            PortRef::Up { sw, .. } | PortRef::Down { sw, .. } => NodeRef::Switch(sw),
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A flow's start time arrived.
    FlowStart(u32),
    /// The packet in service on `port` finished serializing.
    TxDone(PortId),
    /// The head of `port`'s delivery pipe arrives now (pipelined mode).
    Deliver(PortId),
    /// A packet arrives after crossing `port`'s link (per-packet reference
    /// mode). The packet itself parks in the [`PacketArena`]; the event
    /// carries its 4-byte generation-checked handle, so the hot enum stays
    /// one word of payload with no heap round-trip per packet.
    Arrive { port: PortId, slot: PacketSlot },
    /// A sender's retransmission timer fires.
    Timer { flow: u32 },
    /// An LB switch balancer's periodic tick.
    LbTick { sw: u16 },
    /// Apply the `i`-th configured [`crate::config::LinkEvent`].
    LinkChange(u32),
    /// Apply the `i`-th configured [`crate::config::FailureEvent`].
    Failure(u32),
    /// Sample leaf-0's uplink queues (Fig. 5 visualization).
    QueueSample,
    /// A fluid-tier flow's projected completion time arrived (hybrid
    /// fidelity only). The FEL has no removal, so superseded projections
    /// stay queued and are filtered at the pop by the flow's fluid
    /// generation counter.
    FluidDone { flow: u32, gen: u32 },
}

/// Bits of an event-ordering key reserved for the entity index; the top
/// five bits hold the class rank.
const KEY_ENTITY_BITS: u32 = 27;

#[inline]
fn key_of(class: u32, entity: u32) -> u32 {
    debug_assert!(class < 32);
    debug_assert!(entity < (1 << KEY_ENTITY_BITS), "entity overflows its key");
    (class << KEY_ENTITY_BITS) | entity
}

/// The FEL ordering key of an event: `(class rank << 27) | entity`. Both
/// engines order same-timestamp events by this key before falling back to
/// per-queue FIFO, which is what makes the sharded engine's cross-shard
/// merge reconstruct the serial schedule: each `(class, entity)` pair is
/// pushed by exactly one shard, so same-`(time, key)` ties are always
/// same-shard (ordered by that shard's local FIFO `seq`, exactly the
/// relative order a serial run assigns) and cross-shard order is settled
/// by `(time, key)` alone. `Arrive` and `Deliver` share a class on the
/// transmitting port because they are the same arrival in the two delivery
/// modes — the reserved-seq machinery keeps the tie order aligned.
#[inline]
fn event_key(ev: &Event) -> u32 {
    match *ev {
        Event::FlowStart(f) => key_of(0, f),
        Event::Timer { flow } => key_of(1, flow),
        Event::Arrive { port, .. } => key_of(2, port),
        Event::Deliver(p) => key_of(2, p),
        Event::TxDone(p) => key_of(3, p),
        Event::LbTick { sw } => key_of(4, sw as u32),
        Event::QueueSample => key_of(5, 0),
        Event::LinkChange(i) => key_of(6, i),
        Event::Failure(i) => key_of(7, i),
        Event::FluidDone { flow, .. } => key_of(8, flow),
    }
}

/// Push `ev` with its ordering key (every FEL insertion in this module
/// goes through here or [`tlb_engine::EventQueue::push_reserved_keyed`],
/// so both engines realize the same `(time, key, seq)` order).
#[inline]
fn push_ev(q: &mut EventQueue<Event>, at: SimTime, ev: Event) {
    let key = event_key(&ev);
    q.push_keyed(at, key, ev);
}

/// One in-flight packet parked in a link's delivery pipe: its arrival
/// time and the FEL sequence number reserved for it.
struct PipeEntry {
    at: SimTime,
    seq: u64,
    pkt: Packet,
}

/// An LB switch's control state (its ports live in the flat table).
struct LbSw {
    lb: AnyLb,
    rng: SimRng,
}

/// One configured simulation, ready to run.
pub struct Simulation {
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    /// `next[i] = Some(j)`: flow `j` starts when flow `i` completes
    /// (closed-loop chains). Chain heads start at their `start` time;
    /// chained flows' `start` fields are ignored.
    next: Vec<Option<u32>>,
}

struct Net<'a> {
    cfg: &'a SimConfig,
    flows: &'a [FlowSpec],
    pmap: PortMap,
    /// Every output queue in the fabric, laid out per [`PortMap`].
    ports: Vec<OutPort>,
    /// Per-link delivery pipes, parallel to `ports` (each port drives
    /// exactly one link). Empty in per-packet mode.
    pipes: Vec<VecDeque<PipeEntry>>,
    /// Precomputed next hop per port.
    next_node: Vec<NodeRef>,
    /// One balancer per LB switch (leaves, or edges then aggs).
    lb_sws: Vec<LbSw>,
    /// Whether any failure events are configured (constant per run):
    /// gates every mask lookup so failure-free runs never touch them.
    has_failures: bool,
    /// Per-(LB switch, destination group) usable-uplink masks, indexed
    /// `sw * n_groups + group`; groups are destination leaves
    /// (leaf-spine) or destination edges (fat tree). Empty unless
    /// `has_failures`.
    reach: Vec<u64>,
    /// Columns of `reach`.
    n_groups: usize,
    /// Per-port FIFO floor: the latest arrival time already scheduled on
    /// each link. A mid-run propagation-delay *decrease* would otherwise
    /// let later packets overtake earlier ones on the same wire — links
    /// are FIFO, so arrivals clamp to this floor (a no-op whenever a
    /// link's delay never shrinks, which keeps legacy runs bit-identical
    /// in both delivery modes).
    link_fifo: Vec<SimTime>,
    senders: Vec<Option<TcpSender>>,
    receivers: Vec<Option<TcpReceiver>>,
    next_flow: Vec<Option<u32>>,
    total_segs: Vec<u32>,
    /// Per-flow short/long classification, precomputed at build so the
    /// per-packet paths index a bitvec instead of re-deriving it from the
    /// flow table.
    is_short: Vec<bool>,
    completed: Vec<bool>,
    n_completed: usize,
    q: EventQueue<Event>,
    /// Parking lot for in-flight packets in per-packet delivery mode
    /// (`Event::Arrive` carries a slot handle). Unused — and unallocated —
    /// in pipelined mode, where packets ride the link pipes inline.
    arena: PacketArena,
    /// Recycles receivers' out-of-order buffers across flow lifetimes.
    ooo_pool: OooPool,
    out_buf: Vec<SenderOutput>,
    /// Allocation counters captured when `events` crossed the configured
    /// warmup boundary (see [`SimConfig::alloc_warmup_events`]).
    alloc_at_warmup: Option<alloc_audit::AllocCounters>,
    /// Steady-state allocation report, filled at run-loop exit.
    alloc_report: Option<AllocAudit>,
    // FEL-occupancy bound bookkeeping (mode-independent counters).
    /// `FlowStart` events pending in the FEL.
    starts_pending: u64,
    /// `Timer` events pending in the FEL.
    timers_live: u64,
    /// `LbTick`/`LinkChange`/`QueueSample` events pending in the FEL.
    misc_pending: u64,
    /// Peak of the occupancy bound over the depth-sample schedule.
    fel_bound_peak: u64,
    // Metrics.
    fct: FctRecorder,
    short_qlen: SampleSet,
    long_qlen: SampleSet,
    short_qdelay: SampleSet,
    /// FEL occupancy sampled every [`FEL_DEPTH_SAMPLE_EVERY`] events.
    fel_depth: SampleSet,
    short_qdelay_series: TimeSeries,
    short_reorder: TimeSeries,
    long_reorder: TimeSeries,
    long_goodput: TimeSeries,
    qth_series: Vec<(f64, f64)>,
    traced: Vec<bool>,
    traces: Vec<crate::report::TraceEvent>,
    queue_series: Vec<(f64, Vec<u32>)>,
    lb_state_peak: usize,
    lb_decisions: u64,
    events: u64,
    /// Packet-lifecycle ledger (no-op unless [`SimConfig::audit`]).
    audit: AuditLedger,
    /// Arrival events seen, for [`SimConfig::fault_drop_nth`].
    arrive_seen: u64,
    // Hybrid fidelity (long-flow fluid tails). `fluid` is `Some` iff the
    // run uses [`FidelityKind::Hybrid`]; every hybrid code path is gated
    // on it, so packet-fidelity runs execute the historical per-packet
    // paths bit-for-bit.
    fluid: Option<FluidNet>,
    /// Per-flow: has ever migrated packet→fluid (audit bookkeeping). A
    /// flow demoted by a failure reroutes at packet fidelity, then may
    /// migrate *again* once it re-qualifies over a healthy path; stale
    /// `FluidDone`s from earlier residencies die on the generation
    /// counter.
    migrated: Vec<bool>,
    /// Per-flow: fluid tail still in flight (completion waits for it).
    fluid_pend: Vec<bool>,
    /// Per-flow payload bytes handed to the fluid tier at the *latest*
    /// migration. Allocated only under hybrid fidelity.
    fluid_tail_bytes: Vec<u64>,
    /// Per-flow payload bytes the fluid tier actually delivered, summed
    /// over every residency — equal to the tail sizes handed over unless
    /// a demotion returned a remainder mid-tail. Allocated only under
    /// hybrid fidelity.
    fluid_credit: Vec<u64>,
    /// `FluidDone` events pending in the FEL, stale ones included (part of
    /// the FEL occupancy bound).
    fluid_events_pending: u64,
    fluid_migrations: u64,
    fluid_demotions: u64,
    fluid_bytes: u64,
    /// Scratch for draining [`FluidNet::take_changes`].
    rate_changes: Vec<RateChange>,
    /// Scratch for collecting failure-demoted fluid flows.
    demote_scratch: Vec<u32>,
    /// Sharded-engine context: `Some` iff this `Net` is one shard's
    /// replica of the fabric (see [`sharded`]). Serial runs never set it
    /// and every sharded hook is gated on it.
    shard: Option<sharded::ShardCtx>,
    /// Ordering key of the event currently dispatching (trace tagging).
    cur_key: u32,
    /// Per-row ordering keys for `traces`, recorded only under sharding:
    /// the report merge stable-sorts the concatenated shard traces by
    /// `(at, key)`, which reconstructs the serial emission order.
    trace_keys: Vec<u32>,
    /// Event count at which to capture the allocation-audit baseline
    /// (`u64::MAX` = off; sharded replicas never arm it).
    warmup_at: u64,
}

impl Simulation {
    /// Configure a simulation over the given flow set (all flows start at
    /// their `start` time).
    pub fn new(cfg: SimConfig, flows: Vec<FlowSpec>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        let n = flows.len();
        Simulation {
            cfg,
            flows,
            next: vec![None; n],
        }
    }

    /// Configure a closed-loop simulation: `next[i] = Some(j)` makes flow
    /// `j` start back-to-back when flow `i` delivers its last byte — the
    /// way a request/response client keeps a sustained number of flows in
    /// flight. Chained flows must not also have their own start event, so
    /// every index that appears as someone's `next` is launched only by its
    /// predecessor.
    pub fn new_chained(cfg: SimConfig, flows: Vec<FlowSpec>, next: Vec<Option<u32>>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        assert_eq!(
            flows.len(),
            next.len(),
            "next pointers must cover all flows"
        );
        // No flow may be the successor of two predecessors.
        let mut seen = vec![false; flows.len()];
        for &n in next.iter().flatten() {
            let i = n as usize;
            assert!(i < flows.len(), "next pointer out of range");
            assert!(!seen[i], "flow {i} chained twice");
            seen[i] = true;
        }
        Simulation { cfg, flows, next }
    }

    /// Run to completion (all flows done or horizon reached) and report.
    pub fn run(self) -> RunReport {
        run_with(&self.cfg, &self.flows, self.next)
    }
}

/// Run one simulation over borrowed inputs. [`Simulation::run`] and the
/// clone-free [`crate::runner::run_one_ref`] both land here.
pub(crate) fn run_with(
    cfg: &SimConfig,
    flows: &[FlowSpec],
    next_flow: Vec<Option<u32>>,
) -> RunReport {
    let wall_start = std::time::Instant::now();
    if let tlb_engine::EngineKind::Sharded { workers } = cfg.engine {
        if let Some(report) = sharded::try_run(cfg, flows, &next_flow, workers, wall_start) {
            return report;
        }
        // Preconditions unmet (hybrid fidelity, chained flows, injected
        // drops, a single-shard topology, or zero lookahead): the serial
        // engine is the sharded engine's own fallback, digest-identical
        // by definition.
    }
    let mut net = Net::build(cfg, flows, next_flow, None);
    net.run_loop();
    net.into_report(wall_start.elapsed())
}

impl<'a> Net<'a> {
    fn build(
        cfg: &'a SimConfig,
        flows: &'a [FlowSpec],
        next_flow: Vec<Option<u32>>,
        shard: Option<sharded::ShardCtx>,
    ) -> Net<'a> {
        let topo = &cfg.topo;
        let mut master_rng = SimRng::new(cfg.seed);
        let pmap = PortMap::new(topo);

        // Every directed port takes its link physics from the undirected
        // link it serializes onto: host links for NIC pairs, the fabric's
        // uplink table for switch-to-switch pairs (downlinks read through
        // the reverse-port table).
        let uplink_side_props = |r: PortRef| -> LinkProps {
            match r {
                PortRef::HostNic(h) => topo.host_link_of(HostId(h)),
                PortRef::Up { sw, up } => topo.uplink_props(sw as usize, up as usize),
                PortRef::Down { .. } => unreachable!("downlink paired with a downlink"),
            }
        };
        let mut ports = Vec::with_capacity(pmap.n_ports());
        for p in 0..pmap.n_ports() as u32 {
            let (props, qcfg) = match pmap.decode(p) {
                r @ PortRef::HostNic(_) => (uplink_side_props(r), cfg.host_queue),
                r @ PortRef::Up { .. } => (uplink_side_props(r), cfg.queue),
                PortRef::Down { .. } => (
                    uplink_side_props(pmap.decode(pmap.rev[p as usize])),
                    cfg.queue,
                ),
            };
            ports.push(OutPort::new(props, qcfg));
        }
        debug_assert_eq!(ports.len(), pmap.n_ports());
        let next_node = (0..ports.len() as u32).map(|p| pmap.next_node(p)).collect();
        // Pre-size each link's delivery pipe from the link's physics: one
        // serializer feeds the pipe, every entry costs at least the
        // smallest packet's serialization time, and entries live exactly
        // one propagation delay — so at most `prop/tx(min_wire) + 1`
        // packets are ever in flight. A mid-run [`LinkEvent`] can stretch
        // prop_delay or (bw_factor > 1) shrink serialization time, either
        // of which *raises* the ceiling — so replay each port's whole
        // event schedule in time order and size for the worst state it
        // ever reaches. This is what keeps pipe growth out of the
        // steady-state allocation gate ([`Net::refit_pipe`] is the
        // belt-and-braces check at the event itself).
        let min_wire = cfg.tcp.header_bytes.max(1) as u64;
        let in_flight_bound = |l: &LinkProps| -> usize {
            let tx = tlb_engine::time::tx_time(min_wire, l.bytes_per_sec)
                .as_nanos()
                .max(1);
            (l.prop_delay.as_nanos() / tx + 2).min(4096) as usize
        };
        let pipe_caps: Vec<usize> = (0..ports.len() as u32)
            .map(|p| {
                let mut link = ports[p as usize].link();
                let mut worst = in_flight_bound(&link);
                let mut evs: Vec<&crate::config::LinkEvent> = cfg
                    .link_events
                    .iter()
                    .filter(|ev| {
                        let up = pmap.sw_up(ev.leaf.index() as u32, ev.spine.index() as u32);
                        up == p || pmap.rev[up as usize] == p
                    })
                    .collect();
                // Stable by-time sort: same-time events keep config order,
                // exactly how the FEL applies them.
                evs.sort_by_key(|ev| ev.at);
                for ev in evs {
                    link.bytes_per_sec =
                        ((link.bytes_per_sec as f64) * ev.bw_factor).max(1.0) as u64;
                    link.prop_delay = ev.new_prop_delay.unwrap_or(link.prop_delay) + ev.extra_delay;
                    worst = worst.max(in_flight_bound(&link));
                }
                worst
            })
            .collect();
        let total_pipe: usize = pipe_caps.iter().sum();
        let pipes: Vec<VecDeque<PipeEntry>> = pipe_caps
            .iter()
            .map(|&cap| {
                if cfg.delivery == DeliveryKind::Pipelined {
                    VecDeque::with_capacity(cap)
                } else {
                    // Per-packet mode never touches the pipes.
                    VecDeque::new()
                }
            })
            .collect();

        let lb_sws = (0..pmap.n_lb as usize)
            .map(|l| LbSw {
                lb: cfg.scheme.build_dispatch(l as u64 + 1, cfg.lb_dispatch),
                rng: master_rng.fork(l as u64),
            })
            .collect();

        let n = flows.len();
        // Size the FEL so steady state never reallocates. In pipelined
        // delivery the occupancy is bounded by the fabric (one `TxDone`
        // plus one `Deliver` per port) plus pending timers/starts; the
        // per-packet reference mode can additionally hold one `Arrive` per
        // packet in flight. (For the calendar backend the capacity
        // reserves the overflow tier, which is exactly where the
        // build-time bulk of not-yet-started flows lands.)
        let n_ports = pmap.n_ports();
        // `total_pipe` is the schedule-aware sum of per-link in-flight
        // bounds (≥ 2 per port), so per-packet mode's extra `Arrive`
        // entries fit too.
        let fel_cap = 2 * n + 2 * n_ports + total_pipe + 64;
        let mut q = EventQueue::with_capacity_and_kind(fel_cap, cfg.fel);
        // Only chain heads get their own start event; chained flows are
        // launched by their predecessor's completion.
        let mut is_chained = vec![false; n];
        for &nf in next_flow.iter().flatten() {
            is_chained[nf as usize] = true;
        }
        let mut starts_pending = 0u64;
        for (i, f) in flows.iter().enumerate() {
            let owned = shard.as_ref().is_none_or(|c| c.owns_host(f.src.0));
            if !is_chained[i] && owned {
                push_ev(&mut q, f.start, Event::FlowStart(i as u32));
                starts_pending += 1;
            }
        }
        // Pre-size every per-packet metric collector from workload bounds,
        // so steady state never grows them. `segs(class)` counts first
        // transmissions; the +25% headroom absorbs retransmissions (the
        // allocation gate pins typical runs well under that).
        let total_segs: Vec<u32> = flows
            .iter()
            .map(|f| f.size_bytes.div_ceil(cfg.tcp.mss as u64) as u32)
            .collect();
        let is_short: Vec<bool> = flows
            .iter()
            .map(|f| f.size_bytes < cfg.short_threshold)
            .collect();
        let segs = |short: bool| -> usize {
            total_segs
                .iter()
                .zip(&is_short)
                .filter(|&(_, &s)| s == short)
                .map(|(&t, _)| t as usize)
                .sum()
        };
        let sample_cap = |first_tx: usize| (first_tx + first_tx / 4 + 64).min(1 << 22);
        let short_segs = segs(true);
        let long_segs = segs(false);
        // FEL-depth samples: one per 4096 events; a data segment costs
        // O(2 hops·(TxDone+Arrive)) events each way, so 24·segs/4096 is a
        // generous event-count estimate.
        let depth_cap = ((short_segs + long_segs) * 24 / 4096 + 64).min(1 << 20);
        let mut fct = FctRecorder::new(cfg.short_threshold);
        fct.reserve(n);
        // A traced data segment records ~5 hops each way (NIC, uplink,
        // spine, downlink, delivery; same for its ACK), plus
        // handshake/teardown and retransmissions. 16 rows per segment
        // covers that with headroom, so tracing stays off the steady-state
        // allocation gate; capped like the other horizon-scaled collectors.
        let traced_segs: usize = cfg
            .trace_flows
            .iter()
            .filter_map(|f| total_segs.get(f.index()))
            .map(|&s| s as usize)
            .sum();
        let trace_rows = if traced_segs == 0 {
            0
        } else {
            (traced_segs * 16 + 64).min(1 << 20)
        };

        // Balancer ticks per leaf.
        let mut net = Net {
            total_segs,
            is_short,
            fct,
            short_qdelay_series: Self::series_for(cfg),
            short_reorder: Self::series_for(cfg),
            long_reorder: Self::series_for(cfg),
            long_goodput: Self::series_for(cfg),
            has_failures: !cfg.failure_events.is_empty(),
            reach: {
                let groups = match pmap.plan {
                    PlanKind::LeafSpine { n_leaves, .. } => n_leaves as usize,
                    PlanKind::FatTree { n_edges, .. } => n_edges as usize,
                };
                if cfg.failure_events.is_empty() {
                    Vec::new()
                } else {
                    vec![0u64; pmap.n_lb as usize * groups]
                }
            },
            n_groups: match pmap.plan {
                PlanKind::LeafSpine { n_leaves, .. } => n_leaves as usize,
                PlanKind::FatTree { n_edges, .. } => n_edges as usize,
            },
            pmap,
            ports,
            pipes,
            next_node,
            lb_sws,
            senders: (0..n).map(|_| None).collect(),
            receivers: (0..n).map(|_| None).collect(),
            next_flow,
            completed: vec![false; n],
            n_completed: 0,
            q,
            // Per-packet mode parks every in-flight packet here; size it
            // like the FEL so steady-state occupancy never grows the slab.
            // Pipelined mode keeps packets in the link pipes instead and
            // skips the allocation entirely.
            arena: if cfg.delivery == DeliveryKind::PerPacket || shard.is_some() {
                // Sharded replicas park cross-shard handoffs here even in
                // pipelined mode.
                PacketArena::with_capacity(fel_cap)
            } else {
                PacketArena::new()
            },
            // The free stack parks at most one buffer per torn-down flow,
            // so `n` bounds it; capped like the other flow-scaled
            // collectors (24 bytes per parked handle).
            ooo_pool: OooPool::with_capacity(n.min(1 << 20)),
            // The sender state machine bounds its per-call output (see
            // `TcpConfig::max_outputs_per_call`); the allocation audit
            // asserts this buffer never regrows.
            out_buf: Vec::with_capacity(cfg.tcp.max_outputs_per_call()),
            alloc_at_warmup: None,
            alloc_report: None,
            starts_pending,
            timers_live: 0,
            misc_pending: 0,
            fel_bound_peak: 0,
            short_qlen: SampleSet::with_capacity(sample_cap(short_segs)),
            long_qlen: SampleSet::with_capacity(sample_cap(long_segs)),
            short_qdelay: SampleSet::with_capacity(sample_cap(short_segs)),
            fel_depth: SampleSet::with_capacity(depth_cap),
            qth_series: Vec::new(),
            traced: {
                let mut t = vec![false; n];
                for f in &cfg.trace_flows {
                    if f.index() < n {
                        t[f.index()] = true;
                    }
                }
                t
            },
            traces: Vec::with_capacity(trace_rows),
            queue_series: {
                // One row per series bucket up to the horizon, capped so a
                // long horizon with a fine bucket can't pre-allocate
                // unboundedly.
                let rows = if cfg.sample_queues {
                    (cfg.horizon.as_nanos() / cfg.series_bucket.as_nanos().max(1)) as usize + 1
                } else {
                    0
                };
                Vec::with_capacity(rows.min(1 << 16))
            },
            lb_state_peak: 0,
            lb_decisions: 0,
            events: 0,
            link_fifo: vec![SimTime::ZERO; n_ports],
            audit: AuditLedger::new(cfg.audit),
            arrive_seen: 0,
            fluid: None,
            migrated: vec![false; n],
            fluid_pend: vec![false; n],
            fluid_tail_bytes: Vec::new(),
            fluid_credit: Vec::new(),
            fluid_events_pending: 0,
            fluid_migrations: 0,
            fluid_demotions: 0,
            fluid_bytes: 0,
            rate_changes: Vec::new(),
            demote_scratch: Vec::new(),
            cur_key: 0,
            trace_keys: if shard.is_some() {
                Vec::with_capacity(trace_rows)
            } else {
                Vec::new()
            },
            warmup_at: if shard.is_some() {
                // The allocation audit is a serial-engine gate; replica
                // plumbing (inboxes, handoffs) is outside its contract.
                u64::MAX
            } else {
                cfg.alloc_warmup_events.unwrap_or(u64::MAX)
            },
            shard,
            cfg,
            flows,
        };
        if cfg.fidelity == FidelityKind::Hybrid {
            // The fluid tier's per-link capacity is the link's payload
            // goodput: wire rate scaled by MSS/(MSS+header), i.e. what a
            // saturating packet flow can actually deliver end to end.
            let frac = cfg.tcp.mss as f64 / (cfg.tcp.mss as f64 + cfg.tcp.header_bytes as f64);
            let mut fluid = FluidNet::new(net.ports.len(), n);
            for (i, p) in net.ports.iter().enumerate() {
                fluid.set_capacity(i as u32, p.link().bytes_per_sec as f64 * frac);
            }
            net.fluid = Some(fluid);
            net.fluid_tail_bytes = vec![0; n];
            net.fluid_credit = vec![0; n];
            net.rate_changes = Vec::with_capacity(64);
            net.demote_scratch = Vec::with_capacity(64);
        }
        for l in 0..net.lb_sws.len() {
            if !net.shard.as_ref().is_none_or(|c| c.owns_sw(l)) {
                continue;
            }
            if let Some(iv) = net.lb_sws[l].lb.tick_interval() {
                push_ev(&mut net.q, iv, Event::LbTick { sw: l as u16 });
                net.misc_pending += 1;
                // Leaf 0's threshold trace grows by at most one row per
                // tick; materialize the worst case now (capped like
                // `queue_series`).
                if l == 0 {
                    let rows = (cfg.horizon.as_nanos() / iv.as_nanos().max(1)) as usize + 2;
                    net.qth_series.reserve(rows.min(1 << 16));
                }
            }
        }
        if net.shard.as_ref().is_none_or(|c| c.id == 0) {
            for (i, ev) in net.cfg.link_events.iter().enumerate() {
                push_ev(&mut net.q, ev.at, Event::LinkChange(i as u32));
                net.misc_pending += 1;
            }
            for (i, ev) in net.cfg.failure_events.iter().enumerate() {
                push_ev(&mut net.q, ev.at, Event::Failure(i as u32));
                net.misc_pending += 1;
            }
        }
        if net.has_failures {
            // Seed the reachability masks from the (fully live) fabric so
            // an `Up`-leading schedule still sees consistent state.
            net.recompute_reach();
        }
        if net.cfg.sample_queues && net.shard.as_ref().is_none_or(|c| c.id == 0) {
            push_ev(&mut net.q, net.cfg.series_bucket, Event::QueueSample);
            net.misc_pending += 1;
        }
        net
    }

    /// A per-class time series pre-sized to the run horizon, so bucket
    /// appends never resize mid-run (the cap mirrors `queue_series`).
    fn series_for(cfg: &SimConfig) -> TimeSeries {
        let mut s = TimeSeries::new(cfg.series_bucket);
        s.reserve_until(cfg.horizon, 1 << 16);
        s
    }

    /// Sample FEL occupancy once per this many processed events. The
    /// sample schedule depends only on the event count, which is identical
    /// across FEL backends and thread counts, so the samples are part of
    /// the deterministic digest.
    const FEL_DEPTH_SAMPLE_EVERY: u64 = 4096;

    /// The pipelined-delivery FEL occupancy bound: at most one `TxDone`
    /// and one `Deliver` per port, plus every pending flow start, timer,
    /// housekeeping and fluid-completion event. Computed from counters
    /// that are identical across delivery modes, so its peak is
    /// digest-stable (`fluid_events_pending` is zero under packet
    /// fidelity).
    #[inline]
    fn fel_bound(&self) -> u64 {
        2 * self.ports.len() as u64
            + self.starts_pending
            + self.timers_live
            + self.misc_pending
            + self.fluid_events_pending
    }

    fn run_loop(&mut self) {
        let horizon = self.cfg.horizon;
        while self.n_completed < self.flows.len() {
            // Peek before popping: an event past the horizon must stay in
            // the queue (end-of-run accounting counts it as in flight) and
            // must not advance the clock past the horizon (it would inflate
            // `sim_end` and every rate derived from it).
            match self.q.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break, // queue empty, or nothing left before the horizon
            }
            self.step();
        }
        self.close_alloc_window();
    }

    /// Sharded engine: run every local event strictly before `end` (and at
    /// or before `horizon`). The global completion gate lives with the
    /// coordinator — the window protocol switches to a serialized tail
    /// before the run could possibly finish mid-window (see [`sharded`]).
    fn run_window(&mut self, end: SimTime, horizon: SimTime) {
        loop {
            match self.q.peek_time() {
                Some(t) if t < end && t <= horizon => {}
                _ => break,
            }
            self.step();
        }
    }

    /// Pop and dispatch one event — the shared body of the serial loop,
    /// the sharded window loop, and the coordinator's merged loops.
    fn step(&mut self) {
        let (now, ev) = self.q.pop().expect("peeked event vanished");
        self.events += 1;
        if self.events == self.warmup_at {
            self.alloc_at_warmup = Some(alloc_audit::counters());
        }
        if self.events.is_multiple_of(Self::FEL_DEPTH_SAMPLE_EVERY) {
            self.fel_depth.push(self.q.len() as f64);
            let bound = self.fel_bound();
            self.fel_bound_peak = self.fel_bound_peak.max(bound);
            // The occupancy oracle: pipelined delivery must keep the
            // FEL within the fabric-sized bound. A shard replica is
            // exempt: cross-shard handoffs arrive as per-packet events,
            // which the pipelined bound deliberately excludes.
            if self.cfg.audit
                && self.cfg.delivery == DeliveryKind::Pipelined
                && self.shard.is_none()
            {
                assert!(
                    self.q.len() as u64 <= bound,
                    "FEL occupancy {} exceeds the pipelined bound {bound}",
                    self.q.len(),
                );
            }
        }
        self.cur_key = event_key(&ev);
        match ev {
            Event::FlowStart(i) => {
                self.starts_pending -= 1;
                self.on_flow_start(i, now);
            }
            Event::TxDone(p) => self.on_tx_done(p, now),
            Event::Deliver(p) => self.on_deliver(p, now),
            Event::Arrive { port, slot } => {
                let pkt = self.arena.take(slot);
                self.arrive_seen += 1;
                if self.cfg.fault_drop_nth == Some(self.arrive_seen) {
                    // Injected driver bug (audit tests only): the packet
                    // vanishes without any accounting layer hearing of it.
                    return;
                }
                self.on_arrive(port, pkt, now);
            }
            Event::Timer { flow } => {
                self.timers_live -= 1;
                self.on_timer(flow, now);
            }
            Event::LbTick { sw } => {
                self.misc_pending -= 1;
                self.on_lb_tick(sw, now);
            }
            Event::LinkChange(i) => {
                self.misc_pending -= 1;
                self.on_link_change(i as usize, now);
            }
            Event::Failure(i) => {
                self.misc_pending -= 1;
                self.on_failure(i as usize, now);
            }
            Event::QueueSample => {
                self.misc_pending -= 1;
                self.on_queue_sample(now);
            }
            Event::FluidDone { flow, gen } => {
                self.fluid_events_pending -= 1;
                self.on_fluid_done(flow, gen, now);
            }
        }
    }

    /// Close the allocation-audit window at run-loop exit, *before* the
    /// reporting/audit phase — end-of-run summarization is allowed to
    /// allocate; the steady-state invariant covers event processing
    /// only. The probe runs after the final read so it cannot pollute
    /// the delta.
    fn close_alloc_window(&mut self) {
        if let Some(start) = self.alloc_at_warmup.take() {
            let d = start.delta(alloc_audit::counters());
            self.alloc_report = Some(AllocAudit {
                warmup_events: self.warmup_at,
                steady_events: self.events.saturating_sub(self.warmup_at),
                counting: alloc_audit::probe_counting(),
                allocs: d.allocs,
                reallocs: d.reallocs,
                deallocs: d.deallocs,
                bytes: d.bytes,
            });
        }
    }

    // ---- event handlers --------------------------------------------------

    fn on_flow_start(&mut self, i: u32, now: SimTime) {
        let spec = self.flows[i as usize];
        self.fct
            .flow_started(spec.id, spec.size_bytes, now, spec.deadline);
        let mut sender = TcpSender::new(self.cfg.tcp, spec.id, spec.src, spec.dst, spec.size_bytes);
        let mut out = std::mem::take(&mut self.out_buf);
        sender.start(now, &mut out);
        self.senders[i as usize] = Some(sender);
        self.process_outputs(i, &mut out, now);
        self.out_buf = out;
    }

    fn on_timer(&mut self, flow: u32, now: SimTime) {
        let mut out = std::mem::take(&mut self.out_buf);
        if let Some(sender) = self.senders[flow as usize].as_mut() {
            sender.on_timer(now, &mut out);
        }
        self.process_outputs(flow, &mut out, now);
        self.out_buf = out;
    }

    fn on_lb_tick(&mut self, sw: u16, now: SimTime) {
        let slice = &self.ports[self.pmap.up_range(sw as usize)];
        let view = if self.has_failures {
            // Ticks have no destination, so they see the switch's local
            // uplink liveness rather than a reach row; an all-dead switch
            // falls back to the full view (nothing routes through it
            // anyway — see `lb_forward`).
            let mut mask = 0u64;
            for (i, p) in slice.iter().enumerate() {
                if !p.is_down() {
                    mask |= 1 << i;
                }
            }
            if mask == 0 {
                PortView::new(slice)
            } else {
                PortView::with_mask(slice, mask)
            }
        } else {
            PortView::new(slice)
        };
        let l = &mut self.lb_sws[sw as usize];
        l.lb.on_tick(view, now);
        self.lb_state_peak = self.lb_state_peak.max(l.lb.state_bytes());
        if sw == 0 {
            if let Some(qth) = l.lb.q_threshold() {
                // Saturate "infinite" to a plottable sentinel.
                let v = if qth == u64::MAX {
                    f64::INFINITY
                } else {
                    qth as f64
                };
                self.qth_series.push((now.as_secs_f64(), v));
            }
        }
        if let Some(iv) = l.lb.tick_interval() {
            let next = now + iv;
            if next <= self.cfg.horizon {
                push_ev(&mut self.q, next, Event::LbTick { sw });
                self.misc_pending += 1;
            }
        }
    }

    /// Apply a sender's outputs: transmit packets from its host NIC, arm
    /// timers.
    fn process_outputs(&mut self, flow: u32, out: &mut Vec<SenderOutput>, now: SimTime) {
        let src = self.flows[flow as usize].src;
        for o in out.drain(..) {
            match o {
                SenderOutput::Send(pkt) => {
                    self.audit.emitted(&pkt);
                    self.enqueue(self.pmap.host_nic(src.0), pkt, now);
                }
                SenderOutput::ArmTimer { deadline } => {
                    push_ev(&mut self.q, deadline.max(now), Event::Timer { flow });
                    self.timers_live += 1;
                }
                SenderOutput::Finished => {
                    // Sender-side completion; FCT is recorded at the
                    // receiver when the last byte arrives.
                }
            }
        }
    }

    /// Record leaf-0's uplink occupancy and re-arm the sampler.
    fn on_queue_sample(&mut self, now: SimTime) {
        let lens: Vec<u32> = self.ports[self.pmap.up_range(0)]
            .iter()
            .map(|p| p.len_pkts() as u32)
            .collect();
        self.queue_series.push((now.as_secs_f64(), lens));
        let next = now + self.cfg.series_bucket;
        if next <= self.cfg.horizon {
            push_ev(&mut self.q, next, Event::QueueSample);
            self.misc_pending += 1;
        }
    }

    /// Apply a configured mid-run link change to both directions of the
    /// targeted uplink pair.
    fn on_link_change(&mut self, i: usize, now: SimTime) {
        let (up, down) = self.apply_link_change(i);
        if self.fluid.is_some() {
            self.fluid_link_update(up, down, now);
        }
    }

    /// The state mutation of a link change — everything except the fluid
    /// tier's rerating. Factored out so the sharded coordinator can mirror
    /// the change into every replica (all replicas read link physics on
    /// their own ports at build and per-event). Returns the port pair.
    fn apply_link_change(&mut self, i: usize) -> (PortId, PortId) {
        let ev = self.cfg.link_events[i];
        let change = |port: &mut OutPort| {
            let mut l = port.link();
            l.bytes_per_sec = ((l.bytes_per_sec as f64) * ev.bw_factor).max(1.0) as u64;
            l.prop_delay = ev.new_prop_delay.unwrap_or(l.prop_delay) + ev.extra_delay;
            port.set_link(l);
        };
        let up = self
            .pmap
            .sw_up(ev.leaf.index() as u32, ev.spine.index() as u32);
        let down = self.pmap.rev[up as usize];
        change(&mut self.ports[up as usize]);
        change(&mut self.ports[down as usize]);
        if self.cfg.delivery == DeliveryKind::Pipelined {
            self.refit_pipe(up as usize);
            self.refit_pipe(down as usize);
        }
        (up, down)
    }

    /// Safety net behind the build-time schedule-aware pipe sizing: after
    /// a link change, make sure the port's delivery pipe can still hold
    /// its worst-case in-flight count. Build sizing replays the whole
    /// schedule, so this normally never grows; if it ever does, the
    /// growth happens deterministically at the event itself and is
    /// measured out of the steady-state allocation gate (the audit
    /// invariant covers the per-packet paths, not a sanctioned
    /// reconfiguration).
    fn refit_pipe(&mut self, pi: usize) {
        let min_wire = self.cfg.tcp.header_bytes.max(1) as u64;
        let tx = self.ports[pi].tx_time(min_wire).as_nanos().max(1);
        let prop = self.ports[pi].link().prop_delay.as_nanos();
        let needed = ((prop / tx + 2).min(4096)) as usize;
        let pipe = &mut self.pipes[pi];
        if pipe.capacity() < needed {
            let before = alloc_audit::counters();
            let len = pipe.len();
            pipe.reserve(needed - len);
            if let Some(base) = self.alloc_at_warmup.as_mut() {
                // Shift the warmup baseline forward by the resize delta so
                // the audited window excludes this growth.
                let d = before.delta(alloc_audit::counters());
                base.allocs += d.allocs;
                base.reallocs += d.reallocs;
                base.deallocs += d.deallocs;
                base.bytes += d.bytes;
            }
        }
    }

    /// Apply the `i`-th configured failure/repair: flip the admin state
    /// of the target port(s) and their reverse directions, then
    /// reconverge routing by recomputing the reachability masks.
    fn on_failure(&mut self, i: usize, now: SimTime) {
        self.apply_failure(i);
        if self.fluid.is_some() {
            self.demote_failed(now);
        }
    }

    /// The state mutation of a failure/repair — admin flips plus routing
    /// reconvergence, without the hybrid-tier demotions. Factored out so
    /// the sharded coordinator can mirror it into every replica: each
    /// replica's `recompute_reach` reads the admin state of the *whole*
    /// fabric, so all replicas must agree on it.
    fn apply_failure(&mut self, i: usize) {
        use crate::config::{FailureAction, FailureTarget};
        let ev = self.cfg.failure_events[i];
        let down = ev.action == FailureAction::Down;
        match ev.target {
            FailureTarget::Link { sw, up } => {
                let p = self.pmap.sw_up(sw.index() as u32, up.index() as u32);
                self.set_link_state(p, down);
            }
            FailureTarget::Switch { sw } => {
                let spans = self.pmap.sw[sw];
                for p in spans.up_base..spans.up_base + spans.n_up {
                    self.set_link_state(p, down);
                }
                for p in spans.down_base..spans.down_base + spans.n_down {
                    self.set_link_state(p, down);
                }
            }
        }
        self.recompute_reach();
    }

    /// Take one directed port and its reverse down (or back up). Queued
    /// and in-service packets drain normally; while down, new admissions
    /// drop at the port with ordinary accounting.
    fn set_link_state(&mut self, p: PortId, down: bool) {
        // Explicitly idempotent: a failure targeting an already-dead port
        // (duplicate schedule entries, or a switch failure overlapping a
        // dead link) is a deterministic no-op, never a second drain.
        for q in [p, self.pmap.rev[p as usize]] {
            if self.ports[q as usize].is_down() != down {
                self.ports[q as usize].set_down(down);
            }
        }
    }

    /// Brute-force recompute of the per-(LB switch, destination group)
    /// usable-uplink masks from port admin state. Runs only at failure
    /// events — never on the per-packet path — and writes into the
    /// preallocated `reach` table (no allocation, so a failure inside an
    /// allocation-audit window stays clean).
    fn recompute_reach(&mut self) {
        let mut reach = std::mem::take(&mut self.reach);
        let ng = self.n_groups;
        let pmap = &self.pmap;
        let ports = &self.ports;
        let up_ok = |s: u32, u: u32| !ports[pmap.sw_up(s, u) as usize].is_down();
        let down_ok = |s: u32, d: u32| !ports[pmap.sw_down(s, d) as usize].is_down();
        match pmap.plan {
            PlanKind::LeafSpine {
                n_leaves, n_spines, ..
            } => {
                for l in 0..n_leaves {
                    for d in 0..n_leaves {
                        let mut m = 0u64;
                        for sp in 0..n_spines {
                            if up_ok(l, sp) && down_ok(n_leaves + sp, d) {
                                m |= 1 << sp;
                            }
                        }
                        reach[l as usize * ng + d as usize] = m;
                    }
                }
            }
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                let full = PortView::full_mask(half as usize);
                // Phase 1 — aggs: for agg (p, j) and a destination edge in
                // another pod, uplink m works iff agg->core(j,m) and
                // core(j,m)->pod(dst) are both live. Intra-pod traffic
                // descends at the agg, so its row stays full (unused).
                for a in 0..n_aggs {
                    let (p, j) = (a / half, a % half);
                    let g = n_edges + a;
                    for d in 0..n_edges {
                        let pd = d / half;
                        let m = if pd == p {
                            full
                        } else {
                            let mut mm = 0u64;
                            for mi in 0..half {
                                let core = n_edges + n_aggs + j * half + mi;
                                if up_ok(g, mi) && down_ok(core, pd) {
                                    mm |= 1 << mi;
                                }
                            }
                            mm
                        };
                        reach[g as usize * ng + d as usize] = m;
                    }
                }
                // Phase 2 — edges, composing over the aggs' rows: uplink j
                // works iff edge->agg(pe, j) is live and agg(pe, j) can
                // complete the path (straight down for intra-pod, through
                // some core and agg(pd, j)'s downlink otherwise).
                for e in 0..n_edges {
                    let pe = e / half;
                    for d in 0..n_edges {
                        if d == e {
                            reach[e as usize * ng + d as usize] = full;
                            continue;
                        }
                        let pd = d / half;
                        let mut m = 0u64;
                        for j in 0..half {
                            if !up_ok(e, j) {
                                continue;
                            }
                            let agg_src = n_edges + pe * half + j;
                            let ok = if pd == pe {
                                down_ok(agg_src, d % half)
                            } else {
                                reach[agg_src as usize * ng + d as usize] != 0
                                    && down_ok(n_edges + pd * half + j, d % half)
                            };
                            if ok {
                                m |= 1 << j;
                            }
                        }
                        reach[e as usize * ng + d as usize] = m;
                    }
                }
            }
        }
        self.reach = reach;
    }

    // ---- forwarding ------------------------------------------------------

    fn enqueue(&mut self, p: PortId, pkt: Packet, now: SimTime) {
        if self.traced[pkt.flow.index()] {
            self.trace(p, &pkt, now);
        }
        self.audit.enqueue_attempt(&pkt);
        match self.ports[p as usize].enqueue(pkt, now) {
            Enqueued::Queued { was_idle, .. } => {
                self.audit.enqueued(&pkt);
                if was_idle {
                    self.start_tx(p, now);
                }
            }
            Enqueued::Dropped => {
                // Loss is recovered by the transport; counters live in the
                // port stats.
                self.audit.dropped(&pkt);
            }
        }
    }

    fn start_tx(&mut self, p: PortId, now: SimTime) {
        let pi = p as usize;
        let pkt = *self.ports[pi]
            .start_service()
            .expect("start_tx on an empty port");
        // The port memoized this packet's serialization time when service
        // started — one division per packet-hop instead of three.
        let tx_time = self.ports[pi].service_tx_time();
        // Leaf-uplink queueing delay of short-flow data (Fig. 8(b)) — the
        // queues the load balancer controls; NIC and downlink waits are the
        // same for every scheme and would only dilute the comparison.
        if self.pmap.is_lb_up(p) && pkt.kind == PktKind::Data && self.is_short[pkt.flow.index()] {
            let w = now.saturating_sub(pkt.enqueued_at).as_secs_f64();
            self.short_qdelay.push(w);
            self.short_qdelay_series.add(now, w);
        }
        self.audit.tx_started(&pkt);
        push_ev(&mut self.q, now + tx_time, Event::TxDone(p));
    }

    fn on_tx_done(&mut self, p: PortId, now: SimTime) {
        let pi = p as usize;
        let (pkt, more) = self.ports[pi].finish_service();
        self.audit.tx_done(&pkt);
        let prop = self.ports[pi].link().prop_delay;
        if more {
            self.start_tx(p, now);
        }
        // FIFO wire: never arrive before a packet that entered the link
        // earlier (matters only after a prop-delay-shrinking LinkEvent).
        let at = (now + prop).max(self.link_fifo[pi]);
        self.link_fifo[pi] = at;
        if let Some(ctx) = self.shard.as_mut() {
            if ctx.map.arrive_owner[pi] != ctx.id {
                // The next hop lives in another shard: hand the packet
                // off as a message; the owner schedules the `Arrive`
                // (see [`Net::inject_arrival`]). Always per-packet, even
                // in pipelined mode — the shared ordering class keeps the
                // merged schedule identical.
                ctx.outbox.push(sharded::XMsg { port: p, at, pkt });
                return;
            }
        }
        match self.cfg.delivery {
            DeliveryKind::Pipelined => {
                // Reserve the seq a per-packet `Arrive` push would have
                // taken right here, so the FEL's (time, seq) order — and
                // every downstream observable — matches the reference
                // mode bit-for-bit. Only the pipe head keeps a live FEL
                // event; successors chain when it pops.
                let seq = self.q.reserve_seq();
                let pipe = &mut self.pipes[pi];
                if pipe.is_empty() {
                    self.q
                        .push_reserved_keyed(at, key_of(2, p), seq, Event::Deliver(p));
                }
                pipe.push_back(PipeEntry { at, seq, pkt });
            }
            DeliveryKind::PerPacket => {
                let slot = self.arena.insert(pkt);
                self.q
                    .push_keyed(at, key_of(2, p), Event::Arrive { port: p, slot });
            }
        }
    }

    /// Pipelined delivery: the head of `p`'s pipe arrives now. Re-arm the
    /// chain for the next in-flight packet, then hand the packet to the
    /// arrival logic.
    fn on_deliver(&mut self, p: PortId, now: SimTime) {
        let entry = self.pipes[p as usize]
            .pop_front()
            .expect("Deliver on an empty pipe");
        debug_assert_eq!(entry.at, now, "pipe head out of FIFO order");
        if let Some(front) = self.pipes[p as usize].front() {
            let (at, seq) = (front.at, front.seq);
            self.q
                .push_reserved_keyed(at, key_of(2, p), seq, Event::Deliver(p));
        }
        self.arrive_seen += 1;
        if self.cfg.fault_drop_nth == Some(self.arrive_seen) {
            // Injected driver bug (audit tests only): the packet vanishes
            // without any accounting layer hearing of it.
            return;
        }
        self.on_arrive(p, entry.pkt, now);
    }

    /// A packet finished crossing port `p`'s link.
    fn on_arrive(&mut self, p: PortId, pkt: Packet, now: SimTime) {
        self.audit.arrived(&pkt);
        match self.next_node[p as usize] {
            NodeRef::Host(h) => self.deliver_to_host(h, pkt, now),
            NodeRef::Switch(sw) => self.forward_at_switch(sw, pkt, now),
        }
    }

    /// Route `pkt` at switch `sw`: descend when the destination sits below
    /// this switch, otherwise hand the choice to the switch's balancer.
    fn forward_at_switch(&mut self, sw: u16, pkt: Packet, now: SimTime) {
        let s = sw as u32;
        let dst = pkt.dst.0;
        match self.pmap.plan {
            PlanKind::LeafSpine { n_leaves, hpl, .. } => {
                let dl = dst / hpl;
                if s >= n_leaves {
                    // Spine: one downlink per leaf.
                    self.enqueue(self.pmap.sw_down(s, dl), pkt, now);
                } else if dl == s {
                    // Downstream (or intra-rack): single path to the host.
                    self.enqueue(self.pmap.sw_down(s, dst % hpl), pkt, now);
                } else {
                    self.lb_forward(sw, dl, pkt, now);
                }
            }
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                let de = dst / half;
                if s < n_edges {
                    if de == s {
                        self.enqueue(self.pmap.sw_down(s, dst % half), pkt, now);
                    } else {
                        self.lb_forward(sw, de, pkt, now);
                    }
                } else if s < n_edges + n_aggs {
                    let a = s - n_edges;
                    if de / half == a / half {
                        // Same pod: straight down to the destination edge.
                        self.enqueue(self.pmap.sw_down(s, de % half), pkt, now);
                    } else {
                        self.lb_forward(sw, de, pkt, now);
                    }
                } else {
                    // Core: one downlink per pod.
                    self.enqueue(self.pmap.sw_down(s, de / half), pkt, now);
                }
            }
        }
    }

    /// One balancer decision at LB switch `sw` toward destination group
    /// (leaf/edge) `group`: build the (failure-aware) port view and ask
    /// the switch's balancer. Factored out of [`Net::lb_forward`] so
    /// hybrid migration routes fluid tails through the exact same hooks —
    /// TLB/DiffFlow see a migrated flow like any other.
    fn choose_up(&mut self, sw: u16, group: u32, pkt: &Packet, now: SimTime) -> u32 {
        self.lb_decisions += 1;
        let range = self.pmap.up_range(sw as usize);
        let slice = &self.ports[range];
        let view = if self.has_failures {
            let m = self.reach[sw as usize * self.n_groups + group as usize];
            if m & PortView::full_mask(slice.len()) == 0 {
                // Destination unreachable from here: fall back to the full
                // view so the packet drops at a dead port with ordinary
                // accounting instead of vanishing untracked.
                PortView::new(slice)
            } else {
                PortView::with_mask(slice, m)
            }
        } else {
            PortView::new(slice)
        };
        let l = &mut self.lb_sws[sw as usize];
        l.lb.choose_uplink(pkt, view, now, &mut l.rng) as u32
    }

    /// LB switch `sw`'s balancer picks among its uplinks toward
    /// destination group (leaf/edge) `group`.
    fn lb_forward(&mut self, sw: u16, group: u32, pkt: Packet, now: SimTime) {
        let up = self.choose_up(sw, group, &pkt, now);
        let range = self.pmap.up_range(sw as usize);
        debug_assert!((up as usize) < range.len());
        // Fig. 3(a): queue length experienced at enqueue.
        if pkt.kind == PktKind::Data {
            let qlen = self.ports[range.start + up as usize].len_pkts() as f64;
            if self.is_short[pkt.flow.index()] {
                self.short_qlen.push(qlen);
            } else {
                self.long_qlen.push(qlen);
            }
        }
        self.enqueue(self.pmap.sw_up(sw as u32, up), pkt, now);
    }

    fn trace(&mut self, p: PortId, pkt: &Packet, now: SimTime) {
        use crate::report::{Hop, TraceEvent};
        let hop = match (self.pmap.decode(p), self.pmap.plan) {
            (PortRef::HostNic(h), _) => Hop::HostNic { host: h },
            // Leaf-spine keeps its historical hop names.
            (PortRef::Up { sw, up }, PlanKind::LeafSpine { .. }) => Hop::LeafUplink {
                leaf: sw,
                spine: up,
            },
            (PortRef::Down { sw, down }, PlanKind::LeafSpine { n_leaves, .. }) => {
                if (sw as u32) < n_leaves {
                    Hop::LeafDownlink {
                        leaf: sw,
                        slot: down,
                    }
                } else {
                    Hop::SpineDownlink {
                        spine: sw - n_leaves as u16,
                        leaf: down,
                    }
                }
            }
            (PortRef::Up { sw, up }, PlanKind::FatTree { .. }) => Hop::FabricUp { sw, up },
            (PortRef::Down { sw, down }, PlanKind::FatTree { .. }) => Hop::FabricDown { sw, down },
        };
        if self.shard.is_some() {
            self.trace_keys.push(self.cur_key);
        }
        self.traces.push(TraceEvent {
            flow: pkt.flow,
            kind: pkt.kind,
            seq: pkt.seq,
            at: now,
            hop,
        });
    }

    fn deliver_to_host(&mut self, h: u32, pkt: Packet, now: SimTime) {
        debug_assert_eq!(pkt.dst.0, h, "packet delivered to the wrong host");
        self.audit.delivered(&pkt);
        if self.traced[pkt.flow.index()] {
            if self.shard.is_some() {
                self.trace_keys.push(self.cur_key);
            }
            self.traces.push(crate::report::TraceEvent {
                flow: pkt.flow,
                kind: pkt.kind,
                seq: pkt.seq,
                at: now,
                hop: crate::report::Hop::Delivered { host: h },
            });
        }
        let fi = pkt.flow.index();
        match pkt.kind {
            PktKind::Syn => {
                if self.receivers[fi].is_none() {
                    // New connection: draw the out-of-order buffer from the
                    // pool (recycled from a torn-down flow in steady state).
                    let buf = self.ooo_pool.get(self.cfg.tcp.rwnd_segs() as usize);
                    self.receivers[fi] =
                        Some(TcpReceiver::with_ooo_buf(pkt.flow, pkt.dst, pkt.src, buf));
                }
                let receiver = self.receivers[fi].as_mut().expect("just inserted");
                let synack = receiver.on_syn(now);
                self.audit.emitted(&synack);
                self.enqueue(self.pmap.host_nic(h), synack, now);
            }
            PktKind::Data => {
                let is_short = self.is_short[fi];
                let Some(receiver) = self.receivers[fi].as_mut() else {
                    // Data before SYN can't happen; drop defensively.
                    debug_assert!(false, "data for unknown receiver");
                    return;
                };
                let before = receiver.delivered_segs();
                let ooo_before = receiver.stats().out_of_order;
                let ack = receiver.on_data(&pkt, now);
                let after = receiver.delivered_segs();
                let was_ooo = receiver.stats().out_of_order > ooo_before;

                // Reordering time series per class.
                if is_short {
                    self.short_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                } else {
                    self.long_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                    if after > before {
                        let bytes = (after - before) as f64 * self.cfg.tcp.mss as f64;
                        self.long_goodput.add(now, bytes);
                    }
                }

                // Completion: every packet-path segment delivered in
                // order and — under hybrid fidelity — no fluid tail still
                // in flight.
                if after >= self.total_segs[fi] && !self.fluid_pend[fi] && !self.completed[fi] {
                    self.complete(fi, now);
                }
                self.audit.emitted(&ack);
                self.enqueue(self.pmap.host_nic(h), ack, now);
            }
            PktKind::SynAck | PktKind::Ack => {
                let mut out = std::mem::take(&mut self.out_buf);
                if let Some(sender) = self.senders[fi].as_mut() {
                    sender.on_packet(&pkt, now, &mut out);
                }
                self.process_outputs(pkt.flow.0, &mut out, now);
                self.out_buf = out;
                if self.fluid.is_some() {
                    self.maybe_migrate(fi, now);
                }
            }
            PktKind::Fin => {
                // Connection teardown carries no data; flow counting
                // happened at the leaf switch. Recycle the receiver's
                // out-of-order buffer: the sender only emits a FIN once
                // every data segment was cumulatively ACKed, so the buffer
                // is empty here. Idempotent on retransmitted/duplicate FINs
                // (a reclaimed receiver hands back a capacity-0 Vec, which
                // the pool ignores).
                if let Some(r) = self.receivers[fi].as_mut() {
                    self.ooo_pool.put(r.take_ooo_buf());
                }
            }
        }
    }

    /// A flow delivered its last byte — the packet-path prefix at the
    /// receiver and, under hybrid fidelity, the fluid tail: record the
    /// FCT and launch any chained successor.
    fn complete(&mut self, fi: usize, now: SimTime) {
        debug_assert!(!self.completed[fi]);
        if self.cfg.audit && self.migrated[fi] {
            // Byte conservation across the migration seam: the packet
            // path's segment plan (shrunk at migration, possibly regrown
            // at demotion) plus what the fluid tier delivered must
            // reconstruct the flow exactly.
            let sender_bytes = self.senders[fi]
                .as_ref()
                .map_or(0, |s| s.payload_bytes_total());
            assert_eq!(
                sender_bytes + self.fluid_credit[fi],
                self.flows[fi].size_bytes,
                "flow {fi}: packet-path bytes + fluid credit disagree with the flow size"
            );
        }
        self.completed[fi] = true;
        self.n_completed += 1;
        self.fct.flow_completed(self.flows[fi].id, now);
        // Closed-loop chain: launch the successor back-to-back.
        if let Some(nf) = self.next_flow[fi] {
            push_ev(&mut self.q, now, Event::FlowStart(nf));
            self.starts_pending += 1;
        }
    }

    // ---- hybrid fidelity (fluid long-flow tails) -------------------------

    /// Consider moving flow `fi`'s unsent tail onto the fluid tier.
    /// Called after every processed ACK under hybrid fidelity; fires at
    /// the first ACK where the cumulatively acknowledged bytes cross the
    /// short/long threshold (the same 100 KB reclassification boundary
    /// TLB itself uses) while unsent data remains. Handshakes, short
    /// flows, retransmissions of the already emitted prefix, and all
    /// queue/ECN dynamics stay packet-level. A flow demoted by a failure
    /// re-qualifies here and migrates again once an ACK finds unsent data
    /// and a fully-up path — the `in_fluid`/`snd_nxt` gates keep a flow
    /// from double-joining or rejoining after its tail completed.
    fn maybe_migrate(&mut self, fi: usize, now: SimTime) {
        if self.is_short[fi] || self.completed[fi] {
            return;
        }
        let mss = self.cfg.tcp.mss as u64;
        let Some(sender) = self.senders[fi].as_ref() else {
            return;
        };
        if !sender.is_established()
            || sender.in_fluid()
            || (sender.acked_segs() as u64) * mss < self.cfg.short_threshold
            || sender.snd_nxt() >= sender.total_segs()
        {
            return;
        }
        // Route the tail once, through the same balancer hooks the packet
        // path uses. If any chosen hop is administratively down, stay
        // packet-level for now and let a later ACK retry — drops at the
        // dead port would only round-trip through retransmission anyway.
        let mut path = [0u32; MAX_FLUID_PATH];
        let len = self.fluid_route(fi, now, &mut path);
        if path[..len]
            .iter()
            .any(|&l| self.ports[l as usize].is_down())
        {
            return;
        }
        let sender = self.senders[fi].as_mut().expect("checked above");
        let tail = sender.hybrid_truncate();
        self.total_segs[fi] = sender.total_segs();
        self.migrated[fi] = true;
        self.fluid_pend[fi] = true;
        self.fluid_tail_bytes[fi] = tail;
        self.fluid_migrations += 1;
        self.fluid_bytes += tail;
        self.fluid
            .as_mut()
            .expect("hybrid path without FluidNet")
            .join(fi as u32, &path[..len], tail as f64, now.as_secs_f64());
        self.flush_fluid_changes(now);
    }

    /// The directed links flow `fi`'s fluid tail would occupy, chosen via
    /// [`Net::choose_up`] at each LB switch on the way — so the balancers
    /// count and track the migrated flow exactly like a packet-level one.
    /// Writes into `path` and returns the path length (1–6 links: NIC,
    /// up to two upward hops, and the downward hops to the host).
    fn fluid_route(&mut self, fi: usize, now: SimTime, path: &mut [u32; MAX_FLUID_PATH]) -> usize {
        let spec = self.flows[fi];
        let (src, dst) = (spec.src.0, spec.dst.0);
        // A representative data segment for the balancer hooks (flow and
        // flowlet tables key on the flow id).
        let probe = Packet::data(
            spec.id,
            spec.src,
            spec.dst,
            self.senders[fi].as_ref().map_or(0, |s| s.snd_nxt()),
            self.cfg.tcp.mss,
            self.cfg.tcp.header_bytes,
            now,
        );
        let mut len = 0;
        path[len] = self.pmap.host_nic(src);
        len += 1;
        match self.pmap.plan {
            PlanKind::LeafSpine { n_leaves, hpl, .. } => {
                let (sl, dl) = (src / hpl, dst / hpl);
                if sl == dl {
                    path[len] = self.pmap.sw_down(sl, dst % hpl);
                    len += 1;
                } else {
                    let up = self.choose_up(sl as u16, dl, &probe, now);
                    path[len] = self.pmap.sw_up(sl, up);
                    len += 1;
                    path[len] = self.pmap.sw_down(n_leaves + up, dl);
                    len += 1;
                    path[len] = self.pmap.sw_down(dl, dst % hpl);
                    len += 1;
                }
            }
            PlanKind::FatTree {
                half,
                n_edges,
                n_aggs,
            } => {
                let (se, de) = (src / half, dst / half);
                if se == de {
                    path[len] = self.pmap.sw_down(se, dst % half);
                    len += 1;
                } else {
                    let j = self.choose_up(se as u16, de, &probe, now);
                    path[len] = self.pmap.sw_up(se, j);
                    len += 1;
                    let agg_src = n_edges + (se / half) * half + j;
                    if de / half == se / half {
                        // Same pod: the agg descends straight to the edge.
                        path[len] = self.pmap.sw_down(agg_src, de % half);
                        len += 1;
                    } else {
                        let m = self.choose_up(agg_src as u16, de, &probe, now);
                        path[len] = self.pmap.sw_up(agg_src, m);
                        len += 1;
                        let core = n_edges + n_aggs + j * half + m;
                        path[len] = self.pmap.sw_down(core, de / half);
                        len += 1;
                        let agg_dst = n_edges + (de / half) * half + j;
                        path[len] = self.pmap.sw_down(agg_dst, de % half);
                        len += 1;
                    }
                    path[len] = self.pmap.sw_down(de, dst % half);
                    len += 1;
                }
            }
        }
        len
    }

    /// Propagate a mid-run link-quality change into the fluid tier:
    /// refresh both directions' capacities and rerate every fluid flow
    /// crossing either of them.
    fn fluid_link_update(&mut self, up: PortId, down: PortId, now: SimTime) {
        let frac =
            self.cfg.tcp.mss as f64 / (self.cfg.tcp.mss as f64 + self.cfg.tcp.header_bytes as f64);
        let now_s = now.as_secs_f64();
        let fluid = self.fluid.as_mut().expect("hybrid path without FluidNet");
        for p in [up, down] {
            let cap = self.ports[p as usize].link().bytes_per_sec as f64 * frac;
            fluid.set_capacity(p, cap);
            fluid.touch_link(p, now_s);
        }
        self.flush_fluid_changes(now);
    }

    /// Drain the fluid model's rate changes into `FluidDone` events. Each
    /// rerate projects a new completion time; older projections for the
    /// same flow go stale via the generation counter. The ceil keeps the
    /// integer event time at-or-after the real completion instant, so the
    /// pop-side residual is ≤ one rate·nanosecond of bytes.
    fn flush_fluid_changes(&mut self, now: SimTime) {
        let mut changes = std::mem::take(&mut self.rate_changes);
        if let Some(fluid) = self.fluid.as_mut() {
            fluid.take_changes(&mut changes);
        }
        for ch in changes.drain(..) {
            let at = SimTime::from_nanos((ch.done_at_s * 1e9).ceil() as u64).max(now);
            push_ev(
                &mut self.q,
                at,
                Event::FluidDone {
                    flow: ch.flow,
                    gen: ch.gen,
                },
            );
            self.fluid_events_pending += 1;
        }
        self.rate_changes = changes;
    }

    /// A fluid tail's projected completion time arrived. Stale unless the
    /// flow is still in the fluid tier at the same generation (reroutes,
    /// demotions and rerates all bump it).
    fn on_fluid_done(&mut self, flow: u32, gen: u32, now: SimTime) {
        let Some(fluid) = self.fluid.as_mut() else {
            return;
        };
        if !fluid.is_active(flow) || fluid.gen(flow) != gen {
            return;
        }
        let fi = flow as usize;
        let rem = fluid.leave(flow, now.as_secs_f64());
        // The event time was ceiled past the projected instant, so at most
        // one rate·nanosecond of bytes can remain; with caps ≤ 100 Gb/s
        // that is well under a byte.
        debug_assert!(rem < 16.0, "FluidDone fired with {rem} bytes left");
        self.flush_fluid_changes(now);
        self.fluid_pend[fi] = false;
        self.fluid_credit[fi] += self.fluid_tail_bytes[fi];
        let mut out = std::mem::take(&mut self.out_buf);
        if let Some(sender) = self.senders[fi].as_mut() {
            sender.fluid_done(now, &mut out);
        }
        self.process_outputs(flow, &mut out, now);
        self.out_buf = out;
        // If the receiver already delivered the whole packet prefix, the
        // tail was the last outstanding byte range — complete here (no
        // further data arrivals would re-run the receiver-side check).
        let prefix_done = self.receivers[fi]
            .as_ref()
            .is_some_and(|r| r.delivered_segs() >= self.total_segs[fi]);
        if prefix_done && !self.completed[fi] {
            self.complete(fi, now);
        }
    }

    /// After a failure reconverged routing: demote every fluid tail whose
    /// path lost a link back to the packet path. The sender's segment plan
    /// regrows by the undelivered remainder and resumes ordinary
    /// (re)transmission — the reroute happens at packet fidelity, exactly
    /// like a never-migrated flow. Once a later ACK re-qualifies the flow
    /// over a healthy path, [`Net::maybe_migrate`] moves the tail back to
    /// the fluid tier; `FluidDone`s left over from this residency are
    /// inert because [`tlb_net::FluidNet::leave`] bumped the generation.
    fn demote_failed(&mut self, now: SimTime) {
        let mut victims = std::mem::take(&mut self.demote_scratch);
        victims.clear();
        if let Some(fluid) = self.fluid.as_ref() {
            let ports = &self.ports;
            fluid.for_each_active(|f, path| {
                if path.iter().any(|&l| ports[l as usize].is_down()) {
                    victims.push(f);
                }
            });
        }
        let now_s = now.as_secs_f64();
        for &f in &victims {
            let fi = f as usize;
            let rem = self
                .fluid
                .as_mut()
                .expect("demotion without FluidNet")
                .leave(f, now_s);
            // Round the fluid remainder up to whole bytes for the packet
            // path; the clamp guards the f64 bookkeeping's edges (a tail
            // is ≥ 1 byte by construction).
            let rem_bytes = (rem.ceil() as u64).clamp(1, self.fluid_tail_bytes[fi]);
            self.fluid_pend[fi] = false;
            self.fluid_credit[fi] += self.fluid_tail_bytes[fi] - rem_bytes;
            self.fluid_demotions += 1;
            let mut out = std::mem::take(&mut self.out_buf);
            let add = self.senders[fi]
                .as_mut()
                .expect("demoted flow without a sender")
                .fluid_demote(rem_bytes, now, &mut out);
            self.total_segs[fi] += add;
            self.process_outputs(f, &mut out, now);
            self.out_buf = out;
        }
        self.demote_scratch = victims;
        self.flush_fluid_changes(now);
    }

    // ---- sharded-engine plumbing (see `sharded`) ---------------------

    /// Receive a cross-shard handoff: park the packet and schedule its
    /// arrival, exactly as the per-packet delivery path would have on the
    /// sending side. `Arrive` and `Deliver` share ordering class 2 on the
    /// transmitting port, so the merged `(time, key, seq)` schedule is
    /// unchanged relative to a serial run in either delivery mode.
    fn inject_arrival(&mut self, port: PortId, at: SimTime, pkt: Packet) {
        debug_assert!(self.shard.is_some());
        let slot = self.arena.insert(pkt);
        self.q
            .push_keyed(at, key_of(2, port), Event::Arrive { port, slot });
    }

    /// Fold one shard replica into this one (the coordinator folds every
    /// shard into shard 0, then calls [`Net::into_report`] on the result).
    /// Entities move wholesale to their owner; counters add; peaks max;
    /// the clocks join on the latest. Per the ownership partition every
    /// moved slot on `self` is still in its pristine build state, so the
    /// merged `Net` is field-for-field what a serial run would have
    /// produced — except for FEL-occupancy telemetry (`fel_depth`,
    /// `fel_bound_peak`), whose per-shard sampling schedules differ from
    /// the serial one (deterministically, but not identically).
    fn absorb_shard(&mut self, mut other: Net<'a>) {
        let octx = other.shard.take().expect("absorbing a serial net");
        let oid = octx.id;
        let map = &octx.map;
        debug_assert!(octx.outbox.is_empty(), "unrouted cross-shard messages");
        for pi in 0..self.ports.len() {
            if map.port_owner[pi] == oid {
                std::mem::swap(&mut self.ports[pi], &mut other.ports[pi]);
                std::mem::swap(&mut self.pipes[pi], &mut other.pipes[pi]);
                self.link_fifo[pi] = other.link_fifo[pi];
            }
        }
        for l in 0..self.lb_sws.len() {
            if map.sw_owner[l] == oid {
                std::mem::swap(&mut self.lb_sws[l], &mut other.lb_sws[l]);
            }
        }
        for i in 0..self.flows.len() {
            if other.senders[i].is_some() {
                debug_assert!(self.senders[i].is_none());
                self.senders[i] = other.senders[i].take();
            }
            if other.receivers[i].is_some() {
                debug_assert!(self.receivers[i].is_none());
                self.receivers[i] = other.receivers[i].take();
            }
            if other.completed[i] {
                debug_assert!(!self.completed[i]);
                self.completed[i] = true;
            }
        }
        self.n_completed += other.n_completed;
        self.events += other.events;
        self.lb_decisions += other.lb_decisions;
        self.arrive_seen += other.arrive_seen;
        self.lb_state_peak = self.lb_state_peak.max(other.lb_state_peak);
        self.fel_bound_peak = self.fel_bound_peak.max(other.fel_bound_peak);
        self.fct.absorb(std::mem::take(&mut other.fct));
        self.short_qlen.merge(&other.short_qlen);
        self.long_qlen.merge(&other.long_qlen);
        self.short_qdelay.merge(&other.short_qdelay);
        self.fel_depth.merge(&other.fel_depth);
        self.short_qdelay_series.absorb(&other.short_qdelay_series);
        self.short_reorder.absorb(&other.short_reorder);
        self.long_reorder.absorb(&other.long_reorder);
        self.long_goodput.absorb(&other.long_goodput);
        // Leaf/edge 0 (and with it the qth/queue samplers) is always
        // shard 0's.
        debug_assert!(other.qth_series.is_empty());
        debug_assert!(other.queue_series.is_empty());
        self.traces.append(&mut other.traces);
        self.trace_keys.append(&mut other.trace_keys);
        self.audit.absorb(&other.audit);
        self.q
            .absorb_monotonicity_violations(other.q.monotonicity_violations());
        // Residual in-flight packets (end-of-run leftovers in the other
        // shard's FEL) feed the merged ledger; queued/in-service residuals
        // ride the moved ports and pipe residuals the moved pipes, both
        // scanned later by `finish_audit`.
        let end = other.q.now();
        for (_, ev) in other.q.drain_unordered() {
            if let Event::Arrive { slot, .. } = ev {
                self.audit.residual_propagating(&other.arena.take(slot));
            }
        }
        self.q.join_clock(end);
    }

    /// After every shard is folded in: stable-sort the concatenated trace
    /// rows by `(at, key)`, reconstructing serial emission order (rows
    /// from one event keep their relative order; events are totally
    /// ordered by `(time, key)` since every key has a single origin).
    fn finish_sharded_traces(&mut self) {
        let keys = std::mem::take(&mut self.trace_keys);
        debug_assert_eq!(keys.len(), self.traces.len());
        let mut rows: Vec<(crate::report::TraceEvent, u32)> =
            self.traces.drain(..).zip(keys).collect();
        rows.sort_by_key(|(t, k)| (t.at, *k));
        self.traces.extend(rows.into_iter().map(|(t, _)| t));
    }

    // ---- reporting ---------------------------------------------------

    fn into_report(mut self, wall: std::time::Duration) -> RunReport {
        // The clock can only pass the horizon through a bug (the run loop
        // stops *before* popping any later event); clamp as a backstop so a
        // regression can't inflate every duration-derived rate.
        let sim_end = self.q.now().min(self.cfg.horizon);
        let dur = sim_end.as_secs_f64().max(1e-9);

        // The reusable sender-output buffer was sized from the state
        // machine's worst case (`TcpConfig::max_outputs_per_call`); a
        // regrowth means that bound went stale.
        debug_assert_eq!(
            self.out_buf.capacity(),
            self.cfg.tcp.max_outputs_per_call(),
            "out_buf regrew past the derived per-call output bound"
        );

        let audit = self.finish_audit();

        let mut short = ClassCounters::default();
        let mut long = ClassCounters::default();
        for (i, spec) in self.flows.iter().enumerate() {
            let c = if spec.size_bytes < self.cfg.short_threshold {
                &mut short
            } else {
                &mut long
            };
            if let Some(s) = &self.senders[i] {
                let st = s.stats();
                c.data_sent += st.data_sent;
                c.retransmits += st.retransmits;
                c.timeouts += st.timeouts;
                c.fast_retransmits += st.fast_retransmits;
                c.dup_acks += st.dup_acks;
            }
            if let Some(r) = &self.receivers[i] {
                let st = r.stats();
                c.data_received += st.total_data;
                c.out_of_order += st.out_of_order;
            }
        }

        let uplink_utilization = (0..self.pmap.n_lb as usize)
            .map(|l| {
                self.ports[self.pmap.up_range(l)]
                    .iter()
                    .map(|p| p.stats().busy.as_secs_f64() / dur)
                    .collect()
            })
            .collect();

        let mut drops = 0;
        let mut marks = 0;
        for p in &self.ports {
            drops += p.stats().dropped;
            marks += p.stats().marked;
        }

        let lb_state_final = self
            .lb_sws
            .iter()
            .map(|l| l.lb.state_bytes())
            .max()
            .unwrap_or(0);

        // Long-flow reroute total: present iff the scheme reports one
        // (TLB); `None` keeps non-TLB reports unambiguous.
        let tlb_long_reroutes = self
            .lb_sws
            .iter()
            .filter_map(|l| l.lb.long_reroutes())
            .fold(None, |acc: Option<u64>, n| Some(acc.unwrap_or(0) + n));

        // Failure-forced reroute total, same shape: present iff the scheme
        // distinguishes forced moves from voluntary ones.
        let forced_reroutes = self
            .lb_sws
            .iter()
            .filter_map(|l| l.lb.forced_reroutes())
            .fold(None, |acc: Option<u64>, n| Some(acc.unwrap_or(0) + n));

        RunReport {
            scheme: self.cfg.scheme.name().to_string(),
            total_flows: self.flows.len(),
            completed: self.n_completed,
            fct_short: self.fct.summary(FlowClass::Short),
            fct_long: self.fct.summary(FlowClass::Long),
            fct: self.fct,
            short,
            long,
            short_qlen: self.short_qlen,
            long_qlen: self.long_qlen,
            short_qdelay: self.short_qdelay,
            fel_depth: self.fel_depth,
            fel_bound_peak: self.fel_bound_peak,
            short_reorder_series: self.short_reorder.means(),
            long_reorder_series: self.long_reorder.means(),
            long_goodput_series: self.long_goodput.rates(),
            short_qdelay_series: self.short_qdelay_series.means(),
            uplink_utilization,
            drops,
            marks,
            lb_state_bytes_peak: self.lb_state_peak.max(lb_state_final),
            qth_series: self.qth_series,
            traces: self.traces,
            queue_series: self.queue_series,
            lb_decisions: self.lb_decisions,
            fluid_migrations: self.fluid_migrations,
            fluid_demotions: self.fluid_demotions,
            fluid_bytes: self.fluid_bytes,
            tlb_long_reroutes,
            forced_reroutes,
            events: self.events,
            audit,
            alloc_audit: self.alloc_report,
            sim_end,
            wall,
            engine_workers: None,
            sharded_windows: 0,
        }
    }

    /// Close the packet-conservation ledger: feed it the end-of-run
    /// residuals (queued packets, pending serializations and propagations
    /// — the latter live in the FEL in per-packet mode and in the link
    /// pipes in pipelined mode), per-port accounting snapshots, the
    /// engine's clock counter, and each live sender's invariant check,
    /// then let it verify everything (see [`crate::audit`]). Drains the
    /// event queue; call only from [`Net::into_report`].
    fn finish_audit(&mut self) -> Option<crate::audit::AuditReport> {
        let mut ledger = std::mem::replace(&mut self.audit, AuditLedger::new(false));
        if !ledger.enabled() {
            return None;
        }

        let labels: Vec<String> = (0..self.ports.len() as u32)
            .map(|p| match (self.pmap.decode(p), self.pmap.plan) {
                (PortRef::HostNic(h), _) => format!("host{h}.nic"),
                // Leaf-spine keeps its historical labels (tests match them).
                (PortRef::Up { sw, up }, PlanKind::LeafSpine { .. }) => {
                    format!("leaf{sw}.up{up}")
                }
                (PortRef::Down { sw, down }, PlanKind::LeafSpine { n_leaves, .. }) => {
                    if (sw as u32) < n_leaves {
                        format!("leaf{sw}.down{down}")
                    } else {
                        format!("spine{}.down{down}", sw as u32 - n_leaves)
                    }
                }
                (PortRef::Up { sw, up }, PlanKind::FatTree { n_edges, .. }) => {
                    if (sw as u32) < n_edges {
                        format!("edge{sw}.up{up}")
                    } else {
                        format!("agg{}.up{up}", sw as u32 - n_edges)
                    }
                }
                (
                    PortRef::Down { sw, down },
                    PlanKind::FatTree {
                        n_edges, n_aggs, ..
                    },
                ) => {
                    let sw = sw as u32;
                    if sw < n_edges {
                        format!("edge{sw}.down{down}")
                    } else if sw < n_edges + n_aggs {
                        format!("agg{}.down{down}", sw - n_edges)
                    } else {
                        format!("core{}.down{down}", sw - n_edges - n_aggs)
                    }
                }
            })
            .collect();

        for p in &self.ports {
            for pkt in p.iter_queued() {
                ledger.residual_queued(pkt);
            }
            // Both delivery modes park the serializing packet in the port.
            if let Some(pkt) = p.in_service_pkt() {
                ledger.residual_in_service(pkt);
            }
        }
        let port_audits: Vec<PortAudit> = labels
            .into_iter()
            .zip(&self.ports)
            .map(|(label, p)| PortAudit::of(label, p))
            .collect();

        let monotonicity = self.q.monotonicity_violations();
        for (_, ev) in self.q.drain_unordered() {
            if let Event::Arrive { slot, .. } = ev {
                ledger.residual_propagating(&self.arena.take(slot));
            }
        }
        debug_assert!(
            self.arena.is_empty(),
            "{} arena slots leaked past the FEL drain",
            self.arena.live()
        );
        // Pipelined mode: in-flight packets live in the link pipes (at
        // most one of them also has a `Deliver` event above, which carries
        // no packet — no double counting).
        for pipe in &self.pipes {
            for e in pipe {
                ledger.residual_propagating(&e.pkt);
            }
        }

        let mut senders_checked = 0;
        let mut sender_violations: Vec<(usize, String)> = Vec::new();
        for (i, s) in self.senders.iter().enumerate() {
            if let Some(s) = s {
                senders_checked += 1;
                if let Some(v) = s.invariant_violation() {
                    sender_violations.push((i, v));
                }
            }
        }
        let mut receivers_checked = 0;
        let mut receiver_violations: Vec<(usize, String)> = Vec::new();
        for (i, r) in self.receivers.iter().enumerate() {
            if let Some(r) = r {
                receivers_checked += 1;
                if let Some(v) = r.invariant_violation() {
                    receiver_violations.push((i, v));
                }
            }
        }

        ledger.finish(
            &port_audits,
            monotonicity,
            &sender_violations,
            senders_checked,
            &receiver_violations,
            receivers_checked,
        )
    }
}

mod sharded;

#[cfg(test)]
mod tests;
