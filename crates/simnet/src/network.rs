//! The event-driven network: forwarding, serialization, endpoints, metrics.
//!
//! Node/queue layout for a leaf-spine fabric (all queues are
//! [`tlb_switch::OutPort`]s):
//!
//! ```text
//! host NIC ──> leaf { uplinks[spine] ──> spine { downlinks[leaf] ──> leaf { downlinks[host] ──> host
//! ```
//!
//! The load balancer runs at the *source* leaf: every packet a local host
//! sends to a remote rack goes through `LoadBalancer::choose_uplink`.
//! Spine→leaf and leaf→host forwarding are single-path.

use crate::audit::{AuditLedger, PortAudit};
use crate::config::SimConfig;
use crate::report::{ClassCounters, RunReport};
use tlb_engine::{EventQueue, SimRng, SimTime};
use tlb_metrics::{FctRecorder, FlowClass, SampleSet, TimeSeries};
use tlb_net::{FlowId, HostId, LeafId, Packet, PktKind, SpineId};
use tlb_switch::{Enqueued, LoadBalancer, OutPort, PortView};
use tlb_transport::{SenderOutput, TcpReceiver, TcpSender};
use tlb_workload::FlowSpec;

/// A specific output queue in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortRef {
    /// Host `h`'s NIC queue (towards its leaf).
    HostNic(u32),
    /// Leaf `leaf`'s uplink to spine `up`.
    LeafUp { leaf: u16, up: u16 },
    /// Leaf `leaf`'s downlink to its local host slot `slot`.
    LeafDown { leaf: u16, slot: u16 },
    /// Spine `spine`'s downlink to leaf `leaf`.
    SpineDown { spine: u16, leaf: u16 },
}

/// Where a packet lands after crossing a link.
#[derive(Clone, Copy, Debug)]
enum NodeRef {
    Host(u32),
    Leaf(u16),
    Spine(u16),
}

#[derive(Debug)]
enum Event {
    /// A flow's start time arrived.
    FlowStart(u32),
    /// A packet finished serializing on `port`; deliver it across the link.
    TxDone { port: PortRef, pkt: Packet },
    /// A packet arrives at a node (after propagation).
    Arrive { node: NodeRef, pkt: Packet },
    /// A sender's retransmission timer fires.
    Timer { flow: u32 },
    /// A leaf balancer's periodic tick.
    LbTick { leaf: u16 },
    /// Apply the `i`-th configured [`crate::config::LinkEvent`].
    LinkChange(u32),
    /// Sample leaf-0's uplink queues (Fig. 5 visualization).
    QueueSample,
}

struct LeafSw {
    up: Vec<OutPort>,
    down: Vec<OutPort>,
    lb: Box<dyn LoadBalancer>,
    rng: SimRng,
}

struct SpineSw {
    down: Vec<OutPort>,
}

/// One configured simulation, ready to run.
pub struct Simulation {
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    /// `next[i] = Some(j)`: flow `j` starts when flow `i` completes
    /// (closed-loop chains). Chain heads start at their `start` time;
    /// chained flows' `start` fields are ignored.
    next: Vec<Option<u32>>,
}

struct Net {
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    host_nics: Vec<OutPort>,
    leaves: Vec<LeafSw>,
    spines: Vec<SpineSw>,
    senders: Vec<Option<TcpSender>>,
    receivers: Vec<Option<TcpReceiver>>,
    next_flow: Vec<Option<u32>>,
    total_segs: Vec<u32>,
    completed: Vec<bool>,
    n_completed: usize,
    q: EventQueue<Event>,
    out_buf: Vec<SenderOutput>,
    // Metrics.
    fct: FctRecorder,
    short_qlen: SampleSet,
    long_qlen: SampleSet,
    short_qdelay: SampleSet,
    /// FEL occupancy sampled every [`FEL_DEPTH_SAMPLE_EVERY`] events.
    fel_depth: SampleSet,
    short_qdelay_series: TimeSeries,
    short_reorder: TimeSeries,
    long_reorder: TimeSeries,
    long_goodput: TimeSeries,
    qth_series: Vec<(f64, f64)>,
    traced: Vec<bool>,
    traces: Vec<crate::report::TraceEvent>,
    queue_series: Vec<(f64, Vec<u32>)>,
    lb_state_peak: usize,
    lb_decisions: u64,
    events: u64,
    /// Packet-lifecycle ledger (no-op unless [`SimConfig::audit`]).
    audit: AuditLedger,
    /// Arrival events seen, for [`SimConfig::fault_drop_nth`].
    arrive_seen: u64,
}

impl Simulation {
    /// Configure a simulation over the given flow set (all flows start at
    /// their `start` time).
    pub fn new(cfg: SimConfig, flows: Vec<FlowSpec>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        let n = flows.len();
        Simulation {
            cfg,
            flows,
            next: vec![None; n],
        }
    }

    /// Configure a closed-loop simulation: `next[i] = Some(j)` makes flow
    /// `j` start back-to-back when flow `i` delivers its last byte — the
    /// way a request/response client keeps a sustained number of flows in
    /// flight. Chained flows must not also have their own start event, so
    /// every index that appears as someone's `next` is launched only by its
    /// predecessor.
    pub fn new_chained(cfg: SimConfig, flows: Vec<FlowSpec>, next: Vec<Option<u32>>) -> Simulation {
        cfg.validate().expect("invalid simulation configuration");
        assert_eq!(
            flows.len(),
            next.len(),
            "next pointers must cover all flows"
        );
        // No flow may be the successor of two predecessors.
        let mut seen = vec![false; flows.len()];
        for &n in next.iter().flatten() {
            let i = n as usize;
            assert!(i < flows.len(), "next pointer out of range");
            assert!(!seen[i], "flow {i} chained twice");
            seen[i] = true;
        }
        Simulation { cfg, flows, next }
    }

    /// Run to completion (all flows done or horizon reached) and report.
    pub fn run(self) -> RunReport {
        let wall_start = std::time::Instant::now();
        let mut net = Net::build(self.cfg, self.flows, self.next);
        net.run_loop();
        net.into_report(wall_start.elapsed())
    }
}

impl Net {
    fn build(cfg: SimConfig, flows: Vec<FlowSpec>, next_flow: Vec<Option<u32>>) -> Net {
        let topo = &cfg.topo;
        let mut master_rng = SimRng::new(cfg.seed);

        let host_nics = (0..topo.n_hosts())
            .map(|_| OutPort::new(topo.host_link(), cfg.host_queue))
            .collect();

        let leaves = (0..topo.n_leaves())
            .map(|l| LeafSw {
                up: (0..topo.n_spines())
                    .map(|s| {
                        OutPort::new(topo.uplink(LeafId(l as u32), SpineId(s as u32)), cfg.queue)
                    })
                    .collect(),
                down: (0..topo.hosts_per_leaf())
                    .map(|_| OutPort::new(topo.host_link(), cfg.queue))
                    .collect(),
                lb: cfg.scheme.build(l as u64 + 1),
                rng: master_rng.fork(l as u64),
            })
            .collect();

        let spines = (0..topo.n_spines())
            .map(|s| SpineSw {
                down: (0..topo.n_leaves())
                    .map(|l| {
                        OutPort::new(
                            topo.downlink(SpineId(s as u32), LeafId(l as u32)),
                            cfg.queue,
                        )
                    })
                    .collect(),
            })
            .collect();

        let n = flows.len();
        // Size the FEL so steady state never reallocates: every flow can
        // hold one pending start plus one armed retransmission timer, and
        // each port can contribute one in-service `TxDone` plus a few
        // propagating `Arrive`s. (For the calendar backend the capacity
        // reserves the overflow tier, which is exactly where the build-time
        // bulk of not-yet-started flows lands.)
        let n_ports = topo.n_hosts()
            + topo.n_leaves() * (topo.n_spines() + topo.hosts_per_leaf())
            + topo.n_spines() * topo.n_leaves();
        let mut q = EventQueue::with_capacity_and_kind(2 * n + 4 * n_ports + 64, cfg.fel);
        // Only chain heads get their own start event; chained flows are
        // launched by their predecessor's completion.
        let mut is_chained = vec![false; n];
        for &nf in next_flow.iter().flatten() {
            is_chained[nf as usize] = true;
        }
        for (i, f) in flows.iter().enumerate() {
            if !is_chained[i] {
                q.push(f.start, Event::FlowStart(i as u32));
            }
        }
        // Balancer ticks per leaf.
        let mut net = Net {
            total_segs: flows
                .iter()
                .map(|f| f.size_bytes.div_ceil(cfg.tcp.mss as u64) as u32)
                .collect(),
            fct: FctRecorder::new(cfg.short_threshold),
            short_qdelay_series: TimeSeries::new(cfg.series_bucket),
            short_reorder: TimeSeries::new(cfg.series_bucket),
            long_reorder: TimeSeries::new(cfg.series_bucket),
            long_goodput: TimeSeries::new(cfg.series_bucket),
            host_nics,
            leaves,
            spines,
            senders: (0..n).map(|_| None).collect(),
            receivers: (0..n).map(|_| None).collect(),
            next_flow,
            completed: vec![false; n],
            n_completed: 0,
            q,
            // A sender can emit at most a receive window of segments (plus
            // a FIN) from one call.
            out_buf: Vec::with_capacity(cfg.tcp.rwnd_segs() as usize + 2),
            short_qlen: SampleSet::new(),
            long_qlen: SampleSet::new(),
            short_qdelay: SampleSet::new(),
            fel_depth: SampleSet::new(),
            qth_series: Vec::new(),
            traced: {
                let mut t = vec![false; n];
                for f in &cfg.trace_flows {
                    if f.index() < n {
                        t[f.index()] = true;
                    }
                }
                t
            },
            traces: Vec::with_capacity(if cfg.trace_flows.is_empty() { 0 } else { 1024 }),
            queue_series: {
                // One row per series bucket up to the horizon, capped so a
                // long horizon with a fine bucket can't pre-allocate
                // unboundedly.
                let rows = if cfg.sample_queues {
                    (cfg.horizon.as_nanos() / cfg.series_bucket.as_nanos().max(1)) as usize + 1
                } else {
                    0
                };
                Vec::with_capacity(rows.min(1 << 16))
            },
            lb_state_peak: 0,
            lb_decisions: 0,
            events: 0,
            audit: AuditLedger::new(cfg.audit),
            arrive_seen: 0,
            cfg,
            flows,
        };
        for l in 0..net.leaves.len() {
            if let Some(iv) = net.leaves[l].lb.tick_interval() {
                net.q.push(iv, Event::LbTick { leaf: l as u16 });
            }
        }
        for (i, ev) in net.cfg.link_events.iter().enumerate() {
            net.q.push(ev.at, Event::LinkChange(i as u32));
        }
        if net.cfg.sample_queues {
            net.q.push(net.cfg.series_bucket, Event::QueueSample);
        }
        net
    }

    /// Sample FEL occupancy once per this many processed events. The
    /// sample schedule depends only on the event count, which is identical
    /// across FEL backends and thread counts, so the samples are part of
    /// the deterministic digest.
    const FEL_DEPTH_SAMPLE_EVERY: u64 = 4096;

    fn run_loop(&mut self) {
        let horizon = self.cfg.horizon;
        while self.n_completed < self.flows.len() {
            // Peek before popping: an event past the horizon must stay in
            // the queue (end-of-run accounting counts it as in flight) and
            // must not advance the clock past the horizon (it would inflate
            // `sim_end` and every rate derived from it).
            match self.q.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break, // queue empty, or nothing left before the horizon
            }
            let (now, ev) = self.q.pop().expect("peeked event vanished");
            self.events += 1;
            if self.events.is_multiple_of(Self::FEL_DEPTH_SAMPLE_EVERY) {
                self.fel_depth.push(self.q.len() as f64);
            }
            match ev {
                Event::FlowStart(i) => self.on_flow_start(i, now),
                Event::TxDone { port, pkt } => self.on_tx_done(port, pkt, now),
                Event::Arrive { node, pkt } => {
                    self.arrive_seen += 1;
                    if self.cfg.fault_drop_nth == Some(self.arrive_seen) {
                        // Injected driver bug (audit tests only): the packet
                        // vanishes without any accounting layer hearing of it.
                        continue;
                    }
                    self.on_arrive(node, pkt, now);
                }
                Event::Timer { flow } => self.on_timer(flow, now),
                Event::LbTick { leaf } => self.on_lb_tick(leaf, now),
                Event::LinkChange(i) => self.on_link_change(i as usize),
                Event::QueueSample => self.on_queue_sample(now),
            }
        }
    }

    // ---- event handlers --------------------------------------------------

    fn on_flow_start(&mut self, i: u32, now: SimTime) {
        let spec = self.flows[i as usize];
        self.fct
            .flow_started(spec.id, spec.size_bytes, now, spec.deadline);
        let mut sender = TcpSender::new(self.cfg.tcp, spec.id, spec.src, spec.dst, spec.size_bytes);
        let mut out = std::mem::take(&mut self.out_buf);
        sender.start(now, &mut out);
        self.senders[i as usize] = Some(sender);
        self.process_outputs(i, &mut out, now);
        self.out_buf = out;
    }

    fn on_timer(&mut self, flow: u32, now: SimTime) {
        let mut out = std::mem::take(&mut self.out_buf);
        if let Some(sender) = self.senders[flow as usize].as_mut() {
            sender.on_timer(now, &mut out);
        }
        self.process_outputs(flow, &mut out, now);
        self.out_buf = out;
    }

    fn on_lb_tick(&mut self, leaf: u16, now: SimTime) {
        let l = &mut self.leaves[leaf as usize];
        l.lb.on_tick(PortView::new(&l.up), now);
        self.lb_state_peak = self.lb_state_peak.max(l.lb.state_bytes());
        if leaf == 0 {
            if let Some(qth) = l.lb.q_threshold() {
                // Saturate "infinite" to a plottable sentinel.
                let v = if qth == u64::MAX {
                    f64::INFINITY
                } else {
                    qth as f64
                };
                self.qth_series.push((now.as_secs_f64(), v));
            }
        }
        if let Some(iv) = l.lb.tick_interval() {
            let next = now + iv;
            if next <= self.cfg.horizon {
                self.q.push(next, Event::LbTick { leaf });
            }
        }
    }

    /// Apply a sender's outputs: transmit packets from its host NIC, arm
    /// timers.
    fn process_outputs(&mut self, flow: u32, out: &mut Vec<SenderOutput>, now: SimTime) {
        let src = self.flows[flow as usize].src;
        for o in out.drain(..) {
            match o {
                SenderOutput::Send(pkt) => {
                    self.audit.emitted(&pkt);
                    self.enqueue(PortRef::HostNic(src.0), pkt, now);
                }
                SenderOutput::ArmTimer { deadline } => {
                    self.q.push(deadline.max(now), Event::Timer { flow });
                }
                SenderOutput::Finished => {
                    // Sender-side completion; FCT is recorded at the
                    // receiver when the last byte arrives.
                }
            }
        }
    }

    /// Record leaf-0's uplink occupancy and re-arm the sampler.
    fn on_queue_sample(&mut self, now: SimTime) {
        let lens: Vec<u32> = self.leaves[0]
            .up
            .iter()
            .map(|p| p.len_pkts() as u32)
            .collect();
        self.queue_series.push((now.as_secs_f64(), lens));
        let next = now + self.cfg.series_bucket;
        if next <= self.cfg.horizon {
            self.q.push(next, Event::QueueSample);
        }
    }

    /// Apply a configured mid-run link degradation to both directions of
    /// the leaf<->spine pair.
    fn on_link_change(&mut self, i: usize) {
        let ev = self.cfg.link_events[i];
        let degrade = |port: &mut OutPort| {
            let mut l = port.link();
            l.bytes_per_sec = ((l.bytes_per_sec as f64) * ev.bw_factor).max(1.0) as u64;
            l.prop_delay += ev.extra_delay;
            port.set_link(l);
        };
        degrade(&mut self.leaves[ev.leaf.index()].up[ev.spine.index()]);
        degrade(&mut self.spines[ev.spine.index()].down[ev.leaf.index()]);
    }

    // ---- forwarding ------------------------------------------------------

    fn port_mut(&mut self, r: PortRef) -> &mut OutPort {
        match r {
            PortRef::HostNic(h) => &mut self.host_nics[h as usize],
            PortRef::LeafUp { leaf, up } => &mut self.leaves[leaf as usize].up[up as usize],
            PortRef::LeafDown { leaf, slot } => &mut self.leaves[leaf as usize].down[slot as usize],
            PortRef::SpineDown { spine, leaf } => {
                &mut self.spines[spine as usize].down[leaf as usize]
            }
        }
    }

    fn next_node(&self, r: PortRef) -> NodeRef {
        match r {
            PortRef::HostNic(h) => NodeRef::Leaf(self.cfg.topo.leaf_of(HostId(h)).index() as u16),
            PortRef::LeafUp { up, .. } => NodeRef::Spine(up),
            PortRef::LeafDown { leaf, slot } => NodeRef::Host(
                (leaf as usize * self.cfg.topo.hosts_per_leaf() + slot as usize) as u32,
            ),
            PortRef::SpineDown { leaf, .. } => NodeRef::Leaf(leaf),
        }
    }

    fn enqueue(&mut self, r: PortRef, pkt: Packet, now: SimTime) {
        if self.traced[pkt.flow.index()] {
            self.trace(r, &pkt, now);
        }
        self.audit.enqueue_attempt(&pkt);
        match self.port_mut(r).enqueue(pkt, now) {
            Enqueued::Queued { was_idle, .. } => {
                self.audit.enqueued(&pkt);
                if was_idle {
                    self.start_tx(r, now);
                }
            }
            Enqueued::Dropped => {
                // Loss is recovered by the transport; counters live in the
                // port stats.
                self.audit.dropped(&pkt);
            }
        }
    }

    fn start_tx(&mut self, r: PortRef, now: SimTime) {
        let is_short =
            |net: &Net, f: FlowId| net.flows[f.index()].size_bytes < net.cfg.short_threshold;
        let (pkt, tx_time, wait) = {
            let port = self.port_mut(r);
            let pkt = port.start_service().expect("start_tx on an empty port");
            let t = port.tx_time(pkt.wire_bytes as u64);
            (pkt, t, now.saturating_sub(pkt.enqueued_at))
        };
        // Leaf-uplink queueing delay of short-flow data (Fig. 8(b)) — the
        // queues the load balancer controls; NIC and downlink waits are the
        // same for every scheme and would only dilute the comparison.
        if matches!(r, PortRef::LeafUp { .. })
            && pkt.kind == PktKind::Data
            && is_short(self, pkt.flow)
        {
            let w = wait.as_secs_f64();
            self.short_qdelay.push(w);
            self.short_qdelay_series.add(now, w);
        }
        self.audit.tx_started(&pkt);
        self.q.push(now + tx_time, Event::TxDone { port: r, pkt });
    }

    fn on_tx_done(&mut self, r: PortRef, pkt: Packet, now: SimTime) {
        self.audit.tx_done(&pkt);
        let (more, prop) = {
            let port = self.port_mut(r);
            (port.finish_service(&pkt), port.link().prop_delay)
        };
        if more {
            self.start_tx(r, now);
        }
        let node = self.next_node(r);
        self.q.push(now + prop, Event::Arrive { node, pkt });
    }

    fn on_arrive(&mut self, node: NodeRef, pkt: Packet, now: SimTime) {
        self.audit.arrived(&pkt);
        match node {
            NodeRef::Spine(s) => {
                let leaf = self.cfg.topo.leaf_of(pkt.dst).index() as u16;
                self.enqueue(PortRef::SpineDown { spine: s, leaf }, pkt, now);
            }
            NodeRef::Leaf(l) => {
                let dst_leaf = self.cfg.topo.leaf_of(pkt.dst).index() as u16;
                if dst_leaf == l {
                    // Downstream (or intra-rack): single path to the host.
                    let slot = self.cfg.topo.host_slot(pkt.dst) as u16;
                    self.enqueue(PortRef::LeafDown { leaf: l, slot }, pkt, now);
                } else {
                    // Upstream: the load balancer picks the uplink.
                    self.lb_decisions += 1;
                    let leaf = &mut self.leaves[l as usize];
                    let view = PortView::new(&leaf.up);
                    let up = leaf.lb.choose_uplink(&pkt, view, now, &mut leaf.rng) as u16;
                    debug_assert!((up as usize) < leaf.up.len());
                    // Fig. 3(a): queue length experienced at enqueue.
                    if pkt.kind == PktKind::Data {
                        let qlen = leaf.up[up as usize].len_pkts() as f64;
                        if self.flows[pkt.flow.index()].size_bytes < self.cfg.short_threshold {
                            self.short_qlen.push(qlen);
                        } else {
                            self.long_qlen.push(qlen);
                        }
                    }
                    self.enqueue(PortRef::LeafUp { leaf: l, up }, pkt, now);
                }
            }
            NodeRef::Host(h) => self.deliver_to_host(h, pkt, now),
        }
    }

    fn trace(&mut self, r: PortRef, pkt: &Packet, now: SimTime) {
        use crate::report::{Hop, TraceEvent};
        let hop = match r {
            PortRef::HostNic(h) => Hop::HostNic { host: h },
            PortRef::LeafUp { leaf, up } => Hop::LeafUplink { leaf, spine: up },
            PortRef::LeafDown { leaf, slot } => Hop::LeafDownlink { leaf, slot },
            PortRef::SpineDown { spine, leaf } => Hop::SpineDownlink { spine, leaf },
        };
        self.traces.push(TraceEvent {
            flow: pkt.flow,
            kind: pkt.kind,
            seq: pkt.seq,
            at: now,
            hop,
        });
    }

    fn deliver_to_host(&mut self, h: u32, pkt: Packet, now: SimTime) {
        debug_assert_eq!(pkt.dst.0, h, "packet delivered to the wrong host");
        self.audit.delivered(&pkt);
        if self.traced[pkt.flow.index()] {
            self.traces.push(crate::report::TraceEvent {
                flow: pkt.flow,
                kind: pkt.kind,
                seq: pkt.seq,
                at: now,
                hop: crate::report::Hop::Delivered { host: h },
            });
        }
        let fi = pkt.flow.index();
        match pkt.kind {
            PktKind::Syn => {
                let receiver = self.receivers[fi]
                    .get_or_insert_with(|| TcpReceiver::new(pkt.flow, pkt.dst, pkt.src));
                let synack = receiver.on_syn(now);
                self.audit.emitted(&synack);
                self.enqueue(PortRef::HostNic(h), synack, now);
            }
            PktKind::Data => {
                let spec = self.flows[fi];
                let is_short = spec.size_bytes < self.cfg.short_threshold;
                let Some(receiver) = self.receivers[fi].as_mut() else {
                    // Data before SYN can't happen; drop defensively.
                    debug_assert!(false, "data for unknown receiver");
                    return;
                };
                let before = receiver.delivered_segs();
                let ooo_before = receiver.stats().out_of_order;
                let ack = receiver.on_data(&pkt, now);
                let after = receiver.delivered_segs();
                let was_ooo = receiver.stats().out_of_order > ooo_before;

                // Reordering time series per class.
                if is_short {
                    self.short_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                } else {
                    self.long_reorder.add(now, if was_ooo { 1.0 } else { 0.0 });
                    if after > before {
                        let bytes = (after - before) as f64 * self.cfg.tcp.mss as f64;
                        self.long_goodput.add(now, bytes);
                    }
                }

                // Completion: every segment delivered in order.
                if after >= self.total_segs[fi] && !self.completed[fi] {
                    self.completed[fi] = true;
                    self.n_completed += 1;
                    self.fct.flow_completed(pkt.flow, now);
                    // Closed-loop chain: launch the successor back-to-back.
                    if let Some(nf) = self.next_flow[fi] {
                        self.q.push(now, Event::FlowStart(nf));
                    }
                }
                self.audit.emitted(&ack);
                self.enqueue(PortRef::HostNic(h), ack, now);
            }
            PktKind::SynAck | PktKind::Ack => {
                let mut out = std::mem::take(&mut self.out_buf);
                if let Some(sender) = self.senders[fi].as_mut() {
                    sender.on_packet(&pkt, now, &mut out);
                }
                self.process_outputs(pkt.flow.0, &mut out, now);
                self.out_buf = out;
            }
            PktKind::Fin => {
                // Connection teardown carries no data; flow counting
                // happened at the leaf switch.
            }
        }
    }

    // ---- reporting ---------------------------------------------------

    fn into_report(mut self, wall: std::time::Duration) -> RunReport {
        // The clock can only pass the horizon through a bug (the run loop
        // stops *before* popping any later event); clamp as a backstop so a
        // regression can't inflate every duration-derived rate.
        let sim_end = self.q.now().min(self.cfg.horizon);
        let dur = sim_end.as_secs_f64().max(1e-9);

        let audit = self.finish_audit();

        let mut short = ClassCounters::default();
        let mut long = ClassCounters::default();
        for (i, spec) in self.flows.iter().enumerate() {
            let c = if spec.size_bytes < self.cfg.short_threshold {
                &mut short
            } else {
                &mut long
            };
            if let Some(s) = &self.senders[i] {
                let st = s.stats();
                c.data_sent += st.data_sent;
                c.retransmits += st.retransmits;
                c.timeouts += st.timeouts;
                c.fast_retransmits += st.fast_retransmits;
                c.dup_acks += st.dup_acks;
            }
            if let Some(r) = &self.receivers[i] {
                let st = r.stats();
                c.data_received += st.total_data;
                c.out_of_order += st.out_of_order;
            }
        }

        let uplink_utilization = self
            .leaves
            .iter()
            .map(|l| {
                l.up.iter()
                    .map(|p| p.stats().busy.as_secs_f64() / dur)
                    .collect()
            })
            .collect();

        let mut drops = 0;
        let mut marks = 0;
        let mut count_port = |p: &OutPort| {
            drops += p.stats().dropped;
            marks += p.stats().marked;
        };
        self.host_nics.iter().for_each(&mut count_port);
        for l in &self.leaves {
            l.up.iter().for_each(&mut count_port);
            l.down.iter().for_each(&mut count_port);
        }
        for s in &self.spines {
            s.down.iter().for_each(&mut count_port);
        }

        let lb_state_final = self
            .leaves
            .iter()
            .map(|l| l.lb.state_bytes())
            .max()
            .unwrap_or(0);

        // Long-flow reroute total: present iff the scheme reports one
        // (TLB); `None` keeps non-TLB reports unambiguous.
        let tlb_long_reroutes = self
            .leaves
            .iter()
            .filter_map(|l| l.lb.long_reroutes())
            .fold(None, |acc: Option<u64>, n| Some(acc.unwrap_or(0) + n));

        RunReport {
            scheme: self.cfg.scheme.name().to_string(),
            total_flows: self.flows.len(),
            completed: self.n_completed,
            fct_short: self.fct.summary(FlowClass::Short),
            fct_long: self.fct.summary(FlowClass::Long),
            fct: self.fct,
            short,
            long,
            short_qlen: self.short_qlen,
            long_qlen: self.long_qlen,
            short_qdelay: self.short_qdelay,
            fel_depth: self.fel_depth,
            short_reorder_series: self.short_reorder.means(),
            long_reorder_series: self.long_reorder.means(),
            long_goodput_series: self.long_goodput.rates(),
            short_qdelay_series: self.short_qdelay_series.means(),
            uplink_utilization,
            drops,
            marks,
            lb_state_bytes_peak: self.lb_state_peak.max(lb_state_final),
            qth_series: self.qth_series,
            traces: self.traces,
            queue_series: self.queue_series,
            lb_decisions: self.lb_decisions,
            tlb_long_reroutes,
            events: self.events,
            audit,
            sim_end,
            wall,
        }
    }

    /// Close the packet-conservation ledger: feed it the end-of-run
    /// residuals (queued packets, pending serializations and propagations),
    /// per-port accounting snapshots, the engine's clock counter, and each
    /// live sender's invariant check, then let it verify everything (see
    /// [`crate::audit`]). Drains the event queue; call only from
    /// [`Net::into_report`].
    fn finish_audit(&mut self) -> Option<crate::audit::AuditReport> {
        let mut ledger = std::mem::replace(&mut self.audit, AuditLedger::new(false));
        if !ledger.enabled() {
            return None;
        }

        let mut ports: Vec<(String, &OutPort)> = Vec::new();
        for (h, p) in self.host_nics.iter().enumerate() {
            ports.push((format!("host{h}.nic"), p));
        }
        for (l, leaf) in self.leaves.iter().enumerate() {
            for (s, p) in leaf.up.iter().enumerate() {
                ports.push((format!("leaf{l}.up{s}"), p));
            }
            for (d, p) in leaf.down.iter().enumerate() {
                ports.push((format!("leaf{l}.down{d}"), p));
            }
        }
        for (s, spine) in self.spines.iter().enumerate() {
            for (l, p) in spine.down.iter().enumerate() {
                ports.push((format!("spine{s}.down{l}"), p));
            }
        }

        for (_, p) in &ports {
            for pkt in p.iter_queued() {
                ledger.residual_queued(pkt);
            }
        }
        let port_audits: Vec<PortAudit> = ports
            .iter()
            .map(|(label, p)| PortAudit::of(label.clone(), p))
            .collect();

        let monotonicity = self.q.monotonicity_violations();
        for (_, ev) in self.q.drain_unordered() {
            match ev {
                Event::TxDone { pkt, .. } => ledger.residual_in_service(&pkt),
                Event::Arrive { pkt, .. } => ledger.residual_propagating(&pkt),
                _ => {}
            }
        }

        let mut senders_checked = 0;
        let mut sender_violations: Vec<(usize, String)> = Vec::new();
        for (i, s) in self.senders.iter().enumerate() {
            if let Some(s) = s {
                senders_checked += 1;
                if let Some(v) = s.invariant_violation() {
                    sender_violations.push((i, v));
                }
            }
        }
        let mut receivers_checked = 0;
        let mut receiver_violations: Vec<(usize, String)> = Vec::new();
        for (i, r) in self.receivers.iter().enumerate() {
            if let Some(r) = r {
                receivers_checked += 1;
                if let Some(v) = r.invariant_violation() {
                    receiver_violations.push((i, v));
                }
            }
        }

        ledger.finish(
            &port_audits,
            monotonicity,
            &sender_violations,
            senders_checked,
            &receiver_violations,
            receivers_checked,
        )
    }
}

#[cfg(test)]
mod tests;
