//! Static load-balancer dispatch: the hot-path alternative to
//! `Box<dyn LoadBalancer>`.
//!
//! [`Scheme::build`] returns a trait object, which costs a virtual call on
//! **every** forwarded packet. [`AnyLb`] is a closed enum over the same
//! concrete schemes whose trait methods dispatch by `match` — the compiler
//! sees through the variant and can inline the scheme's decision logic
//! into the forwarding loop.
//!
//! The `dyn` path stays alive as a differential reference (mirroring the
//! FEL's heap-vs-calendar pattern): [`AnyLb::Dyn`] wraps the trait object,
//! [`LbDispatch`] selects which path a run uses, `TLB_LB_DISPATCH`
//! overrides it per process, and the `dyn-lb` cargo feature flips the
//! default. Both paths must be observably identical — digest tests in
//! `tests/determinism.rs` hold them to bit-for-bit equality.

use crate::Scheme;
use tlb_core::Tlb;
use tlb_engine::{SimRng, SimTime};
use tlb_lb::{
    CongaLite, DiffFlow, Drill, Ecmp, FlowBender, HermesLite, LetFlow, Presto, Rps, Wcmp,
};
use tlb_net::Packet;
use tlb_switch::{LoadBalancer, PortView};

/// Which load-balancer dispatch path a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbDispatch {
    /// Static enum dispatch ([`AnyLb`]'s concrete variants) — the default
    /// production path.
    Enum,
    /// The original `Box<dyn LoadBalancer>` virtual-call path, kept as a
    /// differential reference.
    Dyn,
}

impl LbDispatch {
    /// The dispatch selected by the environment: `TLB_LB_DISPATCH=enum`
    /// or `=dyn`, defaulting to [`LbDispatch::Enum`] (the `dyn-lb`
    /// feature flips the default to `Dyn`).
    pub fn from_env() -> LbDispatch {
        tlb_engine::env_knob::choice(
            "TLB_LB_DISPATCH",
            Self::default_kind(),
            &[("enum", LbDispatch::Enum), ("dyn", LbDispatch::Dyn)],
        )
    }

    fn default_kind() -> LbDispatch {
        if cfg!(feature = "dyn-lb") {
            LbDispatch::Dyn
        } else {
            LbDispatch::Enum
        }
    }
}

/// A load balancer with static dispatch: one variant per concrete scheme,
/// plus [`AnyLb::Dyn`] wrapping the boxed trait object as the
/// differential reference path.
pub enum AnyLb {
    /// Flow-level hashing.
    Ecmp(Ecmp),
    /// Per-packet random spraying.
    Rps(Rps),
    /// Fixed-size flowcells, round-robin.
    Presto(Presto),
    /// Flowlet switching with random rerouting.
    LetFlow(LetFlow),
    /// Per-packet power-of-two-choices with memory.
    Drill(Drill),
    /// Flowlet switching onto the least-loaded uplink.
    CongaLite(CongaLite),
    /// Flow-level congestion-triggered rehashing.
    FlowBender(FlowBender),
    /// Size-aware flowlet/flow hybrid.
    Hermes(HermesLite),
    /// Weighted flow-level hashing.
    Wcmp(Wcmp),
    /// Static short/long split: spray shorts, pin longs.
    DiffFlow(DiffFlow),
    /// The paper's scheme: traffic-aware adaptive granularity.
    Tlb(Box<Tlb>),
    /// Virtual-call reference path (`dyn-lb` feature / `TLB_LB_DISPATCH=dyn`).
    Dyn(Box<dyn LoadBalancer>),
}

/// Forward one expression to every variant's payload. `Box<T>` payloads
/// auto-deref, so the same arm body works for concrete and boxed variants.
macro_rules! dispatch {
    ($self:expr, $lb:ident => $body:expr) => {
        match $self {
            AnyLb::Ecmp($lb) => $body,
            AnyLb::Rps($lb) => $body,
            AnyLb::Presto($lb) => $body,
            AnyLb::LetFlow($lb) => $body,
            AnyLb::Drill($lb) => $body,
            AnyLb::CongaLite($lb) => $body,
            AnyLb::FlowBender($lb) => $body,
            AnyLb::Hermes($lb) => $body,
            AnyLb::Wcmp($lb) => $body,
            AnyLb::DiffFlow($lb) => $body,
            AnyLb::Tlb($lb) => $body,
            AnyLb::Dyn($lb) => $body,
        }
    };
}

impl LoadBalancer for AnyLb {
    #[inline]
    fn name(&self) -> &'static str {
        dispatch!(self, lb => lb.name())
    }

    #[inline]
    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        dispatch!(self, lb => lb.choose_uplink(pkt, view, now, rng))
    }

    #[inline]
    fn on_tick(&mut self, view: PortView<'_>, now: SimTime) {
        dispatch!(self, lb => lb.on_tick(view, now))
    }

    #[inline]
    fn tick_interval(&self) -> Option<SimTime> {
        dispatch!(self, lb => lb.tick_interval())
    }

    #[inline]
    fn state_bytes(&self) -> usize {
        dispatch!(self, lb => lb.state_bytes())
    }

    #[inline]
    fn q_threshold(&self) -> Option<u64> {
        dispatch!(self, lb => lb.q_threshold())
    }

    #[inline]
    fn long_reroutes(&self) -> Option<u64> {
        // `Tlb` also has an *inherent* `long_reroutes() -> u64` that method
        // resolution prefers over the trait's `Option<u64>`, so the Tlb arm
        // must qualify the call; the macro can't express a per-arm cast.
        match self {
            AnyLb::Ecmp(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Rps(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Presto(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::LetFlow(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Drill(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::CongaLite(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::FlowBender(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Hermes(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Wcmp(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::DiffFlow(lb) => LoadBalancer::long_reroutes(lb),
            AnyLb::Tlb(lb) => LoadBalancer::long_reroutes(&**lb),
            AnyLb::Dyn(lb) => lb.long_reroutes(),
        }
    }

    #[inline]
    fn forced_reroutes(&self) -> Option<u64> {
        // Same shadowing situation as `long_reroutes`: `Tlb` has an
        // inherent `forced_reroutes() -> u64`, so dispatch by hand.
        match self {
            AnyLb::Ecmp(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Rps(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Presto(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::LetFlow(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Drill(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::CongaLite(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::FlowBender(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Hermes(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Wcmp(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::DiffFlow(lb) => LoadBalancer::forced_reroutes(lb),
            AnyLb::Tlb(lb) => LoadBalancer::forced_reroutes(&**lb),
            AnyLb::Dyn(lb) => lb.forced_reroutes(),
        }
    }
}

impl Scheme {
    /// Build this scheme as a statically dispatched [`AnyLb`].
    pub fn build_static(&self, salt: u64) -> AnyLb {
        match self {
            Scheme::Ecmp => AnyLb::Ecmp(Ecmp::new(salt)),
            Scheme::Rps => AnyLb::Rps(Rps::new()),
            Scheme::Presto { cell_bytes } => AnyLb::Presto(Presto::new(*cell_bytes)),
            Scheme::LetFlow { timeout } => AnyLb::LetFlow(LetFlow::new(*timeout)),
            Scheme::Drill { d, m } => AnyLb::Drill(Drill::new(*d, *m)),
            Scheme::CongaLite { timeout } => AnyLb::CongaLite(CongaLite::new(*timeout)),
            Scheme::FlowBender {
                mark_threshold_pkts,
                frac_threshold,
                window_pkts,
            } => AnyLb::FlowBender(FlowBender::new(
                *mark_threshold_pkts,
                *frac_threshold,
                *window_pkts,
            )),
            Scheme::Hermes {
                reroute_size_bytes,
                congested_pkts,
                benefit_factor,
            } => AnyLb::Hermes(HermesLite::new(
                *reroute_size_bytes,
                *congested_pkts,
                *benefit_factor,
            )),
            Scheme::Wcmp => AnyLb::Wcmp(Wcmp::new()),
            Scheme::DiffFlow { threshold_bytes } => {
                AnyLb::DiffFlow(DiffFlow::new(*threshold_bytes))
            }
            Scheme::Tlb(cfg) => AnyLb::Tlb(Box::new(Tlb::new(*cfg))),
        }
    }

    /// Build this scheme on the requested dispatch path. Both paths
    /// construct the identical concrete balancer from the identical salt —
    /// only the call mechanism differs.
    pub fn build_dispatch(&self, salt: u64, dispatch: LbDispatch) -> AnyLb {
        match dispatch {
            LbDispatch::Enum => self.build_static(salt),
            LbDispatch::Dyn => AnyLb::Dyn(self.build(salt)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scheme: the enum path and the dyn path must expose identical
    /// trait-level metadata and make identical decisions on a packet
    /// stream (same salt, same RNG stream).
    #[test]
    fn enum_and_dyn_paths_agree_per_scheme() {
        use tlb_net::{FlowId, HostId, LinkProps, PktKind};
        use tlb_switch::{OutPort, QueueCfg};

        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let qcfg = QueueCfg {
            capacity_pkts: 64,
            ecn_threshold_pkts: Some(8),
        };
        let ports: Vec<OutPort> = (0..8)
            .map(|i| {
                let mut p = OutPort::new(link, qcfg);
                for s in 0..(i * 3 % 7) {
                    p.enqueue(
                        Packet::data(
                            FlowId(500),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect();

        for scheme in Scheme::extended_set() {
            let mut fast = scheme.build_dispatch(7, LbDispatch::Enum);
            let mut slow = scheme.build_dispatch(7, LbDispatch::Dyn);
            assert_eq!(fast.name(), slow.name());
            assert_eq!(fast.tick_interval(), slow.tick_interval());
            assert_eq!(fast.state_bytes(), slow.state_bytes());
            assert_eq!(fast.q_threshold(), slow.q_threshold());
            assert_eq!(fast.long_reroutes(), slow.long_reroutes());
            assert_eq!(fast.forced_reroutes(), slow.forced_reroutes());

            let mut rng_a = SimRng::new(11);
            let mut rng_b = SimRng::new(11);
            let mut now = SimTime::ZERO;
            for i in 0..512u32 {
                now += SimTime::from_nanos(700);
                let pkt = match i % 97 {
                    0 => Packet::control(
                        FlowId(i / 7),
                        HostId(0),
                        HostId(9),
                        PktKind::Syn,
                        0,
                        SimTime::ZERO,
                    ),
                    1 => Packet::control(
                        FlowId(i / 7),
                        HostId(0),
                        HostId(9),
                        PktKind::Fin,
                        0,
                        SimTime::ZERO,
                    ),
                    _ => Packet::data(
                        FlowId(i / 7),
                        HostId(0),
                        HostId(9),
                        i,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                };
                let a = fast.choose_uplink(&pkt, PortView::new(&ports), now, &mut rng_a);
                let b = slow.choose_uplink(&pkt, PortView::new(&ports), now, &mut rng_b);
                assert_eq!(a, b, "{} diverged at packet {i}", scheme.name());
            }
        }
    }

    #[test]
    fn dispatch_env_defaults_to_enum() {
        if std::env::var("TLB_LB_DISPATCH").is_err() && !cfg!(feature = "dyn-lb") {
            assert_eq!(LbDispatch::from_env(), LbDispatch::Enum);
        }
    }
}
