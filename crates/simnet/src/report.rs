//! The result of one simulation run.

use tlb_engine::SimTime;
use tlb_metrics::{FctRecorder, FctSummary, FlowClass, SampleSet};
use tlb_net::{FlowId, PktKind};

/// One point a traced packet passed through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hop {
    /// Entered host `host`'s NIC queue.
    HostNic {
        /// Sending host index.
        host: u32,
    },
    /// Entered a leaf's uplink queue — the load balancer's choice.
    LeafUplink {
        /// Leaf switch index.
        leaf: u16,
        /// Chosen spine/uplink index.
        spine: u16,
    },
    /// Entered a leaf's host-facing downlink queue.
    LeafDownlink {
        /// Leaf switch index.
        leaf: u16,
        /// Local host slot.
        slot: u16,
    },
    /// Entered a spine's leaf-facing downlink queue.
    SpineDownlink {
        /// Spine switch index.
        spine: u16,
        /// Destination leaf index.
        leaf: u16,
    },
    /// Entered a fat-tree switch's uplink queue (edge→agg or agg→core).
    FabricUp {
        /// Global LB-switch index (edges then aggs).
        sw: u16,
        /// Chosen uplink index within the switch.
        up: u16,
    },
    /// Entered a fat-tree switch's downlink queue (edge→host, agg→edge,
    /// or core→agg).
    FabricDown {
        /// Global switch index (LB switches first, then cores).
        sw: u16,
        /// Downlink index within the switch.
        down: u16,
    },
    /// Delivered to the destination host's endpoint.
    Delivered {
        /// Receiving host index.
        host: u32,
    },
}

/// One trace record: a packet of a traced flow entering a hop.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// The traced flow.
    pub flow: FlowId,
    /// Packet kind (Data/Ack/...).
    pub kind: PktKind,
    /// Segment or ack number.
    pub seq: u32,
    /// When the packet reached this hop.
    pub at: SimTime,
    /// Where it went.
    pub hop: Hop,
}

/// Aggregated per-class transport counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassCounters {
    /// Data segments received (any disposition).
    pub data_received: u64,
    /// Out-of-order arrivals at receivers (gap detected).
    pub out_of_order: u64,
    /// Duplicate ACKs observed by senders.
    pub dup_acks: u64,
    /// Data segments sent (first transmissions).
    pub data_sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Fast retransmits.
    pub fast_retransmits: u64,
}

impl ClassCounters {
    /// Fraction of received data segments that arrived out of order —
    /// the paper's "reordering ratio" (Fig. 8(a)/9(a)).
    pub fn reorder_ratio(&self) -> f64 {
        if self.data_received == 0 {
            0.0
        } else {
            self.out_of_order as f64 / self.data_received as f64
        }
    }

    /// Duplicate ACKs per data segment sent — Fig. 3(b)'s metric.
    pub fn dupack_ratio(&self) -> f64 {
        if self.data_sent == 0 {
            0.0
        } else {
            self.dup_acks as f64 / self.data_sent as f64
        }
    }
}

/// Steady-state allocation audit: the process-wide allocator-counter delta
/// between the warmup snapshot and the end of the event loop. `Some` iff
/// the run had [`crate::SimConfig::alloc_warmup_events`] set *and*
/// processed at least that many events. Only meaningful when the binary
/// installs [`tlb_engine::CountingAlloc`] (`counting` reports whether it
/// did — a zero delta under a non-counting allocator is vacuous) and the
/// run executed serially (the counters are shared by every thread).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocAudit {
    /// Events processed before the snapshot was taken.
    pub warmup_events: u64,
    /// Events processed inside the audited window.
    pub steady_events: u64,
    /// Whether a counting allocator was actually installed.
    pub counting: bool,
    /// Heap allocations in the window (the gated invariant: 0).
    pub allocs: u64,
    /// Reallocations (growth) in the window (gated: 0).
    pub reallocs: u64,
    /// Deallocations in the window.
    pub deallocs: u64,
    /// Bytes requested by `allocs` + `reallocs` in the window.
    pub bytes: u64,
}

impl AllocAudit {
    /// Heap acquisitions in the steady window — the number that must be
    /// zero for the run to count as allocation-free.
    pub fn acquisitions(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// A flat, serializable digest of a run — what sweep scripts and the CLI's
/// `--json` mode emit.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Scheme display name.
    pub scheme: String,
    /// Flows launched / completed.
    pub total_flows: usize,
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Mean short-flow FCT (seconds).
    pub short_afct_s: f64,
    /// 99th-percentile short-flow FCT (seconds).
    pub short_p99_s: f64,
    /// Fraction of deadline-carrying flows that missed.
    pub deadline_miss: f64,
    /// Mean long-flow goodput (bytes/second).
    pub long_goodput_bps: f64,
    /// Short-flow out-of-order arrival ratio.
    pub short_reorder: f64,
    /// Long-flow out-of-order arrival ratio.
    pub long_reorder: f64,
    /// Packets dropped.
    pub drops: u64,
    /// Packets ECN-marked.
    pub marks: u64,
    /// Mean leaf-uplink utilization.
    pub mean_uplink_utilization: f64,
    /// Engine events processed.
    pub events: u64,
    /// Simulated duration (seconds).
    pub sim_end_s: f64,
    /// Wall-clock runtime (milliseconds).
    pub wall_ms: u128,
}

/// Everything measured in one run. Time series carry
/// `(bucket_start_seconds, value)` points.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheme display name.
    pub scheme: String,
    /// Flows that were launched.
    pub total_flows: usize,
    /// Flows that delivered every byte.
    pub completed: usize,
    /// Short-flow FCT summary.
    pub fct_short: FctSummary,
    /// Long-flow FCT summary.
    pub fct_long: FctSummary,
    /// The full recorder, for CDFs (Fig. 3(c)).
    pub fct: FctRecorder,
    /// Transport counters per class.
    pub short: ClassCounters,
    /// Transport counters per class.
    pub long: ClassCounters,
    /// Uplink queue length (packets) seen by short-flow data at enqueue —
    /// Fig. 3(a).
    pub short_qlen: SampleSet,
    /// Same for long-flow data.
    pub long_qlen: SampleSet,
    /// Per-hop queueing delay of short-flow data (seconds) — Fig. 8(b).
    pub short_qdelay: SampleSet,
    /// Pending-event count of the engine's future-event list, sampled once
    /// every 4096 processed events. The sampling schedule is a pure
    /// function of the event count, so the samples are bit-identical
    /// across FEL backends and thread counts; `bench_pr4` reads its
    /// queue-depth histogram (p50/p99) from here.
    pub fel_depth: SampleSet,
    /// Peak of the pipelined-delivery FEL occupancy bound
    /// `2·ports + pending starts/timers/housekeeping` over the same sample
    /// schedule. Computed from mode-independent counters, so it is
    /// digest-stable; in pipelined delivery every `fel_depth` sample is
    /// asserted ≤ the bound whenever the audit is on.
    pub fel_bound_peak: u64,
    /// Instantaneous reorder ratio of short flows over time — Fig. 8(a).
    pub short_reorder_series: Vec<(f64, f64)>,
    /// Instantaneous reorder ratio of long flows — Fig. 9(a).
    pub long_reorder_series: Vec<(f64, f64)>,
    /// Aggregate long-flow goodput (bytes/s) over time — Fig. 9(b).
    pub long_goodput_series: Vec<(f64, f64)>,
    /// Mean queueing delay of short flows over time (seconds) — Fig. 8(b).
    pub short_qdelay_series: Vec<(f64, f64)>,
    /// Utilization of each leaf uplink: `busy_time / sim_duration`,
    /// indexed `[leaf][uplink]` — Fig. 4(a).
    pub uplink_utilization: Vec<Vec<f64>>,
    /// Packets dropped at switch/host queues.
    pub drops: u64,
    /// Packets ECN-marked.
    pub marks: u64,
    /// Peak balancer state across leaves, in bytes (Fig. 15(b)).
    pub lb_state_bytes_peak: usize,
    /// TLB only: `(time_s, q_th_bytes)` at each granularity update.
    pub qth_series: Vec<(f64, f64)>,
    /// Per-packet LB decisions taken (≈ upstream packets).
    pub lb_decisions: u64,
    /// Long-flow reroutes summed over leaves, for schemes that report them
    /// ([`tlb_switch::LoadBalancer::long_reroutes`]); `None` otherwise.
    /// The fuzzer's reroute oracle reads this: a TLB pinned at
    /// `q_th = u64::MAX` must report zero.
    pub tlb_long_reroutes: Option<u64>,
    /// Failure-forced reroutes summed over LB switches, for schemes that
    /// report them ([`tlb_switch::LoadBalancer::forced_reroutes`]);
    /// `None` otherwise. Kept separate from `tlb_long_reroutes` so the
    /// voluntary-reroute oracle stays strict under link failures.
    pub forced_reroutes: Option<u64>,
    /// Hybrid fidelity only ([`crate::FidelityKind::Hybrid`]): long-flow
    /// tails migrated from the packet path onto the fluid tier. Always 0
    /// under packet fidelity.
    pub fluid_migrations: u64,
    /// Hybrid fidelity only: fluid tails handed back to the packet path
    /// because a failure took down a link on their route.
    pub fluid_demotions: u64,
    /// Hybrid fidelity only: payload bytes handed to the fluid tier at
    /// migration (demotions return the undelivered remainder to the
    /// packet path, tracked separately in the conservation check).
    pub fluid_bytes: u64,
    /// Path traces for [`crate::SimConfig::trace_flows`] (in time order).
    pub traces: Vec<TraceEvent>,
    /// With [`crate::SimConfig::sample_queues`]: `(time_s, qlen_pkts per
    /// leaf-0 uplink)` sampled every series bucket.
    pub queue_series: Vec<(f64, Vec<u32>)>,
    /// Events processed by the engine.
    pub events: u64,
    /// Packet-conservation audit outcome — `Some` iff the run had
    /// [`crate::SimConfig::audit`] set (a failing audit panics instead of
    /// reporting).
    pub audit: Option<crate::audit::AuditReport>,
    /// Steady-state allocation audit — `Some` iff the run had
    /// [`crate::SimConfig::alloc_warmup_events`] set and reached it.
    pub alloc_audit: Option<AllocAudit>,
    /// Simulated time at which the run ended (never past the horizon).
    pub sim_end: SimTime,
    /// Wall-clock runtime.
    pub wall: std::time::Duration,
    /// `Some(workers)` iff the sharded engine executed this run (with that
    /// many worker threads); `None` for the serial engine, including when
    /// [`tlb_engine::EngineKind::Sharded`] was requested but a
    /// precondition forced the serial fallback. Results are bit-identical
    /// either way — this records which machinery produced them.
    pub engine_workers: Option<u32>,
    /// Parallel windows the sharded engine opened (0 for serial runs and
    /// for sharded runs small enough to execute entirely in the
    /// serialized tail). Tests use this to prove a job actually
    /// exercised barrier-synchronized parallel execution.
    pub sharded_windows: u64,
}

impl RunReport {
    /// Mean long-flow goodput in bytes/second (completed long flows).
    pub fn long_throughput(&self) -> f64 {
        self.fct_long.mean_goodput
    }

    /// Mean utilization over all leaf uplinks.
    pub fn mean_uplink_utilization(&self) -> f64 {
        let all: Vec<f64> = self.uplink_utilization.iter().flatten().copied().collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        }
    }

    /// One-line human summary.
    pub fn one_line(&self) -> String {
        format!(
            "{:<10} short: afct={:.3}ms p99={:.3}ms miss={:.1}% | long: gput={:.1}Mbps reord={:.3}% | done {}/{}",
            self.scheme,
            self.fct_short.afct * 1e3,
            self.fct_short.p99 * 1e3,
            self.fct_short.deadline_miss * 100.0,
            self.long_throughput() * 8.0 / 1e6,
            self.long.reorder_ratio() * 100.0,
            self.completed,
            self.total_flows,
        )
    }

    /// Class summary accessor by enum.
    pub fn summary(&self, class: FlowClass) -> &FctSummary {
        match class {
            FlowClass::Short => &self.fct_short,
            FlowClass::Long => &self.fct_long,
        }
    }

    /// The flat serializable digest of this run.
    pub fn to_summary(&self) -> Summary {
        Summary {
            scheme: self.scheme.clone(),
            total_flows: self.total_flows,
            completed: self.completed,
            short_afct_s: self.fct_short.afct,
            short_p99_s: self.fct_short.p99,
            deadline_miss: self.fct_short.deadline_miss,
            long_goodput_bps: self.long_throughput(),
            short_reorder: self.short.reorder_ratio(),
            long_reorder: self.long.reorder_ratio(),
            drops: self.drops,
            marks: self.marks,
            mean_uplink_utilization: self.mean_uplink_utilization(),
            events: self.events,
            sim_end_s: self.sim_end.as_secs_f64(),
            wall_ms: self.wall.as_millis(),
        }
    }
}
