//! # tlb-simnet — the packet-level data-center network simulator
//!
//! This crate wires everything together into the NS2-equivalent substrate
//! the paper evaluates on: a leaf-spine fabric of output-queued switches
//! ([`tlb_switch`]), DCTCP endpoints ([`tlb_transport`]), a pluggable leaf
//! load balancer ([`tlb_switch::LoadBalancer`] — TLB from [`tlb_core`],
//! baselines from [`tlb_lb`]), traffic from [`tlb_workload`], and
//! measurement from [`tlb_metrics`].
//!
//! ## Quick start
//!
//! ```
//! use tlb_simnet::{Scheme, SimConfig, Simulation};
//! use tlb_workload::{basic_mix, BasicMixConfig};
//! use tlb_engine::SimRng;
//!
//! let cfg = SimConfig::basic_paper(Scheme::Tlb(tlb_core::TlbConfig::paper_default()));
//! let mut rng = SimRng::new(1);
//! let mut mix = BasicMixConfig::paper_default();
//! mix.n_short = 20; // keep the doctest fast
//! mix.n_long = 1;
//! let flows = basic_mix(&cfg.topo, &mix, &mut rng);
//! let report = Simulation::new(cfg, flows).run();
//! assert!(report.completed > 0);
//! ```

pub mod audit;
pub mod config;
pub mod dispatch;
pub mod network;
pub mod report;
pub mod runner;
pub mod scheme;

pub use audit::{AuditReport, KindCounts};
pub use config::{
    DeliveryKind, FailureAction, FailureEvent, FailureTarget, FidelityKind, LinkEvent, SimConfig,
};
pub use dispatch::{AnyLb, LbDispatch};
pub use network::Simulation;
pub use report::{Hop, RunReport, Summary, TraceEvent};
pub use runner::{run_all, run_all_ref, run_one, run_one_ref};
pub use scheme::Scheme;
