//! TLB configuration (paper §4–§7 parameter sets).

use tlb_engine::SimTime;

/// How the long-flow switching threshold is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdMode {
    /// Recompute `q_th` from the Eq. 9 model every update interval — the
    /// paper's TLB.
    Adaptive,
    /// Pin `q_th` to a constant (bytes). Used by the Fig. 7 verification
    /// harness, which searches for the smallest fixed threshold that meets
    /// all deadlines, and by ablations.
    Fixed(u64),
}

/// All tunables of the TLB scheme. Field defaults mirror the paper.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Granularity update interval `t` (paper: 500 µs, following CONGA).
    pub update_interval: SimTime,
    /// Idle-flow sampling window (paper §5: same 500 µs as the update
    /// interval — records without packets for this long are dropped).
    pub idle_timeout: SimTime,
    /// Bytes after which a flow is reclassified as long (paper §5: 100 KB).
    pub short_threshold_bytes: u64,
    /// Long-flow maximum window `W_L` in bytes (paper: 64 KB Linux receive
    /// buffer default).
    pub w_long_bytes: f64,
    /// Round-trip propagation delay `RTT` the model assumes.
    pub rtt: SimTime,
    /// Lower bound of the short-flow deadline distribution.
    pub deadline_lo: SimTime,
    /// Upper bound of the short-flow deadline distribution.
    pub deadline_hi: SimTime,
    /// Which percentile of the deadline distribution to protect (paper
    /// §6.3: the 25th percentile gives the best trade-off; Fig. 12 sweeps
    /// 5th/25th/50th/75th).
    pub deadline_percentile: f64,
    /// Prior for the mean short-flow size `X` in bytes (paper §4.2: 70 KB).
    pub mean_short_prior: f64,
    /// If true, refine `X` online with an EWMA over completed short flows.
    pub estimate_mean_short: bool,
    /// EWMA gain for the online `X` estimate.
    pub ewma_gain: f64,
    /// TCP segment payload size in bytes.
    pub mss: u32,
    /// Threshold selection mode.
    pub threshold_mode: ThresholdMode,
}

impl TlbConfig {
    /// The NS2-simulation parameter set (§4.2/§6.1): 1 Gbit/s, 100 µs RTT,
    /// t = 500 µs, deadlines U[5 ms, 25 ms], D at the 25th percentile.
    pub fn paper_default() -> TlbConfig {
        TlbConfig {
            update_interval: SimTime::from_micros(500),
            idle_timeout: SimTime::from_micros(500),
            short_threshold_bytes: 100_000,
            w_long_bytes: 65_535.0,
            rtt: SimTime::from_micros(100),
            deadline_lo: SimTime::from_millis(5),
            deadline_hi: SimTime::from_millis(25),
            deadline_percentile: 0.25,
            mean_short_prior: 70_000.0,
            estimate_mean_short: false,
            ewma_gain: 0.1,
            mss: 1460,
            threshold_mode: ThresholdMode::Adaptive,
        }
    }

    /// The Mininet-testbed parameter set (§7): 20 Mbit/s links, ~8 ms RTT,
    /// 15 ms update interval, deadlines U[2 s, 6 s], D at the 25th
    /// percentile (3 s).
    pub fn testbed_default() -> TlbConfig {
        TlbConfig {
            update_interval: SimTime::from_millis(15),
            idle_timeout: SimTime::from_millis(15),
            short_threshold_bytes: 100_000,
            w_long_bytes: 65_535.0,
            rtt: SimTime::from_millis(8),
            deadline_lo: SimTime::from_secs(2),
            deadline_hi: SimTime::from_secs(6),
            deadline_percentile: 0.25,
            mean_short_prior: 70_000.0,
            estimate_mean_short: false,
            ewma_gain: 0.1,
            mss: 1460,
            threshold_mode: ThresholdMode::Adaptive,
        }
    }

    /// The protected deadline `D`: the configured percentile of the
    /// (uniform) deadline distribution.
    pub fn deadline(&self) -> SimTime {
        let lo = self.deadline_lo.as_nanos() as f64;
        let hi = self.deadline_hi.as_nanos() as f64;
        SimTime::from_nanos((lo + self.deadline_percentile * (hi - lo)).round() as u64)
    }

    /// Check configuration consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.update_interval.is_zero() {
            return Err("update_interval must be positive".into());
        }
        if self.deadline_hi < self.deadline_lo {
            return Err("deadline_hi < deadline_lo".into());
        }
        if !(0.0..=1.0).contains(&self.deadline_percentile) {
            return Err(format!(
                "deadline_percentile out of [0,1]: {}",
                self.deadline_percentile
            ));
        }
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.w_long_bytes <= 0.0 || self.mean_short_prior <= 0.0 {
            return Err("window/size parameters must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.ewma_gain) {
            return Err(format!("ewma_gain out of [0,1]: {}", self.ewma_gain));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deadline_is_10ms() {
        // U[5 ms, 25 ms] at the 25th percentile = 10 ms (paper §4.2).
        assert_eq!(
            TlbConfig::paper_default().deadline(),
            SimTime::from_millis(10)
        );
    }

    #[test]
    fn testbed_deadline_is_3s() {
        // U[2 s, 6 s] at the 25th percentile = 3 s (paper §7).
        assert_eq!(
            TlbConfig::testbed_default().deadline(),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn percentile_sweep_matches_fig12() {
        // The Fig. 12 variants: 5th/25th/50th/75th of U[5, 25] ms.
        let mut cfg = TlbConfig::paper_default();
        for (pct, expect_ms) in [(0.05, 6), (0.25, 10), (0.5, 15), (0.75, 20)] {
            cfg.deadline_percentile = pct;
            assert_eq!(cfg.deadline(), SimTime::from_millis(expect_ms));
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let ok = TlbConfig::paper_default();
        ok.validate().unwrap();
        let mut bad = ok;
        bad.deadline_percentile = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.deadline_hi = SimTime::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.mss = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.update_interval = SimTime::ZERO;
        assert!(bad.validate().is_err());
    }
}
