//! # tlb-core — Traffic-aware Load Balancing with adaptive granularity
//!
//! The primary contribution of the reproduced paper (ICPP 2019): a leaf-switch
//! load balancer that reroutes **short flows per packet** onto the shortest
//! uplink queue while **long flows switch only when their current queue
//! reaches an adaptive threshold `q_th`**, recomputed every interval from the
//! measured load strength of short flows via the M/G/1 model in `tlb-model`.
//!
//! Architecture (paper §3, Fig. 6):
//!
//! * **Granularity calculator** — [`Tlb::on_tick`]: every `t` (500 µs),
//!   purge idle flow records (the §5 sampling rule), recount active
//!   short/long flows, and recompute `q_th` from Eq. 9.
//! * **Forwarding manager** — [`Tlb::choose_uplink`]: per-packet forwarding
//!   with flow classification by bytes sent (100 KB threshold, §5) and
//!   SYN/FIN-driven flow counting.

pub mod config;

pub use config::{ThresholdMode, TlbConfig};

/// The shared parser behind every `TLB_*` runtime knob (`TLB_FEL`,
/// `TLB_LB_DISPATCH`, `TLB_DELIVERY`, `TLB_FIDELITY`, `TLB_THREADS`,
/// `TLB_ENGINE`, `TLB_ALLOC_AUDIT`): one normalization rule, one
/// empty-value rule, one warning format. Implemented in `tlb-engine` (this
/// crate depends on `tlb-engine`, so the helper cannot live here without a
/// cycle) and re-exported here as the canonical import path for
/// TLB-configuration code.
pub use tlb_engine::env_knob;

use tlb_engine::{SimRng, SimTime};
use tlb_model::{q_th_min, ModelParams, QTh};
use tlb_net::{Packet, PktKind};
use tlb_switch::{FlowMap, LoadBalancer, PortView};

/// Per-flow record at the leaf switch.
#[derive(Clone, Copy, Debug)]
struct FlowState {
    /// Payload bytes observed from this flow (drives classification).
    bytes_seen: u64,
    /// Uplink the flow's previous packet took.
    port: usize,
    /// True once `bytes_seen` exceeded the short/long threshold.
    is_long: bool,
    /// True if the flow is included in the m_S/m_L counts (we saw its SYN,
    /// or re-learned it after an idle purge). Reverse ACK streams stay
    /// uncounted — they carry no payload worth modelling.
    counted: bool,
}

/// The TLB load balancer. One instance runs per leaf switch.
///
/// ```
/// use tlb_core::Tlb;
/// use tlb_engine::{SimRng, SimTime};
/// use tlb_net::{FlowId, HostId, LinkProps, Packet, PktKind};
/// use tlb_switch::{LoadBalancer, OutPort, PortView, QueueCfg};
///
/// let ports: Vec<OutPort> = (0..15)
///     .map(|_| OutPort::new(LinkProps::gbps(1.0, SimTime::ZERO), QueueCfg::paper_default()))
///     .collect();
/// let mut tlb = Tlb::paper_default();
/// let mut rng = SimRng::new(1);
///
/// // A new flow announces itself with a SYN; TLB counts it as short.
/// let syn = Packet::control(FlowId(1), HostId(0), HostId(20), PktKind::Syn, 0, SimTime::ZERO);
/// let port = tlb.choose_uplink(&syn, PortView::new(&ports), SimTime::ZERO, &mut rng);
/// assert!(port < 15);
/// assert_eq!(tlb.counts(), (1, 0)); // (m_S, m_L)
/// ```
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    flows: FlowMap<FlowState>,
    /// Active counted short flows (`m_S`).
    m_short: usize,
    /// Active counted long flows (`m_L`).
    m_long: usize,
    /// Current switching threshold in bytes; `u64::MAX` encodes "infinite"
    /// (long flows pinned).
    q_th_bytes: u64,
    /// Online estimate of the mean short-flow size `X` (EWMA over completed
    /// short flows), used when [`TlbConfig::estimate_mean_short`] is set.
    mean_short_est: f64,
    /// Number of granularity recomputations performed (diagnostics).
    updates: u64,
    /// Number of long-flow reroutes performed (diagnostics / Fig. 9).
    long_reroutes: u64,
    /// Long flows moved because their cached uplink went down. Kept apart
    /// from `long_reroutes`: these are failure-forced, not the voluntary
    /// q_th-triggered moves the Fig. 9 accounting (and the fuzzer's
    /// pinned-TLB zero-reroute oracle) reason about.
    forced_reroutes: u64,
    /// Seeded bug for the fuzzer's mutation self-check: when set, the
    /// granularity update with this index skips its threshold recompute
    /// (a stale-`q_th` interval). Only exists under `fault-inject`; never
    /// armed unless a test calls [`Tlb::fault_skip_recompute_at`].
    #[cfg(feature = "fault-inject")]
    fault_skip_recompute_at: Option<u64>,
}

impl Tlb {
    /// Build a TLB instance from its configuration.
    pub fn new(cfg: TlbConfig) -> Tlb {
        cfg.validate().expect("invalid TLB configuration");
        let q0 = match cfg.threshold_mode {
            // Before the first tick there is no load estimate; start from
            // "switch freely" which the first update (500 µs in) corrects.
            ThresholdMode::Adaptive => 0,
            ThresholdMode::Fixed(q) => q,
        };
        Tlb {
            mean_short_est: cfg.mean_short_prior,
            cfg,
            flows: FlowMap::new(),
            m_short: 0,
            m_long: 0,
            q_th_bytes: q0,
            updates: 0,
            long_reroutes: 0,
            forced_reroutes: 0,
            #[cfg(feature = "fault-inject")]
            fault_skip_recompute_at: None,
        }
    }

    /// Arm the seeded bug: the granularity update with index `update_idx`
    /// (0-based, compare [`Tlb::updates`]) skips its threshold recompute,
    /// leaving `q_th` stale for one interval. The scenario fuzzer's
    /// conformance oracle must flag the divergence — this is the mutation
    /// self-check proving the oracles have teeth.
    #[cfg(feature = "fault-inject")]
    pub fn fault_skip_recompute_at(&mut self, update_idx: u64) {
        self.fault_skip_recompute_at = Some(update_idx);
    }

    /// A TLB instance with the paper's default parameters.
    pub fn paper_default() -> Tlb {
        Tlb::new(TlbConfig::paper_default())
    }

    /// Current switching threshold (Eq. 9 output).
    pub fn q_th(&self) -> QTh {
        if self.q_th_bytes == u64::MAX {
            QTh::Infinite
        } else {
            QTh::Finite(self.q_th_bytes as f64)
        }
    }

    /// Current switching threshold in bytes (`u64::MAX` = infinite).
    pub fn q_th_bytes(&self) -> u64 {
        self.q_th_bytes
    }

    /// Currently counted (short, long) active flows — the paper's
    /// `(m_S, m_L)`.
    pub fn counts(&self) -> (usize, usize) {
        (self.m_short, self.m_long)
    }

    /// The current mean-short-flow-size estimate `X` in bytes.
    pub fn mean_short_estimate(&self) -> f64 {
        self.mean_short_est
    }

    /// How many times a long flow was rerouted to a new uplink.
    pub fn long_reroutes(&self) -> u64 {
        self.long_reroutes
    }

    /// How many long flows were moved because their uplink went down.
    pub fn forced_reroutes(&self) -> u64 {
        self.forced_reroutes
    }

    /// How many granularity updates have run.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Access the configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    fn recount(&mut self) {
        let mut ms = 0;
        let mut ml = 0;
        for (_, st) in self.flows.iter() {
            if st.counted {
                if st.is_long {
                    ml += 1;
                } else {
                    ms += 1;
                }
            }
        }
        self.m_short = ms;
        self.m_long = ml;
    }

    fn recompute_threshold(&mut self, view: PortView<'_>) {
        let params = ModelParams {
            // Live paths only: after a failure the model should reason about
            // the fabric that actually exists. Full mask -> n_ports.
            n_paths: view.n_live() as f64,
            m_short: self.m_short as f64,
            m_long: self.m_long as f64,
            capacity: view.mean_capacity(),
            rtt: self.cfg.rtt.as_secs_f64(),
            interval: self.cfg.update_interval.as_secs_f64(),
            w_long: self.cfg.w_long_bytes,
            mean_short: self.mean_short_est.max(1.0),
            mss: self.cfg.mss as f64,
            deadline: self.cfg.deadline().as_secs_f64(),
        };
        self.q_th_bytes = if self.m_long == 0 {
            // No long flows: the threshold is moot; keep them free to switch.
            0
        } else {
            q_th_min(&params).as_bytes_saturating()
        };
    }
}

impl LoadBalancer for Tlb {
    fn name(&self) -> &'static str {
        "TLB"
    }

    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize {
        let n = view.n_ports();
        let shortest = view.shortest_bytes_rand(rng);
        let threshold = self.cfg.short_threshold_bytes;
        let q_th = self.q_th_bytes;

        match pkt.kind {
            PktKind::Fin => {
                // Paper §5: a FIN decrements the active-flow count. The FIN
                // itself still needs forwarding; as a single control packet
                // it takes the shortest queue.
                if let Some(st) = self.flows.remove(pkt.flow) {
                    if st.counted {
                        if st.is_long {
                            self.m_long = self.m_long.saturating_sub(1);
                        } else {
                            self.m_short = self.m_short.saturating_sub(1);
                            if self.cfg.estimate_mean_short && st.bytes_seen > 0 {
                                let g = self.cfg.ewma_gain;
                                self.mean_short_est =
                                    (1.0 - g) * self.mean_short_est + g * st.bytes_seen as f64;
                            }
                        }
                    }
                }
                shortest
            }
            PktKind::Syn => {
                // Paper §5: a SYN increments the count; all flows start short.
                let mut newly_counted = false;
                let st = self.flows.touch_or_insert_with(pkt.flow, now, || {
                    newly_counted = true;
                    FlowState {
                        bytes_seen: 0,
                        port: shortest,
                        is_long: false,
                        counted: true,
                    }
                });
                if !newly_counted && !st.counted {
                    // Entry pre-existed from an uncounted packet; the SYN
                    // upgrades it to counted.
                    st.counted = true;
                    newly_counted = true;
                }
                let is_long = st.is_long;
                st.port = shortest;
                if newly_counted {
                    if is_long {
                        self.m_long += 1;
                    } else {
                        self.m_short += 1;
                    }
                }
                shortest
            }
            PktKind::Data => {
                let mut became_long = false;
                let mut relearned = false;
                let st = self.flows.touch_or_insert_with(pkt.flow, now, || {
                    // A data packet with no record: the flow was purged as
                    // idle and resumed (or its SYN predates this switch's
                    // state). Re-learn it as counted.
                    relearned = true;
                    FlowState {
                        bytes_seen: 0,
                        port: shortest,
                        is_long: false,
                        counted: true,
                    }
                });
                st.bytes_seen += pkt.payload_bytes as u64;
                if !st.is_long && st.bytes_seen > threshold {
                    st.is_long = true;
                    became_long = st.counted;
                }
                let mut rerouted_long = false;
                let mut forced = false;
                let port = if st.is_long {
                    // Forwarding manager, long-flow rule: stick to the
                    // current uplink until its queue reaches q_th, then move
                    // to the shortest queue. A dead uplink forces the move
                    // unconditionally (counted separately from the voluntary
                    // q_th-triggered reroutes).
                    let cur = st.port % n;
                    if !view.is_live(cur) {
                        forced = true;
                        st.port = shortest;
                        shortest
                    } else if view.qlen_bytes(cur) >= q_th {
                        rerouted_long = cur != shortest;
                        st.port = shortest;
                        shortest
                    } else {
                        cur
                    }
                } else {
                    // Short-flow rule: every packet to the shortest queue.
                    st.port = shortest;
                    shortest
                };
                if relearned {
                    if st.is_long {
                        self.m_long += 1;
                    } else {
                        self.m_short += 1;
                    }
                } else if became_long {
                    self.m_short = self.m_short.saturating_sub(1);
                    self.m_long += 1;
                }
                if rerouted_long {
                    self.long_reroutes += 1;
                }
                if forced {
                    self.forced_reroutes += 1;
                }
                port
            }
            // SYN-ACK / ACK streams (reverse direction at this leaf): pure
            // control traffic, routed per packet to the shortest queue, and
            // tracked uncounted so they do not distort m_S.
            PktKind::SynAck | PktKind::Ack => {
                let st = self
                    .flows
                    .touch_or_insert_with(pkt.flow, now, || FlowState {
                        bytes_seen: 0,
                        port: shortest,
                        is_long: false,
                        counted: false,
                    });
                st.port = shortest;
                shortest
            }
        }
    }

    fn on_tick(&mut self, view: PortView<'_>, now: SimTime) {
        // Granularity calculator (paper §3.1 + §5): sample out idle flows,
        // re-estimate the load strength, update q_th.
        self.flows.purge_idle(now, self.cfg.idle_timeout);
        self.recount();
        #[cfg(feature = "fault-inject")]
        let fault_skips = self.fault_skip_recompute_at == Some(self.updates);
        #[cfg(not(feature = "fault-inject"))]
        let fault_skips = false;
        if !fault_skips && matches!(self.cfg.threshold_mode, ThresholdMode::Adaptive) {
            self.recompute_threshold(view);
        }
        self.updates += 1;
    }

    fn tick_interval(&self) -> Option<SimTime> {
        Some(self.cfg.update_interval)
    }

    fn state_bytes(&self) -> usize {
        self.flows.state_bytes() + std::mem::size_of::<Tlb>()
    }

    fn q_threshold(&self) -> Option<u64> {
        Some(self.q_th_bytes)
    }

    fn long_reroutes(&self) -> Option<u64> {
        Some(self.long_reroutes)
    }

    fn forced_reroutes(&self) -> Option<u64> {
        Some(self.forced_reroutes)
    }
}

#[cfg(test)]
mod tests;
