//! Unit tests for the TLB forwarding manager and granularity calculator.

use super::*;
use tlb_net::{FlowId, HostId, LinkProps};
use tlb_switch::{OutPort, QueueCfg};

fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
    let link = LinkProps::gbps(1.0, SimTime::ZERO);
    let cfg = QueueCfg {
        capacity_pkts: 4096,
        ecn_threshold_pkts: None,
    };
    lens.iter()
        .map(|&l| {
            let mut p = OutPort::new(link, cfg);
            for s in 0..l {
                p.enqueue(
                    Packet::data(
                        FlowId(999),
                        HostId(0),
                        HostId(1),
                        s as u32,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                    SimTime::ZERO,
                );
            }
            p
        })
        .collect()
}

fn syn(flow: u32) -> Packet {
    Packet::control(
        FlowId(flow),
        HostId(0),
        HostId(9),
        PktKind::Syn,
        0,
        SimTime::ZERO,
    )
}

fn fin(flow: u32) -> Packet {
    Packet::control(
        FlowId(flow),
        HostId(0),
        HostId(9),
        PktKind::Fin,
        0,
        SimTime::ZERO,
    )
}

fn data(flow: u32, seq: u32, payload: u32) -> Packet {
    Packet::data(
        FlowId(flow),
        HostId(0),
        HostId(9),
        seq,
        payload,
        40,
        SimTime::ZERO,
    )
}

fn us(n: u64) -> SimTime {
    SimTime::from_micros(n)
}

#[test]
fn syn_fin_counting() {
    let ps = ports_with_lens(&[0, 0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    assert_eq!(tlb.counts(), (0, 0));
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&syn(2), PortView::new(&ps), us(0), &mut rng);
    assert_eq!(tlb.counts(), (2, 0));
    tlb.choose_uplink(&fin(1), PortView::new(&ps), us(1), &mut rng);
    assert_eq!(tlb.counts(), (1, 0));
    // FIN retransmission: no double decrement.
    tlb.choose_uplink(&fin(1), PortView::new(&ps), us(2), &mut rng);
    assert_eq!(tlb.counts(), (1, 0));
    // SYN retransmission: no double increment.
    tlb.choose_uplink(&syn(2), PortView::new(&ps), us(3), &mut rng);
    assert_eq!(tlb.counts(), (1, 0));
}

#[test]
fn classification_flips_at_100kb() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    assert_eq!(tlb.counts(), (1, 0));
    // Send just under the threshold.
    let mut sent = 0u64;
    let mut seq = 0;
    while sent + 1460 <= 100_000 {
        tlb.choose_uplink(&data(1, seq, 1460), PortView::new(&ps), us(1), &mut rng);
        sent += 1460;
        seq += 1;
    }
    assert_eq!(tlb.counts(), (1, 0), "still short at {sent} bytes");
    // Cross the threshold.
    tlb.choose_uplink(&data(1, seq, 1460), PortView::new(&ps), us(2), &mut rng);
    assert_eq!(tlb.counts(), (0, 1), "reclassified long");
    // FIN of a long flow decrements m_L.
    tlb.choose_uplink(&fin(1), PortView::new(&ps), us(3), &mut rng);
    assert_eq!(tlb.counts(), (0, 0));
}

#[test]
fn boundary_99kb_stays_short() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&data(1, 0, 99_000), PortView::new(&ps), us(1), &mut rng);
    assert_eq!(tlb.counts(), (1, 0), "99 KB sent: still a short flow");
}

#[test]
fn boundary_exactly_100kb_stays_short() {
    // The rule is strictly-greater: `bytes_seen > threshold`. A flow that
    // has sent exactly 100 KB has not *exceeded* 100 KB yet.
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&data(1, 0, 100_000), PortView::new(&ps), us(1), &mut rng);
    assert_eq!(tlb.counts(), (1, 0), "exactly 100 KB: not yet long");
}

#[test]
fn boundary_one_mss_past_100kb_is_long() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&data(1, 0, 100_000), PortView::new(&ps), us(1), &mut rng);
    tlb.choose_uplink(&data(1, 1, 1460), PortView::new(&ps), us(2), &mut rng);
    assert_eq!(tlb.counts(), (0, 1), "100 KB + 1 MSS: reclassified long");
}

#[test]
fn boundary_midlife_crossing_switches_forwarding_rule() {
    // A flow that crosses 100 KB mid-life must change forwarding rule on
    // the crossing packet: per-packet spraying before, sticky after.
    let mut cfg = TlbConfig::paper_default();
    cfg.threshold_mode = ThresholdMode::Fixed(u64::MAX); // pin long flows
    let mut tlb = Tlb::new(cfg);
    let mut rng = SimRng::new(0);
    let ps = ports_with_lens(&[4, 0, 2]);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    // Still short (exactly 100 KB): the packet takes the shortest queue.
    assert_eq!(
        tlb.choose_uplink(&data(1, 0, 100_000), PortView::new(&ps), us(1), &mut rng),
        1,
        "short rule: shortest queue"
    );
    // The next packet crosses the boundary, so it is routed as long:
    // stick to port 1 even though port 0 is now strictly shorter.
    let ps2 = ports_with_lens(&[0, 4, 2]);
    assert_eq!(
        tlb.choose_uplink(&data(1, 1, 1460), PortView::new(&ps2), us(2), &mut rng),
        1,
        "long rule from the crossing packet onwards: sticky"
    );
    assert_eq!(tlb.counts(), (0, 1));
    assert_eq!(tlb.long_reroutes(), 0, "pinned long flow never reroutes");
}

#[test]
fn short_flows_take_shortest_queue_per_packet() {
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    let ps = ports_with_lens(&[4, 0, 2]);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    assert_eq!(
        tlb.choose_uplink(&data(1, 0, 1460), PortView::new(&ps), us(1), &mut rng),
        1
    );
    // Queue state changes -> next packet follows the new shortest.
    let ps2 = ports_with_lens(&[0, 4, 2]);
    assert_eq!(
        tlb.choose_uplink(&data(1, 1, 1460), PortView::new(&ps2), us(2), &mut rng),
        0
    );
}

/// Make flow 1 long by pumping bytes through it.
fn make_long(tlb: &mut Tlb, ps: &[OutPort], rng: &mut SimRng) {
    tlb.choose_uplink(&syn(1), PortView::new(ps), us(0), rng);
    for seq in 0..70 {
        tlb.choose_uplink(&data(1, seq, 1460), PortView::new(ps), us(1), rng);
    }
    assert_eq!(tlb.counts(), (0, 1));
}

#[test]
fn long_flow_sticks_below_threshold() {
    let mut cfg = TlbConfig::paper_default();
    cfg.threshold_mode = ThresholdMode::Fixed(10_000);
    let mut tlb = Tlb::new(cfg);
    let mut rng = SimRng::new(0);
    let ps = ports_with_lens(&[0, 0, 0]);
    make_long(&mut tlb, &ps, &mut rng);
    // All queues empty: the long flow must stay on its current port even
    // though every port ties as "shortest".
    let cur = tlb.choose_uplink(&data(1, 100, 1460), PortView::new(&ps), us(2), &mut rng);
    // Its port now has 2 packets (in a real switch); emulate a queue shorter
    // than q_th on cur and an empty other port.
    let mut lens = [0usize; 3];
    lens[cur] = 5; // 7500 B < 10 kB threshold
    let ps2 = ports_with_lens(&lens);
    assert_eq!(
        tlb.choose_uplink(&data(1, 101, 1460), PortView::new(&ps2), us(3), &mut rng),
        cur,
        "below q_th the long flow must not switch"
    );
}

#[test]
fn long_flow_switches_at_threshold() {
    let mut cfg = TlbConfig::paper_default();
    cfg.threshold_mode = ThresholdMode::Fixed(10_000);
    let mut tlb = Tlb::new(cfg);
    let mut rng = SimRng::new(0);
    let ps = ports_with_lens(&[0, 0, 0]);
    make_long(&mut tlb, &ps, &mut rng);
    let cur = tlb.choose_uplink(&data(1, 100, 1460), PortView::new(&ps), us(2), &mut rng);
    // Pile the current queue past q_th: 8 pkts * 1500 B = 12 kB >= 10 kB.
    let mut lens = [0usize; 3];
    lens[cur] = 8;
    let ps2 = ports_with_lens(&lens);
    let newp = tlb.choose_uplink(&data(1, 101, 1460), PortView::new(&ps2), us(3), &mut rng);
    assert_ne!(newp, cur, "at q_th the long flow reroutes to the shortest");
    assert_eq!(tlb.long_reroutes(), 1);
}

#[test]
fn adaptive_threshold_reacts_to_load() {
    let ps = ports_with_lens(&[0; 15]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    // The paper's basic setup: 3 long flows, initially no short flows.
    for f in 1..=3 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(0), &mut rng);
        for seq in 0..70 {
            tlb.choose_uplink(&data(f, seq, 1460), PortView::new(&ps), us(1), &mut rng);
        }
    }
    tlb.on_tick(PortView::new(&ps), us(500));
    assert_eq!(tlb.counts(), (0, 3));
    let q_low = tlb.q_th_bytes();
    // With m_S = 0 Eq. 9 still yields a small residual threshold
    // (m_L*W_L*t/RTT/n - t*C ~ 3 kB, about two packets): effectively free
    // switching.
    assert!(
        q_low < 5_000,
        "no short flows -> tiny threshold, got {q_low}"
    );

    // Add 100 short flows -> q_th must grow.
    for f in 100..200 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(501), &mut rng);
    }
    // Keep the long flows active so the purge doesn't drop them.
    for f in 1..=3 {
        tlb.choose_uplink(&data(f, 200, 1460), PortView::new(&ps), us(900), &mut rng);
    }
    tlb.on_tick(PortView::new(&ps), us(1000));
    assert_eq!(tlb.counts(), (100, 3));
    let q_high = tlb.q_th_bytes();
    assert!(
        q_high > q_low,
        "heavy short load must raise q_th: {q_high} vs {q_low}"
    );
    // Fig. 7(a) ballpark at m_S=100, m_L=3: tens of kilobytes.
    assert!(
        (10_000..1_000_000).contains(&q_high),
        "q_th out of plausible range: {q_high}"
    );
}

#[test]
fn idle_flows_are_sampled_out() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&syn(2), PortView::new(&ps), us(0), &mut rng);
    assert_eq!(tlb.counts(), (2, 0));
    // Flow 2 keeps talking; flow 1 goes silent (lost FIN).
    tlb.choose_uplink(&data(2, 0, 1460), PortView::new(&ps), us(900), &mut rng);
    tlb.on_tick(PortView::new(&ps), us(1000));
    assert_eq!(tlb.counts(), (1, 0), "idle flow record removed by sampling");
}

#[test]
fn relearned_data_flow_is_counted_again() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.on_tick(PortView::new(&ps), us(1000)); // purges the idle flow
    assert_eq!(tlb.counts(), (0, 0));
    tlb.choose_uplink(&data(1, 5, 1460), PortView::new(&ps), us(1001), &mut rng);
    assert_eq!(tlb.counts(), (1, 0), "resumed flow re-counted");
}

#[test]
fn data_after_fin_is_relearned_then_sampled_out() {
    // A straggler data packet arriving after the flow's FIN (retransmission
    // raced the teardown) hits the removed-record path: the switch has no
    // state for it and re-learns the flow as counted. That transient
    // over-count of m_S must be temporary — the flow never speaks again, so
    // the idle purge has to reclaim the record and recount back to zero.
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    tlb.choose_uplink(&data(1, 0, 1460), PortView::new(&ps), us(1), &mut rng);
    tlb.choose_uplink(&fin(1), PortView::new(&ps), us(2), &mut rng);
    assert_eq!(tlb.counts(), (0, 0), "FIN closes the flow");

    tlb.choose_uplink(&data(1, 0, 1460), PortView::new(&ps), us(3), &mut rng);
    assert_eq!(
        tlb.counts(),
        (1, 0),
        "data after FIN re-learns the flow as counted"
    );

    tlb.on_tick(PortView::new(&ps), us(1500));
    assert_eq!(
        tlb.counts(),
        (0, 0),
        "idle purge must recover m_S from the post-FIN re-learn"
    );
}

#[test]
fn ack_streams_are_not_counted() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    let ack = Packet::control(
        FlowId(7),
        HostId(9),
        HostId(0),
        PktKind::Ack,
        3,
        SimTime::ZERO,
    );
    let synack = Packet::control(
        FlowId(7),
        HostId(9),
        HostId(0),
        PktKind::SynAck,
        0,
        SimTime::ZERO,
    );
    tlb.choose_uplink(&synack, PortView::new(&ps), us(0), &mut rng);
    for i in 0..50 {
        tlb.choose_uplink(&ack, PortView::new(&ps), us(i), &mut rng);
    }
    assert_eq!(tlb.counts(), (0, 0));
}

#[test]
fn acks_take_shortest_queue() {
    let ps = ports_with_lens(&[3, 0, 5]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    let ack = Packet::control(
        FlowId(7),
        HostId(9),
        HostId(0),
        PktKind::Ack,
        3,
        SimTime::ZERO,
    );
    assert_eq!(
        tlb.choose_uplink(&ack, PortView::new(&ps), us(0), &mut rng),
        1
    );
}

#[test]
fn mean_short_ewma_tracks_completions() {
    let ps = ports_with_lens(&[0, 0]);
    let mut cfg = TlbConfig::paper_default();
    cfg.estimate_mean_short = true;
    cfg.ewma_gain = 0.5;
    cfg.mean_short_prior = 70_000.0;
    let mut tlb = Tlb::new(cfg);
    let mut rng = SimRng::new(0);
    // A 14.6 kB short flow completes.
    tlb.choose_uplink(&syn(1), PortView::new(&ps), us(0), &mut rng);
    for seq in 0..10 {
        tlb.choose_uplink(&data(1, seq, 1460), PortView::new(&ps), us(1), &mut rng);
    }
    tlb.choose_uplink(&fin(1), PortView::new(&ps), us(2), &mut rng);
    let est = tlb.mean_short_estimate();
    let expect = 0.5 * 70_000.0 + 0.5 * 14_600.0;
    assert!((est - expect).abs() < 1.0, "est {est} != {expect}");
}

#[test]
fn fixed_mode_never_updates_threshold() {
    let ps = ports_with_lens(&[0; 8]);
    let mut cfg = TlbConfig::paper_default();
    cfg.threshold_mode = ThresholdMode::Fixed(12_345);
    let mut tlb = Tlb::new(cfg);
    let mut rng = SimRng::new(0);
    for f in 0..50 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(0), &mut rng);
    }
    tlb.on_tick(PortView::new(&ps), us(500));
    assert_eq!(tlb.q_th_bytes(), 12_345);
}

#[test]
fn no_long_flows_means_free_switching() {
    let ps = ports_with_lens(&[0; 15]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    for f in 0..200 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(0), &mut rng);
    }
    tlb.on_tick(PortView::new(&ps), us(500));
    // m_L = 0: threshold is irrelevant, kept at 0.
    assert_eq!(tlb.q_th_bytes(), 0);
}

#[test]
fn saturated_short_load_pins_long_flows() {
    // So many short flows that n_S_required >= n: q_th must be "infinite".
    let ps = ports_with_lens(&[0, 0]); // only 2 paths
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    // One long flow.
    make_long(&mut tlb, &ps, &mut rng);
    // Plus an avalanche of short flows.
    for f in 100..1100 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(400), &mut rng);
    }
    tlb.choose_uplink(&data(1, 500, 1460), PortView::new(&ps), us(450), &mut rng);
    tlb.on_tick(PortView::new(&ps), us(500));
    assert_eq!(tlb.q_th_bytes(), u64::MAX, "pinned long flows");
    // And the long flow indeed refuses to move off a hugely built-up queue.
    let cur_before = {
        let mut lens = [40usize, 0];
        // ensure the long flow's current port is 0 for the check below
        let ps2 = ports_with_lens(&[0, 0]);
        let cur = tlb.choose_uplink(&data(1, 501, 1460), PortView::new(&ps2), us(501), &mut rng);
        lens.swap(0, cur); // put the big queue on the long flow's port
        let ps3 = ports_with_lens(&lens);
        (
            cur,
            tlb.choose_uplink(&data(1, 502, 1460), PortView::new(&ps3), us(502), &mut rng),
        )
    };
    assert_eq!(cur_before.0, cur_before.1, "pinned flow must not switch");
}

#[test]
fn state_bytes_grow_with_flows() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    let mut rng = SimRng::new(0);
    let empty = tlb.state_bytes();
    for f in 0..100 {
        tlb.choose_uplink(&syn(f), PortView::new(&ps), us(0), &mut rng);
    }
    assert!(tlb.state_bytes() > empty);
}

#[test]
fn tick_interval_matches_config() {
    let tlb = Tlb::paper_default();
    assert_eq!(tlb.tick_interval(), Some(SimTime::from_micros(500)));
    assert_eq!(tlb.name(), "TLB");
}

#[test]
fn updates_counter_increments() {
    let ps = ports_with_lens(&[0, 0]);
    let mut tlb = Tlb::paper_default();
    assert_eq!(tlb.updates(), 0);
    tlb.on_tick(PortView::new(&ps), us(500));
    tlb.on_tick(PortView::new(&ps), us(1000));
    assert_eq!(tlb.updates(), 2);
}

#[test]
fn q_th_accessor_reports_infinite() {
    let mut cfg = TlbConfig::paper_default();
    cfg.threshold_mode = ThresholdMode::Fixed(u64::MAX);
    let tlb = Tlb::new(cfg);
    assert_eq!(tlb.q_th(), tlb_model::QTh::Infinite);
    let mut cfg2 = TlbConfig::paper_default();
    cfg2.threshold_mode = ThresholdMode::Fixed(500);
    let tlb2 = Tlb::new(cfg2);
    assert_eq!(tlb2.q_th(), tlb_model::QTh::Finite(500.0));
}

#[test]
#[should_panic(expected = "invalid TLB configuration")]
fn invalid_config_panics() {
    let mut cfg = TlbConfig::paper_default();
    cfg.deadline_percentile = 2.0;
    let _ = Tlb::new(cfg);
}
