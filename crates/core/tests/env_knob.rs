//! The deduplicated `TLB_*` knob parser, exercised through the `tlb-core`
//! re-export every knob site goes through (`TLB_FEL`, `TLB_LB_DISPATCH`,
//! `TLB_DELIVERY`, `TLB_FIDELITY`, `TLB_THREADS`, `TLB_ENGINE`,
//! `TLB_ALLOC_AUDIT`).

use tlb_core::env_knob;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Knob {
    A,
    B,
}

const OPTIONS: &[(&str, Knob)] = &[("alpha", Knob::A), ("beta", Knob::B)];

/// One test body for every environment interaction: the process environment
/// is global, so the set/invalid/empty/unset sequences must not run
/// concurrently on the same variable.
#[test]
fn invalid_values_fall_back_to_the_default_with_one_message_shape() {
    let var = "TLB_CORE_ENV_KNOB_TEST";

    // Valid values, normalized like every knob site normalizes.
    std::env::set_var(var, "  BeTa ");
    assert_eq!(env_knob::choice(var, Knob::A, OPTIONS), Knob::B);

    // Invalid values warn (format pinned below) and fall back.
    std::env::set_var(var, "gamma");
    assert_eq!(env_knob::choice(var, Knob::A, OPTIONS), Knob::A);
    std::env::set_var(var, "gamma");
    assert_eq!(env_knob::choice(var, Knob::B, OPTIONS), Knob::B);

    // Empty and unset fall back silently.
    std::env::set_var(var, "");
    assert_eq!(env_knob::choice(var, Knob::A, OPTIONS), Knob::A);
    std::env::remove_var(var);
    assert_eq!(env_knob::choice(var, Knob::A, OPTIONS), Knob::A);

    // Custom-grammar knobs (`TLB_THREADS`-style) reject through the same
    // machinery.
    let parse = |s: &str| {
        s.parse::<u32>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "want a positive integer".to_string())
    };
    std::env::set_var(var, "3");
    assert_eq!(env_knob::parse_with(var, 1u32, parse), 3);
    for bad in ["0", "-2", "many"] {
        std::env::set_var(var, bad);
        assert_eq!(
            env_knob::parse_with(var, 1u32, parse),
            1,
            "{bad:?} must fall back"
        );
    }
    std::env::remove_var(var);
}

#[test]
fn message_components_are_consistent_across_knobs() {
    // The `want …` clause is generated, not hand-written per site, so all
    // knobs phrase rejection identically.
    assert_eq!(
        env_knob::lookup("nope", OPTIONS),
        Err("want `alpha` or `beta`".to_string())
    );
    assert_eq!(
        env_knob::expectation(&[("calendar", 0), ("heap", 1)]),
        "want `calendar` or `heap`"
    );
    assert_eq!(
        env_knob::expectation(&[("pipelined", 0), ("per-packet", 1), ("per_packet", 1)]),
        "want `pipelined`, `per-packet`, or `per_packet`"
    );
}
