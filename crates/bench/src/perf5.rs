//! `BENCH_PR5.json` — hot-path comparison (static LB dispatch + per-link
//! delivery pipes vs the boxed-`dyn` + per-packet reference), tracked from
//! PR 5 on.
//!
//! Two workloads, each swept on both configurations:
//!
//! * **fig10** — the same quick load sweep `BENCH_PR4` times (paper scheme
//!   set × quick load axis on the web-search distribution). Events/second
//!   is the headline; the *flat* leg (enum dispatch + pipelined delivery)
//!   against the *reference* leg (`dyn` dispatch + per-packet `Arrive`
//!   events, i.e. the PR 4 hot path) is the PR's speedup claim.
//! * **high-bdp** — 10 Gbit/s links with 500 µs propagation each: a
//!   multi-megabyte bandwidth-delay product, where the per-packet
//!   reference holds one FEL entry per in-flight packet. Here the
//!   interesting number is the peak FEL depth, which the pipelined mode
//!   bounds at fabric size ([`RunReport::fel_bound_peak`]).
//!
//! Per-job digests are asserted bit-identical between the legs — the two
//! configurations must disagree on *nothing* but wall-clock and FEL
//! residency. Jobs are built once per leg and replayed by reference
//! ([`tlb_simnet::run_all_ref`]); repetitions re-time the same batch
//! without re-cloning configs or flow lists.
//!
//! `TLB_BENCH_ASSERT=1` turns the flat-no-slower-than-reference
//! expectation into a hard assertion (the CI perf-smoke step sets it).

use tlb_engine::SimTime;
use tlb_net::{FlowId, HostId, LeafSpineBuilder};
use tlb_simnet::{DeliveryKind, LbDispatch, RunReport, Scheme, SimConfig};
use tlb_workload::FlowSpec;

/// One timed sweep: a leg (`flat` or `reference`) over a workload
/// (`fig10` or `high-bdp`).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepEntry {
    /// `flat` (enum dispatch + pipelined delivery) or `reference`
    /// (`dyn` dispatch + per-packet delivery — the PR 4 hot path).
    pub leg: String,
    /// `fig10` or `high-bdp`.
    pub workload: String,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Engine events processed, summed over the batch.
    pub events: u64,
    /// Wall-clock of the batch (milliseconds).
    pub wall_ms: f64,
    /// `events / wall` — the headline throughput.
    pub events_per_sec: f64,
    /// Median pending-event count across the batch's FEL depth samples.
    pub depth_p50: f64,
    /// 99th-percentile pending-event count.
    pub depth_p99: f64,
    /// Largest FEL depth sample in the batch.
    pub depth_max: f64,
    /// Largest pipelined-occupancy bound over the batch (mode-independent;
    /// the `flat` leg's `depth_max` must stay below it).
    pub bound_max: u64,
}

/// The whole `BENCH_PR5.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pr5Report {
    /// Format tag for downstream tooling (`tlb-bench-pr5/v1`).
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the timed runs.
    pub seed: u64,
    /// Pool threads the sweeps used.
    pub threads: usize,
    /// `available_parallelism()` of the host.
    pub host_cores: usize,
    /// One entry per (leg × workload), best-of-reps wall-clock.
    pub runs: Vec<SweepEntry>,
    /// Flat events/sec ÷ reference events/sec on the fig10 sweep.
    pub speedup_fig10: f64,
    /// Same ratio on the high-BDP sweep.
    pub speedup_high_bdp: f64,
    /// Reference `depth_max` ÷ flat `depth_max` on the high-BDP sweep —
    /// how much FEL residency the delivery pipes remove where BDP bites.
    pub fel_depth_reduction_high_bdp: f64,
}

/// The two hot-path configurations under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Leg {
    /// Enum dispatch + pipelined delivery (the PR 5 production path).
    Flat,
    /// `dyn` dispatch + per-packet delivery (the PR 4 hot path).
    Reference,
}

impl Leg {
    /// JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Leg::Flat => "flat",
            Leg::Reference => "reference",
        }
    }

    fn pin(self, cfg: &mut SimConfig) {
        match self {
            Leg::Flat => {
                cfg.lb_dispatch = LbDispatch::Enum;
                cfg.delivery = DeliveryKind::Pipelined;
            }
            Leg::Reference => {
                cfg.lb_dispatch = LbDispatch::Dyn;
                cfg.delivery = DeliveryKind::PerPacket;
            }
        }
    }
}

/// The fig10 quick sweep (the batch `BENCH_PR4`'s macro sweep times), with
/// every job pinned to `leg`'s dispatch + delivery. Identical traffic
/// regardless of leg.
pub fn fig10_jobs(leg: Leg) -> Vec<(SimConfig, Vec<FlowSpec>)> {
    let web = tlb_workload::web_search();
    let schemes = Scheme::paper_set();
    let mut jobs = Vec::new();
    for &load in &crate::load_sweep(crate::Scale::Quick) {
        jobs.extend(crate::large_scale_jobs(
            &schemes,
            &web,
            load,
            crate::Scale::Quick,
        ));
    }
    for (cfg, _) in &mut jobs {
        leg.pin(cfg);
    }
    jobs
}

/// The high-BDP sweep: 2 leaves × 4 spines × 8 hosts at 10 Gbit/s with
/// 500 µs per-link propagation (≈ 2 ms RTT through the spine), carrying
/// 16 cross-rack 4 MB flows plus 32 staggered 20 KB shorts — per scheme,
/// per seed. In the per-packet reference every in-flight packet is an FEL
/// entry, so this is where the delivery pipes' occupancy bound shows.
pub fn high_bdp_jobs(leg: Leg) -> Vec<(SimConfig, Vec<FlowSpec>)> {
    let schemes = [Scheme::Ecmp, Scheme::Rps, Scheme::tlb_default()];
    let seeds = [crate::scale::base_seed(), crate::scale::base_seed() + 1];
    let mut jobs = Vec::new();
    for scheme in &schemes {
        for &seed in &seeds {
            let mut cfg = SimConfig::basic_paper(scheme.clone());
            cfg.seed = seed;
            cfg.topo = LeafSpineBuilder::new(2, 4, 8)
                .link_gbps(10.0)
                .prop_per_link(SimTime::from_micros(500))
                .build()
                .into();
            cfg.horizon = SimTime::from_millis(60);
            leg.pin(&mut cfg);
            let hosts_per_leaf = cfg.topo.hosts_per_leaf() as u32;
            let mut flows = Vec::new();
            for i in 0..16u32 {
                flows.push(FlowSpec {
                    id: FlowId(i),
                    src: HostId(i % hosts_per_leaf),
                    dst: HostId(hosts_per_leaf + (i * 3) % hosts_per_leaf),
                    size_bytes: 4_000_000,
                    start: SimTime::from_micros(10 * i as u64),
                    deadline: None,
                });
            }
            for i in 0..32u32 {
                flows.push(FlowSpec {
                    id: FlowId(16 + i),
                    src: HostId((i * 5) % hosts_per_leaf),
                    dst: HostId(hosts_per_leaf + (i * 7) % hosts_per_leaf),
                    size_bytes: 20_000,
                    start: SimTime::from_micros(200 + 50 * i as u64),
                    deadline: None,
                });
            }
            jobs.push((cfg, flows));
        }
    }
    jobs
}

/// The per-job report fields the two legs must agree on bit-for-bit:
/// `(events, drops, marks, completed, afct bits, long-goodput bits,
/// occupancy-bound peak)`.
pub type JobDigest = (u64, u64, u64, usize, u64, u64, u64);

fn digest(r: &RunReport) -> JobDigest {
    (
        r.events,
        r.drops,
        r.marks,
        r.completed,
        r.fct_short.afct.to_bits(),
        r.fct_long.mean_goodput.to_bits(),
        r.fel_bound_peak,
    )
}

/// Time one already-built batch (on `threads` pool threads) without
/// consuming it, and return the entry plus per-job digests for
/// cross-checking. Replaying the same borrowed batch is what makes
/// repetitions clone-free.
pub fn sweep(
    leg: Leg,
    workload: &str,
    jobs: &[(SimConfig, Vec<FlowSpec>)],
    threads: usize,
) -> (SweepEntry, Vec<JobDigest>) {
    let t0 = std::time::Instant::now();
    let reports = rayon::with_threads(threads, || tlb_simnet::run_all_ref(jobs));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let events: u64 = reports.iter().map(|r| r.events).sum();
    let mut depth = tlb_metrics::SampleSet::new();
    let mut bound_max = 0u64;
    for r in &reports {
        depth.merge(&r.fel_depth);
        bound_max = bound_max.max(r.fel_bound_peak);
    }
    let q = depth.quantiles(&[0.50, 0.99]);
    let digests = reports.iter().map(digest).collect();

    (
        SweepEntry {
            leg: leg.name().to_string(),
            workload: workload.to_string(),
            jobs: jobs.len(),
            events,
            wall_ms,
            events_per_sec: if wall_ms > 0.0 {
                events as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            depth_p50: q[0],
            depth_p99: q[1],
            depth_max: depth.max(),
            bound_max,
        },
        digests,
    )
}

impl Pr5Report {
    /// An empty report stamped with this process's scale/seed/thread setup.
    pub fn new() -> Pr5Report {
        Pr5Report {
            schema: "tlb-bench-pr5/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            threads: rayon::current_num_threads(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            runs: Vec::new(),
            speedup_fig10: 1.0,
            speedup_high_bdp: 1.0,
            fel_depth_reduction_high_bdp: 1.0,
        }
    }

    /// Write the report to `results/BENCH_PR5.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR5.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for Pr5Report {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_pin_the_leg() {
        for leg in [Leg::Flat, Leg::Reference] {
            for jobs in [fig10_jobs(leg), high_bdp_jobs(leg)] {
                assert!(!jobs.is_empty());
                let (want_d, want_del) = match leg {
                    Leg::Flat => (LbDispatch::Enum, DeliveryKind::Pipelined),
                    Leg::Reference => (LbDispatch::Dyn, DeliveryKind::PerPacket),
                };
                assert!(jobs
                    .iter()
                    .all(|(cfg, _)| cfg.lb_dispatch == want_d && cfg.delivery == want_del));
            }
        }
    }

    #[test]
    fn legs_agree_on_the_high_bdp_batch() {
        // One scheme's worth to keep the unit test fast: digests (which
        // include the mode-independent occupancy bound) must match.
        let flat_jobs: Vec<_> = high_bdp_jobs(Leg::Flat).into_iter().take(2).collect();
        let ref_jobs: Vec<_> = high_bdp_jobs(Leg::Reference).into_iter().take(2).collect();
        let (flat_entry, flat_digests) = sweep(Leg::Flat, "high-bdp", &flat_jobs, 2);
        let (ref_entry, ref_digests) = sweep(Leg::Reference, "high-bdp", &ref_jobs, 2);
        assert_eq!(flat_digests, ref_digests, "legs diverged");
        assert_eq!(flat_entry.bound_max, ref_entry.bound_max);
        assert!(
            flat_entry.depth_max <= flat_entry.bound_max as f64,
            "flat leg must respect the occupancy bound: {} > {}",
            flat_entry.depth_max,
            flat_entry.bound_max
        );
        assert!(
            ref_entry.depth_max > flat_entry.depth_max,
            "high-BDP reference must hold more FEL entries ({} vs {})",
            ref_entry.depth_max,
            flat_entry.depth_max
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Pr5Report::new();
        r.runs.push(SweepEntry {
            leg: "flat".into(),
            workload: "fig10".into(),
            jobs: 20,
            events: 1_000_000,
            wall_ms: 500.0,
            events_per_sec: 2e6,
            depth_p50: 120.0,
            depth_p99: 400.0,
            depth_max: 450.0,
            bound_max: 900,
        });
        r.speedup_fig10 = 1.25;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Pr5Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr5/v1");
        assert_eq!(back.runs[0].leg, "flat");
        assert_eq!(back.speedup_fig10, 1.25);
    }
}
